#![warn(missing_docs)]
//! Finite-automata substrate for the split-correctness library.
//!
//! The decision procedures of *Split-Correctness in Information Extraction*
//! (PODS 2019) reduce spanner problems to classical automata problems:
//! reachability, emptiness, containment, and — for the tractable fragments —
//! containment of **unambiguous** finite automata (Stearns & Hunt 1985),
//! which underlies the polynomial-time cover-condition test (Lemma 5.6).
//!
//! This crate provides those building blocks from scratch over a generic,
//! dense symbol alphabet:
//!
//! * [`Nfa`] — nondeterministic finite automata with ε-transitions,
//!   construction helpers, trimming, reversal, and products.
//! * [`Dfa`] — deterministic automata produced by subset construction.
//! * [`ops`] — language operations: emptiness, membership, containment
//!   (lazy subset construction), equivalence, union, intersection.
//! * [`antichain`] — the on-the-fly containment engine behind
//!   [`ops::contains`]: lazy subset search with antichain pruning of
//!   subsumed macro-states and symbol-class alphabet collapse, plus the
//!   determinize-first reference it is differentially tested and
//!   benchmarked against.
//! * [`unambiguous`] — unambiguity testing and polynomial-time containment
//!   for unambiguous automata via accepting-path counting.
//! * [`classes`] — byte-class alphabet compression ([`ByteClasses`]): the
//!   coarsest partition of `0..=255` refining a collection of byte sets,
//!   shared by the spanner crate's interned alphabets and its dense
//!   lazy-DFA evaluation layer.
//! * [`scan`] — word-at-a-time (SWAR) byte scanning: `memchr`-family
//!   searches and the compiled [`ByteFinder`], the substrate of the
//!   evaluation layer's literal prefilters and skip-loops.
//!
//! Symbols are dense `u32` identifiers ([`Sym`]); callers intern whatever
//! alphabet they need (bytes, extended spanner alphabets, pair alphabets).

pub mod antichain;
pub mod classes;
pub mod counting;
pub mod dfa;
pub mod nfa;
pub mod ops;
pub mod scan;
pub mod unambiguous;

pub use antichain::{cumulative_stats, AntichainStats, CumulativeAntichainStats};
pub use classes::{ByteClassBuilder, ByteClasses};
pub use dfa::Dfa;
pub use nfa::{Nfa, StateId, Sym};
pub use scan::ByteFinder;

#[cfg(test)]
mod proptests;
