//! T4 — Proposition 5.9: the canonical split-spanner is constructible in
//! polynomial time (and size) in `|P|·|S|`.

use splitc_bench::families::{chain_extractor, delimiter_splitter};
use splitc_bench::{ms, time_best, Table};
use splitc_core::canonical_split_spanner;

fn main() {
    let mut t = Table::new(
        "T4 — canonical split-spanner construction (Prop 5.9)",
        &[
            "chain k",
            "delims",
            "|Q(P)|",
            "|Q(S)|",
            "|Q(Pcan)|",
            "time ms",
        ],
    );
    for k in [2usize, 4, 8, 16] {
        for d in [1usize, 4] {
            let p = chain_extractor(k);
            let s = delimiter_splitter(d);
            let (can, dur) = time_best(2, || canonical_split_spanner(&p, &s));
            t.row(&[
                k.to_string(),
                d.to_string(),
                p.num_states().to_string(),
                s.vsa().num_states().to_string(),
                can.num_states().to_string(),
                ms(dur),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape check: |Q(Pcan)| and the construction time grow polynomially\n\
         in |P|·|S| (Prop. 5.9)."
    );
}
