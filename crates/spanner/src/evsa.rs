//! The block normal form of VSet-automata ("eVSA").
//!
//! In a *valid* ref-word the variable operations between two document
//! bytes form a duplicate-free set, and reordering them does not change
//! the denoted tuple. The eVSA representation makes this canonical:
//! transitions consume one `(block, byte)` pair where the *block* is a
//! `≺`-sorted set of operations performed just before the byte, and
//! acceptance consumes a final block at the end of the document. This is
//! the same idea as the extended VSet-automata of Florenzano et al.
//! (paper footnote 7).
//!
//! The form is closed under, and makes straightforward, the spanner
//! algebra of Fagin et al. used throughout the paper: union, projection,
//! and natural join (Definition A.1), and it expands to order-normalized
//! ref-word NFAs over an [`ExtAlphabet`] — the bridge to every decision
//! procedure. The expansion shares operation prefixes (a trie per state),
//! so deterministic VSet-automata expand to deterministic NFAs and the
//! NL/PTIME fast paths of Theorems 4.3, 5.7 and 5.17 materialize.

use crate::byteset::ByteSet;
use crate::ext::ExtAlphabet;
use crate::vars::{VarMap, VarOp, VarTable};
use crate::vsa::{Label, VarConfig, Vsa};
use splitc_automata::nfa::{Nfa, StateId, Sym};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Interned, `≺`-sorted operation block.
pub type Block = Arc<[VarOp]>;

/// A VSet-automaton in block normal form. Only represents *functional*
/// spanners (each accepted run denotes a valid ref-word); construct via
/// [`EVsa::from_functional`] after [`Vsa::functionalize`].
#[derive(Debug, Clone)]
pub struct EVsa {
    vars: VarTable,
    /// `trans[q]` lists `(block, byte set, target)`.
    trans: Vec<Vec<(Block, ByteSet, StateId)>>,
    /// `finals[q]` lists the blocks with which `q` accepts at document
    /// end.
    finals: Vec<Vec<Block>>,
    start: StateId,
}

impl EVsa {
    /// The variable table.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Transitions from `q`.
    pub fn transitions_from(&self, q: StateId) -> &[(Block, ByteSet, StateId)] {
        &self.trans[q as usize]
    }

    /// Final blocks of `q`.
    pub fn final_blocks(&self, q: StateId) -> &[Block] {
        &self.finals[q as usize]
    }

    /// All byte sets on transitions.
    pub fn byte_masks(&self) -> Vec<ByteSet> {
        let mut out = Vec::new();
        for ts in &self.trans {
            for (_, m, _) in ts {
                out.push(*m);
            }
        }
        out
    }

    /// Converts a **functional** VSet-automaton (see
    /// [`Vsa::is_functional`]) into block normal form. Operation/ε paths
    /// between byte transitions are collected into blocks; configurations
    /// ensure termination (each operation occurs at most once per valid
    /// run).
    pub fn from_functional(vsa: &Vsa) -> EVsa {
        debug_assert!(
            vsa.is_functional(),
            "EVsa::from_functional requires a functional automaton; call functionalize() first"
        );
        let n = vsa.num_states();
        let mut trans: Vec<Vec<(Block, ByteSet, StateId)>> = vec![Vec::new(); n];
        let mut finals: Vec<Vec<Block>> = vec![Vec::new(); n];
        let mut block_intern: HashMap<Vec<VarOp>, Block> = HashMap::new();
        let mut intern = |mut ops: Vec<VarOp>| -> Block {
            ops.sort_unstable();
            block_intern
                .entry(ops.clone())
                .or_insert_with(|| ops.into())
                .clone()
        };

        for q in 0..n as StateId {
            // Explore ε/op paths from q; collect (op multiset, state)
            // pairs that sit in front of a byte transition or acceptance.
            // Validity: an op may appear at most once on a path (tracked
            // via VarConfig deltas starting from all-Waiting "relative"
            // config — in a functional automaton ops on any valid path
            // are distinct, so a repeat would be invalid and is pruned).
            let mut seen: Vec<(StateId, Vec<VarOp>)> = Vec::new();
            let mut queue: VecDeque<(StateId, Vec<VarOp>, VarConfig)> = VecDeque::new();
            queue.push_back((q, Vec::new(), VarConfig::initial()));
            seen.push((q, Vec::new()));
            while let Some((r, ops, cfg)) = queue.pop_front() {
                // Byte transitions and acceptance at r.
                for &(l, r2) in vsa.transitions_from(r) {
                    match l {
                        Label::Bytes(m) => {
                            trans[q as usize].push((intern(ops.clone()), m, r2));
                        }
                        Label::Eps => {
                            let key = (r2, ops.clone());
                            if !seen.contains(&key) {
                                seen.push(key);
                                queue.push_back((r2, ops.clone(), cfg));
                            }
                        }
                        Label::Op(op) => {
                            // Repeating or contradictory ops relative to
                            // the block path would be invalid in any run.
                            let Some(ncfg) = relative_apply(cfg, op) else {
                                continue;
                            };
                            let mut nops = ops.clone();
                            nops.push(op);
                            let key = (r2, {
                                let mut s = nops.clone();
                                s.sort_unstable();
                                s
                            });
                            if !seen.contains(&key) {
                                seen.push(key);
                                queue.push_back((r2, nops, ncfg));
                            }
                        }
                    }
                }
                if vsa.is_final(r) {
                    let b = intern(ops.clone());
                    if !finals[q as usize].contains(&b) {
                        finals[q as usize].push(b);
                    }
                }
            }
            trans[q as usize]
                .sort_by(|a, b| (a.0.as_ref(), a.1, a.2).cmp(&(b.0.as_ref(), b.1, b.2)));
            trans[q as usize].dedup();
        }
        EVsa {
            vars: vsa.vars().clone(),
            trans,
            finals,
            start: vsa.start(),
        }
    }

    /// Expands to an order-normalized ref-word NFA over the extended
    /// alphabet: each `(block, byte)` transition becomes a chain of
    /// operation symbols (already `≺`-sorted) followed by one symbol per
    /// byte class of the byte set; final blocks become chains into an
    /// accepting sink. Chains leaving the same state share prefixes, so
    /// determinism of the source automaton is preserved.
    ///
    /// The alphabet must refine this automaton's byte masks (build it with
    /// [`ExtAlphabet::for_automata`] over all participating automata).
    pub fn to_nfa(&self, ext: &ExtAlphabet) -> Nfa {
        assert_eq!(
            ext.vars().names(),
            self.vars.names(),
            "alphabet variable table must match the automaton"
        );
        let mut nfa = Nfa::new(ext.alphabet_size());
        // One NFA state per eVSA state, then trie states.
        for _ in 0..self.num_states() {
            nfa.add_state();
        }
        nfa.add_start(self.start);
        for q in 0..self.num_states() as StateId {
            // Trie of op sequences rooted at q.
            let mut trie: HashMap<(StateId, Sym), StateId> = HashMap::new();
            let mut walk = |nfa: &mut Nfa, from: StateId, ops: &[VarOp]| -> StateId {
                let mut cur = from;
                for &op in ops {
                    let sym = ext.op_sym(op);
                    cur = *trie.entry((cur, sym)).or_insert_with(|| {
                        let s = nfa.add_state();
                        nfa.add_transition(cur, sym, s);
                        s
                    });
                }
                cur
            };
            for (block, mask, target) in &self.trans[q as usize] {
                let tail = walk(&mut nfa, q, block);
                for sym in ext.class_syms(mask) {
                    nfa.add_transition(tail, sym, *target);
                }
            }
            for block in &self.finals[q as usize] {
                let tail = walk(&mut nfa, q, block);
                nfa.set_final(tail, true);
            }
        }
        nfa
    }

    // ------------------------------------------------------------------
    // Spanner algebra (Definition A.1).
    // ------------------------------------------------------------------

    /// Union of union-compatible spanners.
    pub fn union(&self, other: &EVsa) -> Result<EVsa, String> {
        if self.vars.names() != other.vars.names() {
            return Err("union requires identical variables".into());
        }
        let mut out = self.clone();
        let off = out.num_states() as StateId;
        for q in 0..other.num_states() {
            out.trans.push(
                other.trans[q]
                    .iter()
                    .map(|(b, m, r)| (b.clone(), *m, off + r))
                    .collect(),
            );
            out.finals.push(other.finals[q].clone());
        }
        // Fresh start replicating both starts (no ε in this form).
        let s = out.trans.len() as StateId;
        let mut s_trans: Vec<(Block, ByteSet, StateId)> = out.trans[out.start as usize].clone();
        s_trans.extend(out.trans[(off + other.start) as usize].iter().cloned());
        let mut s_finals = out.finals[out.start as usize].clone();
        for b in &out.finals[(off + other.start) as usize] {
            if !s_finals.contains(b) {
                s_finals.push(b.clone());
            }
        }
        out.trans.push(s_trans);
        out.finals.push(s_finals);
        out.start = s;
        Ok(out)
    }

    /// Projection `π_Y`: drops the operations of all variables outside
    /// `keep` (given by name).
    pub fn project(&self, keep: &[&str]) -> Result<EVsa, String> {
        let mut ids = Vec::new();
        for name in keep {
            ids.push(
                self.vars
                    .lookup(name)
                    .ok_or_else(|| format!("unknown variable {name}"))?,
            );
        }
        ids.sort_unstable();
        let (table, map) = self.vars.project(&ids);
        let remap_block = |b: &Block| -> Block {
            let mut ops: Vec<VarOp> = b.iter().filter_map(|op| map.map_op(*op)).collect();
            ops.sort_unstable();
            ops.into()
        };
        let trans = self
            .trans
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|(b, m, r)| (remap_block(b), *m, *r))
                    .collect()
            })
            .collect();
        let finals = self
            .finals
            .iter()
            .map(|bs| {
                let mut out: Vec<Block> = bs.iter().map(remap_block).collect();
                out.sort_by(|a, b| a.as_ref().cmp(b.as_ref()));
                out.dedup();
                out
            })
            .collect();
        Ok(EVsa {
            vars: table,
            trans,
            finals,
            start: self.start,
        })
    }

    /// Natural join `P₁ ⋈ P₂` (Definition A.1): tuples of the product
    /// that agree on the shared variables. Blocks must agree on shared
    /// variables' operations position-by-position; the joined block is
    /// the union.
    pub fn join(&self, other: &EVsa) -> EVsa {
        let (table, map_a, map_b) = self.vars.merge(other.vars());
        let shared: Vec<VarOp> = {
            // Ops of shared variables in the merged table.
            let shared_vars = self.vars.shared(other.vars());
            let mut v = Vec::new();
            for sv in shared_vars {
                let m = map_a.get(sv).expect("merged");
                v.push(VarOp::Open(m));
                v.push(VarOp::Close(m));
            }
            v
        };
        let remap = |b: &Block, map: &VarMap| -> Vec<VarOp> {
            b.iter()
                .map(|op| map.map_op(*op).expect("merge is total"))
                .collect()
        };
        let combine = |ba: &Block, bb: &Block| -> Option<Block> {
            let a: Vec<VarOp> = remap(ba, &map_a);
            let b: Vec<VarOp> = remap(bb, &map_b);
            // Agreement on shared ops.
            for op in &shared {
                if a.contains(op) != b.contains(op) {
                    return None;
                }
            }
            let mut u = a;
            for op in b {
                if !u.contains(&op) {
                    u.push(op);
                }
            }
            u.sort_unstable();
            Some(u.into())
        };

        let mut out = EVsa {
            vars: table,
            trans: Vec::new(),
            finals: Vec::new(),
            start: 0,
        };
        let mut map: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();
        let sid = 0;
        out.trans.push(Vec::new());
        out.finals.push(Vec::new());
        map.insert((self.start, other.start), sid);
        queue.push_back((self.start, other.start));
        while let Some((q1, q2)) = queue.pop_front() {
            let id = map[&(q1, q2)];
            let mut new_trans: Vec<(Block, ByteSet, StateId)> = Vec::new();
            for (b1, m1, r1) in &self.trans[q1 as usize] {
                for (b2, m2, r2) in &other.trans[q2 as usize] {
                    let m = m1.and(m2);
                    if m.is_empty() {
                        continue;
                    }
                    let Some(block) = combine(b1, b2) else {
                        continue;
                    };
                    let rid = *map.entry((*r1, *r2)).or_insert_with(|| {
                        let rid = out.trans.len() as StateId;
                        out.trans.push(Vec::new());
                        out.finals.push(Vec::new());
                        queue.push_back((*r1, *r2));
                        rid
                    });
                    new_trans.push((block, m, rid));
                }
            }
            let mut new_finals: Vec<Block> = Vec::new();
            for b1 in &self.finals[q1 as usize] {
                for b2 in &other.finals[q2 as usize] {
                    if let Some(block) = combine(b1, b2) {
                        if !new_finals.contains(&block) {
                            new_finals.push(block);
                        }
                    }
                }
            }
            out.trans[id as usize] = new_trans;
            out.finals[id as usize] = new_finals;
        }
        out
    }

    /// Compiles a shared copy of this automaton for the dense engine
    /// (byte-class tables + lazy-DFA cache, see [`crate::dense`]).
    pub fn compile_dense(&self, config: crate::dense::DenseConfig) -> crate::dense::DenseEvsa {
        crate::dense::DenseEvsa::compile(Arc::new(self.clone()), config)
    }

    /// Compiles a shared copy of this automaton for the prefiltered
    /// engine (literal analysis + skip-loop over the dense engine, see
    /// [`crate::prefilter`]).
    pub fn compile_prefilter(
        &self,
        config: crate::dense::DenseConfig,
    ) -> crate::prefilter::PrefilteredEvsa {
        crate::prefilter::PrefilteredEvsa::compile(Arc::new(self.clone()), config)
    }

    /// Compiles a shared copy of this automaton for the ahead-of-time
    /// engine (full determinization + Hopcroft minimization + flat
    /// premultiplied tables, see [`crate::aot`]). Returns `None` when
    /// determinization exceeds the budget in `config` — callers should
    /// then fall back to [`EVsa::compile_dense`].
    pub fn compile_aot(&self, config: crate::aot::AotConfig) -> Option<crate::aot::AotEvsa> {
        crate::aot::AotEvsa::compile(Arc::new(self.clone()), config)
    }

    /// Whether the normalized expansion would be deterministic: at most
    /// one continuation per (state, next extended symbol). This matches
    /// the paper's dfVSA after conversion.
    pub fn is_deterministic(&self) -> bool {
        for q in 0..self.num_states() {
            // First symbols of all outgoing items must be unique-ish:
            // group items by first op (or byte class); deeper conflicts
            // are found recursively via the expansion — cheap and exact:
            // expand and check.
            let _ = q;
        }
        let ext = ExtAlphabet::from_masks(self.vars.clone(), &self.byte_masks());
        let nfa = self.to_nfa(&ext);
        // Deterministic: single start and no state with two transitions
        // on the same symbol to different targets.
        for q in 0..nfa.num_states() as StateId {
            let mut seen: HashMap<Sym, StateId> = HashMap::new();
            for &(s, r) in nfa.transitions_from(q) {
                if let Some(&prev) = seen.get(&s) {
                    if prev != r {
                        return false;
                    }
                } else {
                    seen.insert(s, r);
                }
            }
        }
        true
    }
}

/// Applies an operation to a *relative* configuration where `Waiting`
/// means "not seen in this block path". Within one block an op may occur
/// at most once, an open must precede its close, and a close without a
/// preceding open in the block is allowed (the open happened earlier in
/// the run) — encoded by treating `Close` on `Waiting` as jumping to
/// `Closed`.
fn relative_apply(cfg: VarConfig, op: VarOp) -> Option<VarConfig> {
    use crate::vsa::VarStatus;
    match op {
        VarOp::Open(v) if cfg.get(v) == VarStatus::Waiting => cfg.apply(op),
        VarOp::Open(_) => None,
        VarOp::Close(v) => match cfg.get(v) {
            VarStatus::Closed => None,
            _ => cfg.apply(op).or_else(|| {
                // Close on Waiting: mark closed directly.
                cfg.apply(VarOp::Open(v)).and_then(|c| c.apply(op))
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_evsa;
    use crate::rgx::Rgx;
    use crate::span::Span;
    use crate::vars::VarId;

    fn compile(pattern: &str) -> EVsa {
        let vsa = Rgx::parse(pattern).unwrap().to_vsa().unwrap();
        EVsa::from_functional(&vsa.functionalize())
    }

    #[test]
    fn from_functional_basic() {
        let e = compile("x{a+}b");
        let rel = eval_evsa(&e, b"aab");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 2));
    }

    #[test]
    fn union_combines_outputs() {
        let a = compile("x{a}b");
        let b = compile("a(x{b})");
        let u = a.union(&b).unwrap();
        let rel = eval_evsa(&u, b"ab");
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn union_rejects_incompatible() {
        let a = compile("x{a}");
        let b = compile("y{a}");
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn projection_drops_variable() {
        let e = compile("x{a}y{b}");
        let p = e.project(&["y"]).unwrap();
        assert_eq!(p.vars().names(), &["y"]);
        let rel = eval_evsa(&p, b"ab");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(1, 2));
        assert!(e.project(&["z"]).is_err());
    }

    #[test]
    fn join_agrees_on_shared_variables() {
        // P1 = x{a}y{b}, P2 = y{b}z{c} on "abc": join assigns x=[0,1),
        // y=[1,2), z=[2,3). P2 must be shifted: y{b}z{c} only matches the
        // document "bc", so embed in context: (.)y{b}z{c} won't bind —
        // use Σ-prefixed variants.
        let p1 = compile("x{a}y{b}c");
        let p2 = compile("a(y{b})z{c}");
        let j = p1.join(&p2);
        assert_eq!(j.vars().names(), &["x", "y", "z"]);
        let rel = eval_evsa(&j, b"abc");
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        assert_eq!(t.get(j.vars().lookup("x").unwrap()), Span::new(0, 1));
        assert_eq!(t.get(j.vars().lookup("y").unwrap()), Span::new(1, 2));
        assert_eq!(t.get(j.vars().lookup("z").unwrap()), Span::new(2, 3));
    }

    #[test]
    fn join_empty_when_shared_disagree() {
        // P1 puts y on the first byte, P2 puts y on the second: no tuple
        // agrees.
        let p1 = compile("y{a}b");
        let p2 = compile("a(y{b})");
        let j = p1.join(&p2);
        assert!(eval_evsa(&j, b"ab").is_empty());
    }

    #[test]
    fn join_is_intersection_for_boolean() {
        let p1 = compile("a(a|b)*");
        let p2 = compile("(a|b)*b");
        let j = p1.join(&p2);
        assert_eq!(eval_evsa(&j, b"ab").len(), 1);
        assert!(eval_evsa(&j, b"ba").is_empty());
        assert!(eval_evsa(&j, b"aa").is_empty());
    }

    #[test]
    fn deterministic_detection() {
        let det = compile("a(x{b})");
        assert!(det.is_deterministic());
        // Note: in ref-word semantics the choice of where to open a
        // variable is an explicit symbol, so "x{a}a|a(x{a})" is in fact
        // deterministic. Genuine nondeterminism needs two transitions on
        // the *same* extended symbol:
        let also_det = compile("x{a}a|a(x{a})");
        assert!(also_det.is_deterministic());
        let nondet = compile("x{a}a|x{aa}");
        assert!(!nondet.is_deterministic());
    }

    #[test]
    fn to_nfa_accepts_normalized_refwords() {
        let e = compile("x{a}");
        let ext = ExtAlphabet::from_masks(e.vars().clone(), &e.byte_masks());
        let nfa = e.to_nfa(&ext);
        let w = vec![
            ext.op_sym(VarOp::Open(VarId(0))),
            ext.class_sym_of_byte(b'a'),
            ext.op_sym(VarOp::Close(VarId(0))),
        ];
        assert!(nfa.accepts(&w));
        // Non-normalized order (close before open) is not accepted.
        let bad = vec![
            ext.op_sym(VarOp::Close(VarId(0))),
            ext.class_sym_of_byte(b'a'),
            ext.op_sym(VarOp::Open(VarId(0))),
        ];
        assert!(!nfa.accepts(&bad));
    }
}
