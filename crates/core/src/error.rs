//! The unified certification error surface.
//!
//! Historically the general procedures reported interface errors as
//! `Result<_, String>` while the polynomial fast paths used
//! [`FastPathError`]; batch certifiers had to juggle both. [`CertError`]
//! is the single error type every certification entry point of this
//! crate returns. `From` impls keep both old surfaces convertible, so
//! callers that matched on `String` or `FastPathError` migrate with a
//! `.into()` / `?` at most.

use crate::split_correctness::FastPathError;
use std::fmt;

/// Error of a certification procedure (split-correctness,
/// splittability, cover condition, splitter reasoning, black-box
/// inference, annotated variants).
///
/// Errors are *interface* conditions — the inputs do not fit the
/// procedure. A property that simply fails to hold is **not** an error;
/// it is a [`crate::Verdict::Fails`] with a witness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CertError {
    /// The compared spanners do not range over the same variables.
    VariableMismatch {
        /// Display form of the left spanner's variable table.
        left: String,
        /// Display form of the right spanner's variable table.
        right: String,
    },
    /// A fast-path precondition (determinism, functionality, splitter
    /// disjointness) does not hold; the general procedure still applies.
    FastPath(FastPathError),
    /// The procedure does not support the given splitter at all (e.g.
    /// splittability via the canonical split-spanner needs a disjoint
    /// splitter; decidability beyond that is open).
    UnsupportedSplitter(String),
    /// Malformed input propagated from the spanner layer (bad context
    /// language, arity violations, …).
    Invalid(String),
}

impl CertError {
    /// Whether this error only says a *fast path* is unavailable. For
    /// callers of [`crate::split_correct_df`] and friends this is the
    /// cue that the inputs are fine for the general procedures
    /// ([`crate::split_correct`]) — only the polynomial route declined.
    pub fn is_fast_path_unavailable(&self) -> bool {
        matches!(self, CertError::FastPath(_))
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::VariableMismatch { left, right } => {
                write!(f, "spanners must share variables: {left} vs {right}")
            }
            CertError::FastPath(e) => write!(f, "{e}"),
            CertError::UnsupportedSplitter(msg) => write!(f, "unsupported splitter: {msg}"),
            CertError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CertError::FastPath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FastPathError> for CertError {
    fn from(e: FastPathError) -> CertError {
        CertError::FastPath(e)
    }
}

impl From<String> for CertError {
    fn from(msg: String) -> CertError {
        CertError::Invalid(msg)
    }
}

impl From<&str> for CertError {
    fn from(msg: &str) -> CertError {
        CertError::Invalid(msg.to_string())
    }
}

/// Callers that still propagate `String` keep working through this impl.
impl From<CertError> for String {
    fn from(e: CertError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let fp = FastPathError::new("P is not deterministic");
        let cert: CertError = fp.clone().into();
        assert!(cert.is_fast_path_unavailable());
        assert_eq!(cert.to_string(), fp.to_string());
        let s: String = cert.into();
        assert!(s.contains("not deterministic"));
        let from_string: CertError = String::from("bad context").into();
        assert!(!from_string.is_fast_path_unavailable());
        assert_eq!(from_string.to_string(), "bad context");
    }

    #[test]
    fn implements_std_error_with_source() {
        let e: Box<dyn std::error::Error> = Box::new(CertError::from(FastPathError::new("nope")));
        assert!(e.source().is_some());
        let plain: Box<dyn std::error::Error> = Box::new(CertError::Invalid("x".into()));
        assert!(plain.source().is_none());
    }
}
