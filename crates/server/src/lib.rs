#![warn(missing_docs)]
//! Extraction-as-a-service: an HTTP server over the split execution
//! engine, with compile and certification caches.
//!
//! The paper frames split-correctness as the *contract* that lets an
//! extraction service parallelize: certify `P = P ∘ S` once, then
//! evaluate `P` per segment forever after. This crate is that service,
//! end to end:
//!
//! * [`registry`] — content-hash-keyed registries of compiled spanners,
//!   splitters, and fleets (re-registering identical artifacts is a
//!   cache hit), plus the certification cache
//!   ([`splitc_core::cache::CertCache`]) seeded through batched
//!   [`splitc_exec::certify_many`] runs.
//! * [`server`] — a hand-rolled HTTP/1.1 accept loop over
//!   `std::net::TcpListener` (the build container has no crates.io
//!   access, so there is no web framework underneath) with a bounded
//!   admission queue: saturation is answered with `429` immediately,
//!   never with unbounded buffering.
//! * [`handlers`] — the endpoints: register, certify, `/extract`
//!   (streams through [`splitc_exec::CorpusRunner`] /
//!   [`splitc_exec::FleetRunner`] on a shared long-lived
//!   [`splitc_exec::EvalPool`]), the `/corpus/{id}` resources
//!   (server-maintained [`splitc_exec::CorpusHandle`]s: `PUT` shards
//!   once, `POST` deltas that resplit only the dirty window, extract
//!   by corpus id through the process-wide bounded
//!   [`splitc_exec::SegmentCache`]), and `/stats` (latency histograms,
//!   cache hit rates, execution and antichain-search totals).
//!   Every response carries the wire protocol version as a leading
//!   `"v": 1`; request bodies are validated against per-route field
//!   lists and unknown fields are rejected with a `400` naming the
//!   offending key.
//! * [`json`] / [`http`] — the wire formats, also hand-rolled.
//! * [`client`] — a small blocking client used by the integration
//!   tests and the `e8_server` benchmark.
//! * [`config`] — validated configuration with typed errors.
//!
//! Extraction refuses (`409`) pairs that are not certified
//! self-split-correct — the service never silently changes extraction
//! semantics; `"unchecked": true` opts out per request.
//!
//! See the repository's `ARCHITECTURE.md` ("Serving layer") for the
//! request lifecycle diagram, and `README.md` for a curl quick-start.

pub mod client;
pub mod config;
pub mod handlers;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;

pub use client::{Client, ClientError};
pub use config::{ConfigError, ServerConfig};
pub use handlers::{offline_extract, ServiceState, PROTOCOL_VERSION};
pub use json::{Json, JsonError};
pub use metrics::{LatencyHistogram, Metrics};
pub use registry::{hex_id, parse_hex_id, valid_corpus_id, CorpusEntry, Registry, SplitterSpec};
pub use server::{Server, SpawnError};
