//! Fleet certification: batch-certify a family of extractors against
//! one splitter on a worker pool, then run the certified survivors
//! through the streaming corpus executor.
//!
//! ```sh
//! cargo run --release --example fleet_certification
//! ```

use split_correctness::exec::certify::{certify_many, CertifyConfig};
use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};

fn main() {
    // 1. A fleet of extractors that should all ride the sentence
    //    splitter. Two are sentence-local, one crosses sentence
    //    boundaries, one needs context a chunk cannot provide.
    let patterns = [
        (".*x{a+}.*", "a-runs (sentence-local)"),
        (
            "(.*[^A-Za-z0-9]|)x{[A-Za-z0-9]+}([^A-Za-z0-9].*|)",
            "tokens",
        ),
        (".*x{a\\.a}.*", "period-crossing window"),
        (".*\\. x{[a-z]+}.*", "word after a sentence end"),
    ];
    let fleet: Vec<Vsa> = patterns
        .iter()
        .map(|(p, _)| Rgx::parse(p).unwrap().to_vsa().unwrap())
        .collect();
    let s = splitters::sentences();

    // 2. Certify all self-splittability pairs in one batch. The batch
    //    certifier shares composed spanners across pairs, routes
    //    eligible pairs through the Theorem 5.7 fast path, and runs the
    //    general pairs on the antichain containment engine.
    let pairs: Vec<(usize, usize)> = (0..fleet.len()).map(|i| (i, i)).collect();
    let result = certify_many(&fleet, &s, &pairs, &CertifyConfig::default());
    for (outcome, (pattern, label)) in result.outcomes.iter().zip(&patterns) {
        match &outcome.verdict {
            Ok(v) if v.holds() => println!("✓ {label}  ({pattern})  [{:?}]", outcome.path),
            Ok(Verdict::Fails(cex)) => println!(
                "✗ {label}  witness doc {:?}",
                String::from_utf8_lossy(&cex.doc)
            ),
            Ok(Verdict::Holds) => unreachable!(),
            Err(e) => println!("! {label}  error: {e}"),
        }
    }
    println!(
        "stats: {} pairs, {} fast-path, {} general, compose cache {}h/{}m\n",
        result.stats.pairs,
        result.stats.fast_path,
        result.stats.general,
        result.stats.compose_hits,
        result.stats.compose_misses,
    );

    // 3. Only certified extractors may be distributed — run one of them
    //    over a streamed synthetic corpus and cross-check a document.
    let certified: Vec<usize> = result
        .outcomes
        .iter()
        .filter(|c| c.holds())
        .map(|c| c.pair.0)
        .collect();
    println!(
        "{}/{} extractors certified for per-sentence execution",
        certified.len(),
        fleet.len()
    );
    let p = &fleet[certified[0]];
    let cfg = CorpusConfig {
        target_bytes: 64 << 10,
        ..Default::default()
    };
    let runner = CorpusRunner::new(
        ExecSpanner::compile(p),
        s.compile(),
        CorpusRunnerConfig::default(),
    );
    let shards = 4;
    let out = runner.run_streams(textgen::wiki_corpus_shards(shards, &cfg));
    println!(
        "corpus run: {} docs, {} segments, {} tuples (streamed, certified-equal \
         to whole-document evaluation)",
        out.stats.docs,
        out.stats.segments,
        out.relations.iter().map(|r| r.len()).sum::<usize>(),
    );
}
