//! E8 — extraction-as-a-service: registration/certification caching and
//! concurrent `/extract` throughput of `splitc-server`.
//!
//! The serving layer's promise is that certification is paid *once per
//! (spanner, splitter) pair per process*, not once per request: the
//! first `/certify` (or checked `/extract`) of a pair runs the
//! antichain decision procedure; every later request is a cache lookup.
//! This benchmark measures both halves against an in-process
//! [`splitc_server::Server`] over loopback:
//!
//! * **Registration** (`e8_server/registration`, engines `cold` /
//!   `warm`, `scale` = fleet size): register a catalog of N spanners, a
//!   splitter, and the fleet, then `/certify` the pair. `cold` is the
//!   first pass on a fresh server (compiles + N antichain
//!   certifications); `warm` repeats the identical sequence on the same
//!   server (every step a cache hit). The CI gate requires `warm` to
//!   beat `cold` by the configured factor at the largest fleet size.
//! * **Extraction** (`e8_server/extract`, `scale` = concurrent
//!   clients): C keep-alive clients each issue a burst of `/extract`
//!   requests over a fixed corpus; the row's wall time is the whole
//!   burst. `e8_server/throughput` re-expresses the largest-C point as
//!   a requests/second floor (`scale` = request count).
//!
//! The `--engine` flag selects the evaluation engine for the extraction
//! rows (registration rows always emit `cold`/`warm`).

use splitc_bench::{bench_json, engine_arg, ms, scaled, time, time_best, x, Table};
use splitc_server::{Client, Json, Server, ServerConfig};
use splitc_textgen::{wiki_corpus, CorpusConfig};

use std::time::Duration;

/// Distinct two-letter catalog patterns: member `i` extracts
/// `x{<c1><c2>+}` runs. All certify against the sentence splitter.
fn catalog(n: usize) -> Vec<String> {
    const FIRST: &[u8] = b"abcde";
    const SECOND: &[u8] = b"fghij";
    assert!(
        n <= FIRST.len() * SECOND.len(),
        "catalog alphabet exhausted"
    );
    (0..n)
        .map(|i| {
            format!(
                ".*x{{{}{}+}}.*",
                FIRST[i % FIRST.len()] as char,
                SECOND[i / FIRST.len()] as char
            )
        })
        .collect()
}

/// One registration + certification pass: registers the splitter, all
/// catalog members, the fleet, and certifies the (fleet, splitter)
/// pair. Returns whether the certify response was served from cache.
fn register_and_certify(client: &mut Client, patterns: &[String]) -> bool {
    let (status, splitter) = client
        .post(
            "/splitters",
            &Json::obj(vec![("builtin", Json::str("sentences"))]),
        )
        .expect("register splitter");
    assert_eq!(status, 200, "splitter: {splitter}");
    let mut members = Vec::with_capacity(patterns.len());
    for p in patterns {
        let (status, spanner) = client
            .post(
                "/spanners",
                &Json::obj(vec![("pattern", Json::str(p.clone()))]),
            )
            .expect("register spanner");
        assert_eq!(status, 200, "spanner {p}: {spanner}");
        members.push(Json::Str(
            spanner
                .get("id")
                .and_then(Json::as_str)
                .expect("id")
                .to_string(),
        ));
    }
    let (status, fleet) = client
        .post("/fleets", &Json::obj(vec![("members", Json::Arr(members))]))
        .expect("register fleet");
    assert_eq!(status, 200, "fleet: {fleet}");
    let fleet_id = fleet.get("id").and_then(Json::as_str).expect("fleet id");
    let splitter_id = splitter
        .get("id")
        .and_then(Json::as_str)
        .expect("splitter id");
    let (status, verdict) = client
        .post(
            "/certify",
            &Json::obj(vec![
                ("fleet", Json::str(fleet_id)),
                ("splitter", Json::str(splitter_id)),
            ]),
        )
        .expect("certify");
    assert_eq!(status, 200, "certify: {verdict}");
    assert_eq!(
        verdict.get("holds").and_then(Json::as_bool),
        Some(true),
        "catalog patterns must be self-split-correct: {verdict}"
    );
    verdict
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag")
}

fn spawn_server(workers: usize) -> Server {
    Server::spawn(ServerConfig {
        port: 0,
        workers,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

fn main() {
    let engine = engine_arg();
    let fleet_sizes = [4usize, 12, 24];
    let clients = [1usize, 2, 4, 8];
    let max_clients = *clients.iter().max().unwrap();
    let requests_per_client = 4usize;

    // -- Registration / certification: cold vs warm ------------------
    let mut reg_table = Table::new(
        "E8 — registration + certification, cold vs warm cache",
        &["fleet", "cold ms", "warm ms", "speedup"],
    );
    for &n in &fleet_sizes {
        let patterns = catalog(n);
        let server = spawn_server(2);
        let mut client = Client::new(server.addr());
        let (cold_cached, cold_wall) = time(|| register_and_certify(&mut client, &patterns));
        assert!(!cold_cached, "fresh server must certify, not hit the cache");
        let (warm_cached, warm_wall) =
            time_best(3, || register_and_certify(&mut client, &patterns));
        assert!(warm_cached, "second pass must be served from the cache");
        bench_json("e8_server/registration", "cold", 0, n as f64, cold_wall, 0);
        bench_json("e8_server/registration", "warm", 0, n as f64, warm_wall, 0);
        reg_table.row(&[
            format!("{n}"),
            ms(cold_wall),
            ms(warm_wall),
            x(cold_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9)),
        ]);
    }
    reg_table.print();

    // -- Concurrent /extract throughput ------------------------------
    let per_doc = scaled(48 << 10).max(4 << 10);
    let docs: Vec<String> = (0..4u64)
        .map(|i| {
            let cfg = CorpusConfig {
                target_bytes: per_doc,
                seed: 0xE8 + i,
                ..Default::default()
            };
            String::from_utf8(wiki_corpus(&cfg)).expect("wiki corpus is UTF-8")
        })
        .collect();
    let payload_bytes: usize = docs.iter().map(String::len).sum();

    // Thread-per-connection serving: each keep-alive client pins one
    // connection worker, so size the pool to the widest client count.
    let server = spawn_server(max_clients);
    let addr = server.addr();
    let mut setup = Client::new(addr);
    let (status, spanner) = setup
        .post(
            "/spanners",
            &Json::obj(vec![
                ("pattern", Json::str(".*x{a+}.*")),
                ("engine", Json::str(engine.name())),
            ]),
        )
        .expect("register spanner");
    assert_eq!(status, 200, "spanner: {spanner}");
    let (status, splitter) = setup
        .post(
            "/splitters",
            &Json::obj(vec![("builtin", Json::str("sentences"))]),
        )
        .expect("register splitter");
    assert_eq!(status, 200, "splitter: {splitter}");
    let spanner_id = spanner
        .get("id")
        .and_then(Json::as_str)
        .expect("id")
        .to_string();
    let splitter_id = splitter
        .get("id")
        .and_then(Json::as_str)
        .expect("id")
        .to_string();
    let request = Json::obj(vec![
        ("spanner", Json::str(spanner_id.clone())),
        ("splitter", Json::str(splitter_id.clone())),
        (
            "docs",
            Json::Arr(docs.iter().map(|d| Json::str(d.clone())).collect()),
        ),
    ]);
    // First request certifies the pair; everything after hits the cache.
    let (status, warmup) = setup.post("/extract", &request).expect("warmup extract");
    assert_eq!(status, 200, "warmup: {warmup}");

    let mut ext_table = Table::new(
        &format!(
            "E8 — concurrent /extract, {requests_per_client} requests/client, \
             {:.1} KiB/request ({})",
            payload_bytes as f64 / 1024.0,
            engine.name(),
        ),
        &["clients", "requests", "wall ms", "req/s", "tuples"],
    );
    let mut largest: Option<(usize, Duration, usize)> = None;
    for &c in &clients {
        let (tuples, wall) = time(|| {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..c)
                    .map(|_| {
                        let request = &request;
                        scope.spawn(move || {
                            let mut client = Client::new(addr);
                            let mut tuples = 0usize;
                            for _ in 0..requests_per_client {
                                let (status, body) =
                                    client.post("/extract", request).expect("extract");
                                assert_eq!(status, 200, "extract: {body}");
                                let relations = body
                                    .get("relations")
                                    .and_then(Json::as_arr)
                                    .expect("relations");
                                tuples += relations
                                    .iter()
                                    .filter_map(Json::as_arr)
                                    .map(|r| r.len())
                                    .sum::<usize>();
                            }
                            tuples
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("client thread"))
                    .sum::<usize>()
            })
        });
        let requests = c * requests_per_client;
        bench_json(
            "e8_server/extract",
            engine.name(),
            payload_bytes * requests,
            c as f64,
            wall,
            tuples,
        );
        ext_table.row(&[
            format!("{c}"),
            format!("{requests}"),
            ms(wall),
            format!("{:.1}", requests as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{tuples}"),
        ]);
        largest = Some((requests, wall, tuples));
    }
    ext_table.print();

    // The largest-C point re-expressed for the req/s floor gate
    // (`scale` = request count, so rps = scale / wall_s).
    let (requests, wall, tuples) = largest.expect("at least one client count");
    bench_json(
        "e8_server/throughput",
        engine.name(),
        payload_bytes * requests,
        requests as f64,
        wall,
        tuples,
    );

    // Surface the service's own accounting: the whole burst section
    // must have certified exactly once.
    let (status, stats) = setup.get("/stats").expect("stats");
    assert_eq!(status, 200);
    println!(
        "\nService stats after the burst: cert_cache {}, pool {}",
        stats
            .get("registry")
            .and_then(|r| r.get("cert_cache"))
            .map(|c| c.to_string())
            .unwrap_or_default(),
        stats.get("pool").map(|p| p.to_string()).unwrap_or_default(),
    );
    println!(
        "\nShape check: warm registration+certification is pure cache\n\
         lookups (no antichain runs, no compiles) and collapses by orders\n\
         of magnitude vs cold; /extract throughput scales with client\n\
         count until the worker pool saturates. The CI gate asserts the\n\
         warm-vs-cold floor at the largest fleet size and a lenient\n\
         req/s floor at the widest client count; recorded quiet-host\n\
         factors live in BENCH_pr7.json."
    );
}
