//! Integration coverage for the §7 extensions working together through
//! the public facade: filters + splittability, black-box inference over
//! realistic workloads, annotated plans end to end.

use split_correctness::core::annotated::{
    annotated_split_correct, annotated_splittable, AnnotatedSplitter, KeySpannerMapping,
};
use split_correctness::core::blackbox::{
    infer_join_splittable, Instance, Signature, SpannerSymbol, SplitConstraint,
};
use split_correctness::core::filters::{
    lp_language, self_splittable_with_filter, FilterVerdict, FilteredSplitter,
};
use split_correctness::prelude::*;
use split_correctness::textgen;
use splitc_spanner::eval::eval;

fn vsa(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

/// A format-checking extractor over HTTP logs: only extracts from logs
/// whose first message is a GET. Not self-splittable by messages, but
/// self-splittable with the L_P filter... only if the filter can carry
/// the context — here it cannot (later chunks lose the first-message
/// context), so the verdict is negative and the witness explains why.
#[test]
fn filtered_http_extractor() {
    let p = vsa("get [a-z]+\\n(.*\\n|)host h{[a-z]+}(\\n.*|)");
    let s = splitters::http_messages();
    assert!(!self_splittable(&p, &s).unwrap().holds());
    match self_splittable_with_filter(&p, &s).unwrap() {
        FilterVerdict::Fails(cex) => {
            // The witness is a document in L_P where per-chunk evaluation
            // differs.
            let lp = lp_language(&p);
            assert!(!eval(&lp, &cex.doc).is_empty(), "witness lies in L_P");
        }
        FilterVerdict::HoldsWith { .. } => {
            panic!("host extraction depends on cross-chunk context")
        }
    }
}

/// A single-message format check *is* repaired by the filter: P extracts
/// the host of one-message logs.
#[test]
fn filter_repairs_single_message_format() {
    let p = vsa("get [a-z]+\\nhost h{[a-z]+}");
    let s = splitters::http_messages();
    assert!(!self_splittable(&p, &s).unwrap().holds());
    match self_splittable_with_filter(&p, &s).unwrap() {
        FilterVerdict::HoldsWith { filter } => {
            assert!(!eval(&filter, b"get a\nhost b").is_empty());
            assert!(eval(&filter, b"post a\nhost b").is_empty());
        }
        FilterVerdict::Fails(cex) => panic!("filter should repair: {cex}"),
    }
    // Operationally: the filtered splitter evaluates correctly.
    let filtered = FilteredSplitter::new(s, lp_language(&p)).unwrap();
    let good = b"get a\nhost b";
    let bad = b"get a\nhost b\n\nget c\nhost d";
    assert_eq!(filtered.split(good).len(), 1);
    assert!(filtered.split(bad).is_empty(), "two messages: outside L_P");
}

/// Black-box inference over the realistic transaction workload: the glue
/// spanner α captures the amount; the "ML" relation extractor is opaque
/// but constrained to sentences.
#[test]
fn blackbox_inference_on_transactions() {
    let alpha = vsa("(.*[^A-Za-z0-9]|)amt{[0-9]+}([^A-Za-z0-9].*|)");
    let s = splitters::sentences();
    let sig = Signature::new(vec![SpannerSymbol {
        name: "relation_extractor".into(),
        vars: VarTable::new(["a", "b", "amt"]).unwrap(),
    }])
    .unwrap();
    let constraints = vec![SplitConstraint {
        symbol: "relation_extractor".into(),
        splitter: s.clone(),
    }];
    let verdict = infer_join_splittable(&alpha, &sig, &constraints, &s).unwrap();
    assert!(verdict.inferred());

    // Instantiate the black box with the actual transaction extractor
    // and check the instance satisfies its constraint.
    let mut inst = Instance::new();
    inst.bind(
        "relation_extractor",
        splitc_textgen::spanners::transaction_extractor(),
    );
    assert!(inst.satisfies(&constraints).unwrap());
    // Joined output on a concrete article: same amounts as the black box
    // itself (α only adds a redundant amt constraint here).
    let join = inst.join_with(&alpha, &sig).unwrap();
    let doc = b"Acme paid Globex 500 units.";
    let j = eval(&join, doc);
    assert_eq!(j.len(), 1);
    let amt = join.vars().lookup("amt").unwrap();
    assert_eq!(j.tuples()[0].get(amt).slice(doc), b"500");
}

/// Annotated splittability produces a canonical mapping that the
/// operational plan can execute over a generated log.
#[test]
fn annotated_pipeline_end_to_end() {
    // Suffix tolerates trailing newlines so every P-match is covered on
    // every document (certification quantifies over all documents, not
    // just well-formed logs).
    let get = Splitter::parse("(.*\\n\\n|)x{get [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|\\n*)").unwrap();
    let post = Splitter::parse("(.*\\n\\n|)x{post [a-z]+(\\n[a-z ]+)*}(\\n\\n.*|\\n*)").unwrap();
    let sk =
        AnnotatedSplitter::new([("get".to_string(), get), ("post".to_string(), post)]).unwrap();
    assert!(sk.is_highlander());

    // Method-blind request-path extractor, message-shaped so that every
    // match lies inside a message chunk.
    let p = vsa("(.*\\n\\n|)(get|post) y{[a-z]+}(\\n[a-z ]+)*(\\n\\n.*|\\n*)");
    let verdict = annotated_splittable(&p, &sk).unwrap();
    let witness: KeySpannerMapping = match verdict {
        split_correctness::core::annotated::AnnotatedSplittability::Splittable { witness } => {
            witness
        }
        other => panic!("should be annotated-splittable: {other:?}"),
    };
    assert!(annotated_split_correct(&p, &witness, &sk).unwrap().holds());

    // Execute the canonical mapping over a generated log, comparing
    // against direct evaluation.
    let log = textgen::http_log(30, 99);
    let mut expected = eval(&p, &log);
    let mut got = Vec::new();
    for (key, sp) in sk.split(&log) {
        let ps = witness.get(&key).unwrap();
        for t in eval(ps, sp.slice(&log)).iter() {
            got.push(t.shift(sp));
        }
    }
    let got = SpanRelation::from_tuples(got);
    assert_eq!(got.len(), 30, "one path per message");
    assert_eq!(got, std::mem::take(&mut expected));
}

/// The whole certification-to-execution chain for the paper's
/// "materialize splitters upfront" story: several extractors certified
/// against one splitter library, then run on one corpus scan each.
#[test]
fn splitter_materialization_story() {
    let sentence = splitters::sentences();
    let message = splitters::http_messages();
    let extractors: Vec<(&str, Vsa, &Splitter)> = vec![
        (
            "ngram2",
            splitc_textgen::spanners::ngram_extractor(2),
            &sentence,
        ),
        (
            "entity",
            splitc_textgen::spanners::entity_extractor(),
            &sentence,
        ),
        (
            "request",
            splitc_textgen::spanners::request_line_extractor(),
            &message,
        ),
    ];
    for (name, p, s) in &extractors {
        assert!(
            self_splittable(p, s).unwrap().holds(),
            "{name} certified against its splitter"
        );
    }
    // The buggy host/date pairing is flagged against the same library —
    // the paper's debugging pitch.
    let buggy = splitc_textgen::spanners::host_date_buggy();
    assert!(!self_splittable(&buggy, &message).unwrap().holds());
}
