//! Byte-class alphabet compression.
//!
//! Automata over the raw byte alphabet pay for 256 successor slots per
//! state even though realistic transition sets ("any alphanumeric byte",
//! "anything but a newline") distinguish only a handful of byte
//! *classes*. [`ByteClasses`] computes the coarsest partition of
//! `0..=255` refining every transition set of an automaton, so dense
//! per-state tables can be indexed by class instead of byte — the classic
//! lexer-generator trick (also used by `regex-automata` and rustlex-style
//! scanner generators). Simulation over classes is exact: two bytes in
//! the same class are indistinguishable by every registered set, hence by
//! every run of the automaton.
//!
//! The utility is byte-set-representation agnostic: sets are registered
//! through a membership predicate, so callers with bitmask, range, or
//! predicate representations all share one implementation.

/// The coarsest partition of byte values `0..=255` refining a collection
/// of byte sets. Build with [`ByteClassBuilder`].
///
/// Class ids are dense in `0..num_classes()`, numbered by each class's
/// smallest member byte (so the numbering is canonical for a given
/// partition, independent of set registration order).
#[derive(Clone, PartialEq, Eq)]
pub struct ByteClasses {
    class_of: [u16; 256],
    num: u16,
}

impl ByteClasses {
    /// The partition with a single class containing every byte.
    pub fn singleton() -> ByteClasses {
        ByteClasses {
            class_of: [0; 256],
            num: 1,
        }
    }

    /// The class of byte `b`.
    #[inline]
    pub fn class_of(&self, b: u8) -> usize {
        self.class_of[b as usize] as usize
    }

    /// Number of classes (at least 1, at most 256).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num as usize
    }

    /// The smallest byte of each class, indexed by class id. Useful for
    /// materializing one witness byte per class.
    pub fn representatives(&self) -> Vec<u8> {
        let mut reps = vec![None; self.num_classes()];
        for b in (0u16..256).rev() {
            reps[self.class_of(b as u8)] = Some(b as u8);
        }
        reps.into_iter()
            .map(|r| r.expect("every class is non-empty"))
            .collect()
    }

    /// Iterates the member bytes of class `c` in increasing order.
    pub fn bytes_of(&self, c: usize) -> impl Iterator<Item = u8> + '_ {
        (0u16..256)
            .map(|b| b as u8)
            .filter(move |&b| self.class_of(b) == c)
    }
}

impl std::fmt::Debug for ByteClasses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteClasses")
            .field("num_classes", &self.num)
            .finish_non_exhaustive()
    }
}

/// Incremental builder for [`ByteClasses`]: starts with one universal
/// class and refines it by each registered set.
#[derive(Clone, Debug)]
pub struct ByteClassBuilder {
    class_of: [u16; 256],
    num: u16,
}

impl Default for ByteClassBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteClassBuilder {
    /// Starts from the trivial one-class partition.
    pub fn new() -> ByteClassBuilder {
        ByteClassBuilder {
            class_of: [0; 256],
            num: 1,
        }
    }

    /// Refines the partition by a byte set given as a membership
    /// predicate: afterwards no class straddles the set boundary.
    pub fn add_set(&mut self, contains: impl Fn(u8) -> bool) -> &mut Self {
        // For each current class, bytes inside the set move to a fresh
        // class id (allocated on first sight); bytes outside keep theirs.
        // A class fully inside the set is renamed wholesale, which is
        // harmless — ids are recompacted below.
        let mut moved: Vec<u16> = vec![u16::MAX; self.num as usize];
        let mut next = self.num;
        for b in 0u16..256 {
            let b = b as u8;
            if !contains(b) {
                continue;
            }
            let old = self.class_of[b as usize];
            let new = &mut moved[old as usize];
            if *new == u16::MAX {
                *new = next;
                next += 1;
            }
            self.class_of[b as usize] = *new;
        }
        // Compact ids after every set: splitting and renaming can leave
        // gaps, and without compaction the id counter would grow by up
        // to 256 per registered set — past `u16` range for automata with
        // tens of thousands of (undeduplicated) transition masks. With
        // it, `next` is bounded by 2 · 256 at all times.
        let mut remap: Vec<u16> = vec![u16::MAX; next as usize];
        let mut dense = 0u16;
        for c in self.class_of.iter_mut() {
            if remap[*c as usize] == u16::MAX {
                remap[*c as usize] = dense;
                dense += 1;
            }
            *c = remap[*c as usize];
        }
        self.num = dense;
        self
    }

    /// Finishes the partition, renumbering classes densely by smallest
    /// member byte.
    pub fn build(&self) -> ByteClasses {
        let mut remap: Vec<u16> = vec![u16::MAX; self.num as usize];
        let mut class_of = [0u16; 256];
        let mut next = 0u16;
        for (dst, &old) in class_of.iter_mut().zip(self.class_of.iter()) {
            if remap[old as usize] == u16::MAX {
                remap[old as usize] = next;
                next += 1;
            }
            *dst = remap[old as usize];
        }
        ByteClasses {
            class_of,
            num: next,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_partition() {
        let c = ByteClasses::singleton();
        assert_eq!(c.num_classes(), 1);
        assert_eq!(c.class_of(0), c.class_of(255));
        assert_eq!(c.representatives(), vec![0]);
    }

    #[test]
    fn refinement_splits_classes() {
        let c = ByteClassBuilder::new()
            .add_set(|b| b.is_ascii_lowercase())
            .add_set(|b| b == b'.')
            .add_set(|b| (b'a'..=b'm').contains(&b))
            .build();
        // Classes: [a-m], [n-z], {.}, everything else — 4 classes.
        assert_eq!(c.num_classes(), 4);
        assert_eq!(c.class_of(b'a'), c.class_of(b'm'));
        assert_ne!(c.class_of(b'a'), c.class_of(b'n'));
        assert_ne!(c.class_of(b'.'), c.class_of(b'!'));
        assert_eq!(c.class_of(b'!'), c.class_of(0xFF));
    }

    #[test]
    fn numbering_is_canonical_by_first_byte() {
        // Register the same sets in different orders: same numbering.
        let a = ByteClassBuilder::new()
            .add_set(|b| b == b'x')
            .add_set(|b| b == b'a')
            .build();
        let b = ByteClassBuilder::new()
            .add_set(|b| b == b'a')
            .add_set(|b| b == b'x')
            .build();
        assert_eq!(a, b);
        // Class 0 holds byte 0 (smallest first member).
        assert_eq!(a.class_of(0), 0);
    }

    #[test]
    fn classes_partition_all_bytes() {
        let c = ByteClassBuilder::new()
            .add_set(|b| b.is_ascii_digit())
            .add_set(|b| b >= 0x80)
            .build();
        let total: usize = (0..c.num_classes()).map(|i| c.bytes_of(i).count()).sum();
        assert_eq!(total, 256);
        let reps = c.representatives();
        assert_eq!(reps.len(), c.num_classes());
        for (i, r) in reps.iter().enumerate() {
            assert_eq!(c.class_of(*r), i);
            assert_eq!(c.bytes_of(i).next(), Some(*r));
        }
    }

    #[test]
    fn many_registered_sets_do_not_overflow_ids() {
        // Tens of thousands of (repeated) sets, as produced by feeding
        // every transition mask of a large automaton without dedup. The
        // id counter must stay bounded by the number of live classes,
        // not grow with the number of registrations.
        let mut builder = ByteClassBuilder::new();
        for i in 0..70_000u32 {
            let lo = (i % 3) as u8 * 50;
            builder.add_set(move |b| (lo..lo + 50).contains(&b));
        }
        let c = builder.build();
        assert_eq!(c.num_classes(), 4); // [0,50), [50,100), [100,150), rest
        assert_eq!(c.class_of(0), c.class_of(49));
        assert_ne!(c.class_of(49), c.class_of(50));
        assert_eq!(c.class_of(150), c.class_of(255));
    }

    #[test]
    fn full_split_reaches_256() {
        let mut builder = ByteClassBuilder::new();
        for b in 0u16..256 {
            builder.add_set(move |x| x == b as u8);
        }
        let c = builder.build();
        assert_eq!(c.num_classes(), 256);
        for b in 0u16..256 {
            assert_eq!(c.class_of(b as u8), b as usize);
        }
    }
}
