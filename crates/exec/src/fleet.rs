//! Fused multi-spanner fleet evaluation.
//!
//! A service built on split-correctness evaluates *many* extraction
//! rules over the same traffic — and running one [`crate::CorpusRunner`]
//! per rule re-reads, re-splits, and re-scans the corpus once per rule.
//! This module evaluates a whole fleet of compiled spanners in **one**
//! streamed pass:
//!
//! 1. **One split pass** — the corpus is streamed through a single
//!    [`StreamingSplitter`], so splitter work and I/O are paid once,
//!    not once per member.
//! 2. **One shared byte partition** — all dense members are compiled
//!    over the coarsest common refinement of every member's transition
//!    masks ([`DenseEvsa::compile_with_classes`]), so the fleet shares
//!    one `class_of` view of each byte.
//! 3. **One shared literal scan** — each member's
//!    [`PrefilterAnalysis`] needles (required prefix, grown contained
//!    literal, or small required byte set) are merged into a single
//!    [`MultiNeedle`] Aho–Corasick scanner built on the SWAR
//!    `ByteFinder`s. Per segment, one scan (with early exit once every
//!    live member has evidence) decides which members see the segment
//!    at all; only those *owners* pay an automaton dispatch.
//!
//! Every pruning stage is conservative in exactly the prefilter-gate
//! sense — a skipped `(segment, member)` pair provably contributes an
//! empty relation — so fused results are byte-identical to running the
//! members sequentially, which the differential and metamorphic test
//! suites assert.
//!
//! [`DenseEvsa::compile_with_classes`]: splitc_spanner::dense::DenseEvsa::compile_with_classes

use crate::corpus::SegPayload;
use crate::engine::{Engine, ExecSpanner};
use crate::pool::EvalPool;
use crate::segcache::SegmentCache;
use crate::stream::StreamingSplitter;
use parking_lot::Mutex;
use splitc_automata::classes::{ByteClassBuilder, ByteClasses};
use splitc_automata::scan::{ByteFinder, MultiNeedle};
use splitc_spanner::dense::{DenseCache, DenseCacheStats, DenseConfig};
use splitc_spanner::evsa::EVsa;
use splitc_spanner::prefilter::{PrefilterAnalysis, PrefilterStats};
use splitc_spanner::splitter::CompiledSplitter;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use splitc_spanner::vsa::Vsa;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// Largest per-member needle set enrolled in the shared scanner. A
/// member whose only content fact is a required byte *set* wider than
/// this keeps a private SWAR finder instead (self-gated), so the shared
/// automaton stays small and selective.
const MAX_MEMBER_NEEDLES: usize = 16;

/// One compiled fleet member: the spanner plus the pruning facts the
/// fused pass applies before dispatching to its engine.
#[derive(Debug)]
struct FleetMember {
    spanner: ExecSpanner,
    /// Shortest accepted segment (`usize::MAX` = empty language: the
    /// member is never dispatched).
    min_len: usize,
    /// Bytes every accepted segment starts with (may be empty).
    prefix: Vec<u8>,
    /// `true` when the member's content evidence comes from the shared
    /// multi-needle scan.
    scanned: bool,
    /// Private required-byte finder for members whose byte set is too
    /// wide for the shared scanner.
    finder: Option<ByteFinder>,
}

/// Aggregate statistics of one fused fleet pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Documents streamed.
    pub docs: usize,
    /// Documents whose member relations were reused verbatim from a
    /// [`crate::CorpusHandle`] extraction memo instead of being run
    /// (always 0 outside [`crate::CorpusHandle::extract_fleet`]).
    pub docs_reused: usize,
    /// Split segments produced (each is considered by every member).
    pub segments: usize,
    /// Total bytes across all segments.
    pub segment_bytes: u64,
    /// Batches dispatched to the worker pool.
    pub batches: usize,
    /// Largest byte window any document's streaming splitter held.
    pub peak_buffered_bytes: usize,
    /// Bytes consumed by the shared multi-needle scan (early exit makes
    /// this at most, often far less than, `segment_bytes`).
    pub shared_scan_bytes: u64,
    /// `(segment, member)` evaluations actually dispatched to an
    /// engine. The headline number: sequential evaluation dispatches
    /// `segments × members`.
    pub dispatches: u64,
    /// `(segment, member)` pairs pruned by the cheap per-member facts
    /// (minimum length, required prefix, private required-byte finder).
    pub gate_rejected: u64,
    /// `(segment, member)` pairs pruned because the shared scan found
    /// none of the member's needles.
    pub scan_rejected: u64,
    /// Segments dispatched per member, index-aligned with the fleet.
    pub candidates: Vec<u64>,
    /// Aggregated per-worker lazy-DFA cache statistics.
    pub cache: DenseCacheStats,
    /// Aggregated backend prefilter statistics (skip-loop bytes, inner
    /// gate counts under [`Engine::Prefilter`]) plus the streaming
    /// splitter's own skipped bytes.
    pub prefilter: PrefilterStats,
}

impl FleetStats {
    /// Average number of members dispatched per segment — the fused
    /// pass's fan-out. Sequential evaluation has fan-out = fleet size;
    /// the gap between the two is the work the fusion avoided.
    pub fn fan_out(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.dispatches as f64 / self.segments as f64
        }
    }
}

/// The outcome of a fleet corpus run: per-document, per-member span
/// relations plus run statistics.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// `relations[doc][member]`, index-aligned with the input corpus
    /// and the fleet's compile order.
    pub relations: Vec<Vec<SpanRelation>>,
    /// Statistics of the run.
    pub stats: FleetStats,
}

/// Per-evaluation scratch: one lazy-DFA cache per member plus the
/// epoch-stamped evidence buffers of the fused gate. One instance per
/// worker thread (or pooled, for the whole-document entry point).
#[derive(Debug)]
struct FleetScratch {
    caches: Vec<DenseCache>,
    /// Cheap-gate verdict per member for the segment being processed.
    cheap_pass: Vec<bool>,
    /// Epoch stamp per member: `evidence[m] == epoch` means the shared
    /// scan saw one of `m`'s needles in the current segment. Stamping
    /// avoids clearing the buffer for every segment.
    evidence: Vec<u64>,
    epoch: u64,
}

/// Per-worker counters, merged into [`FleetStats`] after the run.
#[derive(Debug, Clone)]
struct Tally {
    shared_scan_bytes: u64,
    dispatches: u64,
    gate_rejected: u64,
    scan_rejected: u64,
    candidates: Vec<u64>,
    prefilter: PrefilterStats,
}

/// A fleet of spanners compiled for fused evaluation.
///
/// Compile once with [`Fleet::compile`]; evaluate whole documents with
/// [`Fleet::eval`] or stream a corpus through a [`FleetRunner`]. The
/// type is cheap to share across threads (wrap in [`Arc`]); the fused
/// pass itself is driven with per-worker scratch.
#[derive(Debug)]
pub struct Fleet {
    members: Vec<FleetMember>,
    engine: Engine,
    /// The shared byte partition dense members are indexed by (`None`
    /// under [`Engine::Nfa`], which compiles no tables).
    classes: Option<ByteClasses>,
    /// The shared multi-needle scanner over every scanned member's
    /// needles.
    scanner: MultiNeedle,
    /// Owning member per needle id.
    needle_owner: Vec<u32>,
    /// Pooled scratch for the whole-document entry point.
    scratch_pool: Mutex<Vec<FleetScratch>>,
}

impl Fleet {
    /// Compiles a fleet from VSet-automata (functionalization + block
    /// normal form per member, as in [`ExecSpanner::compile_with`]),
    /// sharing one byte partition and one needle scanner across the
    /// fleet.
    pub fn compile(vsas: &[Vsa], engine: Engine) -> Fleet {
        Fleet::compile_with(vsas, engine, DenseConfig::default())
    }

    /// [`Fleet::compile`] with an explicit dense-engine configuration
    /// applied to every member (cache bound, skip-loop).
    pub fn compile_with(vsas: &[Vsa], engine: Engine, config: DenseConfig) -> Fleet {
        let evsas: Vec<Arc<EVsa>> = vsas
            .iter()
            .map(|vsa| {
                let f = if vsa.is_functional() {
                    vsa.trim()
                } else {
                    vsa.functionalize()
                };
                Arc::new(EVsa::from_functional(&f))
            })
            .collect();
        Fleet::compile_evsas(evsas, engine, config)
    }

    /// Compiles a fleet from already-normalized automata.
    pub fn compile_evsas(evsas: Vec<Arc<EVsa>>, engine: Engine, config: DenseConfig) -> Fleet {
        // The shared partition: coarsest common refinement of every
        // member's transition masks. Refining a refinement stays a
        // refinement, so each member's dense tables are exact over it.
        let classes = (engine != Engine::Nfa && !evsas.is_empty()).then(|| {
            let mut builder = ByteClassBuilder::new();
            for evsa in &evsas {
                for m in evsa.byte_masks() {
                    builder.add_set(|b| m.contains(b));
                }
            }
            builder.build()
        });

        let mut members = Vec::with_capacity(evsas.len());
        let mut needles: Vec<Vec<u8>> = Vec::new();
        let mut needle_owner: Vec<u32> = Vec::new();
        for (mi, evsa) in evsas.into_iter().enumerate() {
            let analysis = PrefilterAnalysis::analyze(&evsa);
            let spanner = ExecSpanner::from_evsa(evsa, engine, classes.clone(), config);
            // Content evidence, strongest applicable form first: a
            // required prefix is checked in O(|prefix|) per segment, so
            // such members need no scan enrollment. Everyone else
            // enrolls their contained-literal / required-byte needles;
            // wide required sets keep a private finder.
            let (scanned, finder) = if !analysis.prefix.is_empty() {
                (false, None)
            } else {
                match analysis.content_needles(MAX_MEMBER_NEEDLES) {
                    Some(ns) => {
                        for n in ns {
                            needles.push(n);
                            needle_owner.push(mi as u32);
                        }
                        (true, None)
                    }
                    None => (
                        false,
                        analysis
                            .required
                            .map(|set| ByteFinder::from_predicate(move |b| set.contains(b))),
                    ),
                }
            };
            members.push(FleetMember {
                spanner,
                min_len: analysis.min_len,
                prefix: analysis.prefix,
                scanned,
                finder,
            });
        }
        Fleet {
            members,
            engine,
            classes,
            scanner: MultiNeedle::new(&needles),
            needle_owner,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Number of members in the fleet.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The engine every member was compiled for.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The shared byte partition (`None` under [`Engine::Nfa`]).
    pub fn shared_classes(&self) -> Option<&ByteClasses> {
        self.classes.as_ref()
    }

    /// Number of needles enrolled in the shared scanner.
    pub fn num_needles(&self) -> usize {
        self.scanner.num_needles()
    }

    /// The compiled spanner of member `i` (fleet compile order).
    pub fn member(&self, i: usize) -> &ExecSpanner {
        &self.members[i].spanner
    }

    fn new_scratch(&self) -> FleetScratch {
        let n = self.members.len();
        FleetScratch {
            caches: (0..n).map(|_| DenseCache::default()).collect(),
            cheap_pass: vec![false; n],
            evidence: vec![0; n],
            epoch: 0,
        }
    }

    fn new_tally(&self) -> Tally {
        Tally {
            shared_scan_bytes: 0,
            dispatches: 0,
            gate_rejected: 0,
            scan_rejected: 0,
            candidates: vec![0; self.members.len()],
            prefilter: PrefilterStats::default(),
        }
    }

    /// The fused per-segment pass: cheap gates → one shared scan with
    /// early exit → dispatch to the surviving members' engines. `sink`
    /// receives `(member, relation)` for every dispatched member (the
    /// relation may be empty — a false candidate); pruned members
    /// provably contribute empty relations and are not reported.
    ///
    /// With a `seg_cache`, each surviving `(segment, member)` dispatch
    /// is first looked up by content under the member's
    /// [`ExecSpanner::cache_id`]; a hit replaces the engine call with
    /// the byte-identical stored relation (gates and the shared scan
    /// still run — they are what keeps the per-member key space sparse).
    fn eval_segment(
        &self,
        bytes: &[u8],
        seg_cache: Option<&Arc<SegmentCache>>,
        scratch: &mut FleetScratch,
        tally: &mut Tally,
        mut sink: impl FnMut(usize, &SpanRelation),
    ) {
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        // Cheap per-member facts; count scanned members still awaiting
        // content evidence, so the scan can stop as soon as all have it.
        let mut awaiting = 0usize;
        for (mi, m) in self.members.iter().enumerate() {
            let pass =
                bytes.len() >= m.min_len && (m.prefix.is_empty() || bytes.starts_with(&m.prefix));
            scratch.cheap_pass[mi] = pass;
            if !pass {
                tally.gate_rejected += 1;
            } else if m.scanned {
                awaiting += 1;
            }
        }
        if awaiting > 0 {
            let mut remaining = awaiting;
            let mut sc = self.scanner.scanner();
            let consumed = self.scanner.push(&mut sc, bytes, |nid, _end| {
                let owner = self.needle_owner[nid] as usize;
                if scratch.cheap_pass[owner] && scratch.evidence[owner] != epoch {
                    scratch.evidence[owner] = epoch;
                    remaining -= 1;
                    if remaining == 0 {
                        return false;
                    }
                }
                true
            });
            tally.shared_scan_bytes += consumed as u64;
        }
        for (mi, m) in self.members.iter().enumerate() {
            if !scratch.cheap_pass[mi] {
                continue;
            }
            if m.scanned {
                if scratch.evidence[mi] != epoch {
                    tally.scan_rejected += 1;
                    continue;
                }
            } else if let Some(f) = &m.finder {
                if f.find(bytes).is_none() {
                    tally.gate_rejected += 1;
                    continue;
                }
            }
            tally.candidates[mi] += 1;
            tally.dispatches += 1;
            match seg_cache {
                Some(sc) => {
                    let (rel, _) = sc.get_or_eval(m.spanner.cache_id(), bytes, || {
                        m.spanner.backend().eval_scratch(
                            bytes,
                            &mut scratch.caches[mi],
                            &mut tally.prefilter,
                        )
                    });
                    sink(mi, &rel);
                }
                None => {
                    let rel = m.spanner.backend().eval_scratch(
                        bytes,
                        &mut scratch.caches[mi],
                        &mut tally.prefilter,
                    );
                    sink(mi, &rel);
                }
            }
        }
    }

    /// Fused whole-document evaluation: one relation per member, equal
    /// to `member(i).eval(doc)` for every `i` (the differential suites
    /// assert this). Uses pooled scratch; corpus-scale callers should
    /// stream through a [`FleetRunner`] instead.
    pub fn eval(&self, doc: &[u8]) -> Vec<SpanRelation> {
        let mut out = vec![SpanRelation::empty(); self.members.len()];
        let mut scratch = self
            .scratch_pool
            .lock()
            .pop()
            .unwrap_or_else(|| self.new_scratch());
        let mut tally = self.new_tally();
        self.eval_segment(doc, None, &mut scratch, &mut tally, |mi, rel| {
            out[mi] = rel.clone()
        });
        self.scratch_pool.lock().push(scratch);
        out
    }
}

/// What one fused worker hands back when the queue drains: shifted
/// tuples keyed by `(doc, member)`, plus its cache and gate tallies.
type WorkerOutput = (Vec<(usize, usize, Vec<SpanTuple>)>, DenseCacheStats, Tally);

/// A batch of split segments bound for one fleet worker.
struct Batch {
    /// `(document index, segment)` pairs, in stream order.
    segments: Vec<(usize, SegPayload)>,
}

/// The producer side of the fused pipeline (the fleet analogue of the
/// corpus runner's feed): batches segments and dispatches them over the
/// bounded queue, blocking when it is full.
struct FleetFeed<'a> {
    tx: std::sync::mpsc::SyncSender<Batch>,
    batch: Vec<(usize, SegPayload)>,
    batch_bytes: usize,
    target: usize,
    stats: &'a mut FleetStats,
}

impl FleetFeed<'_> {
    fn segment(&mut self, di: usize, seg: SegPayload) {
        let len = seg.bytes().len();
        self.stats.segments += 1;
        self.stats.segment_bytes += len as u64;
        self.batch_bytes += len;
        self.batch.push((di, seg));
        if self.batch_bytes >= self.target {
            self.flush();
        }
    }
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.batches += 1;
        self.batch_bytes = 0;
        let _ = self.tx.send(Batch {
            segments: std::mem::take(&mut self.batch),
        });
    }
}

/// The no-member short-circuit: documents are counted but never split,
/// scanned, or dispatched.
fn empty_fleet_result(docs_n: usize) -> FleetResult {
    FleetResult {
        relations: vec![Vec::new(); docs_n],
        stats: FleetStats {
            docs: docs_n,
            ..FleetStats::default()
        },
    }
}

/// Streaming fused corpus executor: the fleet-wide analogue of
/// [`crate::CorpusRunner`] — one splitter pass, one bounded queue, one
/// worker pool, N spanners. Reuses [`crate::CorpusRunnerConfig`]
/// (`workers`, `batch_bytes`, `queue_depth`, `chunk_bytes` mean exactly
/// what they mean there).
#[derive(Debug)]
pub struct FleetRunner {
    fleet: Arc<Fleet>,
    splitter: CompiledSplitter,
    config: crate::corpus::CorpusRunnerConfig,
    /// Shared long-lived worker pool. `None` spawns per-run threads;
    /// services reuse one [`EvalPool`] across requests via
    /// [`FleetRunner::with_pool`].
    pool: Option<Arc<EvalPool>>,
    /// Shared content-addressed segment cache, probed per surviving
    /// `(segment, member)` dispatch (see [`Fleet::eval_segment`]).
    segment_cache: Option<Arc<SegmentCache>>,
}

impl FleetRunner {
    /// Creates a runner evaluating `fleet` over the segments produced by
    /// `splitter`. As with [`crate::CorpusRunner`], results equal
    /// whole-document evaluation exactly when each member is certified
    /// split-correct for the splitter; the runner computes each
    /// `P_S ∘ S` faithfully either way.
    pub fn new(
        fleet: Arc<Fleet>,
        splitter: CompiledSplitter,
        config: crate::corpus::CorpusRunnerConfig,
    ) -> FleetRunner {
        FleetRunner {
            fleet,
            splitter,
            config,
            pool: None,
            segment_cache: None,
        }
    }

    /// [`FleetRunner::new`], but fused evaluation workers run on the
    /// shared long-lived `pool` instead of per-run spawned threads —
    /// identical results, zero thread spawn/join per request (see
    /// [`crate::CorpusRunner::with_pool`]).
    pub fn with_pool(
        fleet: Arc<Fleet>,
        splitter: CompiledSplitter,
        config: crate::corpus::CorpusRunnerConfig,
        pool: Arc<EvalPool>,
    ) -> FleetRunner {
        FleetRunner {
            fleet,
            splitter,
            config,
            pool: Some(pool),
            segment_cache: None,
        }
    }

    /// Attaches a shared [`SegmentCache`]: each surviving
    /// `(segment, member)` dispatch is answered from the cache when the
    /// segment content was already evaluated under that member. Results
    /// are byte-identical with or without a cache (see
    /// [`crate::CorpusRunner::with_segment_cache`]).
    pub fn with_segment_cache(mut self, cache: Arc<SegmentCache>) -> FleetRunner {
        self.segment_cache = Some(cache);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &crate::corpus::CorpusRunnerConfig {
        &self.config
    }

    /// The fleet being evaluated.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Streams a corpus of chunked document sources through the fused
    /// pipeline (same contract as [`crate::CorpusRunner::run_streams`]:
    /// one item per document, delivered chunk by chunk, never
    /// materialized).
    ///
    /// An **empty fleet** short-circuits to no work: documents are
    /// counted but never split, scanned, or dispatched.
    pub fn run_streams<D, C, B>(&self, docs: D) -> FleetResult
    where
        D: IntoIterator<Item = C>,
        C: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        if self.fleet.members.is_empty() {
            return empty_fleet_result(docs.into_iter().count());
        }
        self.run_pipeline(|feed| {
            for (di, doc) in docs.into_iter().enumerate() {
                feed.stats.docs += 1;
                let mut splitter = StreamingSplitter::new(&self.splitter);
                for chunk in doc {
                    for seg in splitter.push(chunk.as_ref()) {
                        feed.segment(di, SegPayload::Owned(seg));
                    }
                }
                feed.stats.peak_buffered_bytes = feed
                    .stats
                    .peak_buffered_bytes
                    .max(splitter.peak_buffered_bytes());
                feed.stats.prefilter.bytes_skipped += splitter.bytes_skipped();
                for seg in splitter.finish() {
                    feed.segment(di, SegPayload::Owned(seg));
                }
            }
        })
    }

    /// Evaluates documents whose split is already known, skipping the
    /// splitter: each item is `(document bytes, split spans)` — the
    /// fleet analogue of [`crate::CorpusRunner::run_presplit`], used by
    /// the incremental layer to re-query maintained corpora.
    pub fn run_presplit<'a, D>(&self, docs: D) -> FleetResult
    where
        D: IntoIterator<Item = (&'a [u8], &'a [splitc_spanner::span::Span])>,
    {
        if self.fleet.members.is_empty() {
            return empty_fleet_result(docs.into_iter().count());
        }
        self.run_pipeline(|feed| {
            for (di, (bytes, spans)) in docs.into_iter().enumerate() {
                feed.stats.docs += 1;
                // One copy of the document shared by every segment —
                // per-segment cost is an `Arc` clone, not a byte copy.
                let doc = Arc::new(bytes.to_vec());
                for &span in spans {
                    feed.segment(
                        di,
                        SegPayload::Shared {
                            doc: doc.clone(),
                            span,
                        },
                    );
                }
            }
        })
    }

    /// The shared pipeline body (see
    /// [`crate::CorpusRunner`]'s equivalent): worker setup, the
    /// `produce`-driven batching feed, and deterministic collection.
    fn run_pipeline<F>(&self, produce: F) -> FleetResult
    where
        F: FnOnce(&mut FleetFeed<'_>),
    {
        let config = self.config.normalized();
        let workers = config.workers;
        let n_members = self.fleet.members.len();
        let mut stats = FleetStats {
            candidates: vec![0; n_members],
            ..FleetStats::default()
        };
        let mut partials: Vec<(usize, usize, Vec<SpanTuple>)> = Vec::new();
        let mut cache_stats = DenseCacheStats::default();
        let mut tallies: Vec<Tally> = Vec::new();

        let (tx, rx) = sync_channel::<Batch>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        // Same drain-on-panic protocol as the corpus runner: a worker
        // that panics keeps draining without evaluating, so the
        // producer's blocking send can never deadlock.
        let failed = Arc::new(AtomicBool::new(false));
        // Owned worker contexts, so the loop runs on a shared long-lived
        // [`EvalPool`] or on per-run spawned threads (see CorpusRunner).
        let (out_tx, out_rx) = std::sync::mpsc::channel::<WorkerOutput>();
        let mut handles = Vec::new();
        for _ in 0..workers {
            let fleet = self.fleet.clone();
            let rx = rx.clone();
            let failed = failed.clone();
            let out_tx = out_tx.clone();
            let seg_cache = self.segment_cache.clone();
            let job = move || {
                let _ = out_tx.send(fleet_worker_loop(&fleet, seg_cache.as_ref(), &rx, &failed));
            };
            match &self.pool {
                Some(pool) => pool.execute(Box::new(job)),
                None => handles.push(std::thread::spawn(job)),
            }
        }
        drop(out_tx);

        let mut feed = FleetFeed {
            tx,
            batch: Vec::new(),
            batch_bytes: 0,
            target: config.batch_bytes,
            stats: &mut stats,
        };
        produce(&mut feed);
        feed.flush();
        drop(feed);

        // Exactly one report per worker; a disconnect before all have
        // reported means a worker died outside the catch (a bug).
        for _ in 0..workers {
            match out_rx.recv() {
                Ok((tuples, cache, tally)) => {
                    partials.extend(tuples);
                    cache_stats = cache_stats.merge(cache);
                    tallies.push(tally);
                }
                Err(_) => {
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        assert!(
            !failed.load(Ordering::Relaxed),
            "a fleet worker panicked while evaluating a batch"
        );

        stats.cache = cache_stats;
        for t in tallies {
            stats.shared_scan_bytes += t.shared_scan_bytes;
            stats.dispatches += t.dispatches;
            stats.gate_rejected += t.gate_rejected;
            stats.scan_rejected += t.scan_rejected;
            for (agg, c) in stats.candidates.iter_mut().zip(t.candidates) {
                *agg += c;
            }
            stats.prefilter = stats.prefilter.merge(t.prefilter);
        }
        // Deterministic aggregation, independent of batch and worker
        // scheduling: `from_tuples` sorts and dedups per (doc, member).
        let mut per: Vec<Vec<Vec<SpanTuple>>> = (0..stats.docs)
            .map(|_| (0..n_members).map(|_| Vec::new()).collect())
            .collect();
        for (di, mi, tuples) in partials {
            per[di][mi].extend(tuples);
        }
        FleetResult {
            relations: per
                .into_iter()
                .map(|row| row.into_iter().map(SpanRelation::from_tuples).collect())
                .collect(),
            stats,
        }
    }

    /// Runs already-materialized documents through the streaming path,
    /// feeding each in [`crate::CorpusRunnerConfig::chunk_bytes`]-sized
    /// chunks — the entry point the differential tests and the
    /// `e7_fleet` benchmark compare against per-member sequential runs.
    pub fn run_slices(&self, docs: &[&[u8]]) -> FleetResult {
        let chunk = self.config.chunk_bytes.max(1);
        self.run_streams(docs.iter().map(|d| d.chunks(chunk)))
    }
}

/// One fused evaluation worker: drains the queue and runs the fused
/// per-segment pass with worker-local scratch, returning shifted
/// tuples keyed by `(doc, member)`. A free function over owned/shared
/// contexts so the same loop runs on per-run threads and on a
/// long-lived [`EvalPool`].
fn fleet_worker_loop(
    fleet: &Arc<Fleet>,
    seg_cache: Option<&Arc<SegmentCache>>,
    rx: &Mutex<Receiver<Batch>>,
    failed: &AtomicBool,
) -> WorkerOutput {
    let mut scratch = fleet.new_scratch();
    let mut tally = fleet.new_tally();
    let mut out: Vec<(usize, usize, Vec<SpanTuple>)> = Vec::new();
    loop {
        let batch = match rx.lock().recv() {
            Ok(b) => b,
            Err(_) => break, // producer hung up and queue drained
        };
        if failed.load(Ordering::Relaxed) {
            continue; // drain-only after a failure elsewhere
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut local: Vec<(usize, usize, Vec<SpanTuple>)> = Vec::new();
            for (di, seg) in &batch.segments {
                let (bytes, span) = (seg.bytes(), seg.span());
                fleet.eval_segment(bytes, seg_cache, &mut scratch, &mut tally, |mi, rel| {
                    if !rel.is_empty() {
                        let tuples: Vec<SpanTuple> = rel.iter().map(|t| t.shift(span)).collect();
                        local.push((*di, mi, tuples));
                    }
                });
            }
            local
        }));
        match result {
            Ok(tuples) => out.extend(tuples),
            Err(_) => failed.store(true, Ordering::Relaxed),
        }
    }
    let cache = scratch
        .caches
        .iter()
        .fold(DenseCacheStats::default(), |acc, c| acc.merge(c.stats()));
    (out, cache, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusRunner, CorpusRunnerConfig};
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(pat: &str) -> Vsa {
        Rgx::parse(pat).unwrap().to_vsa().unwrap()
    }

    fn fleet_of(pats: &[&str], engine: Engine) -> Fleet {
        Fleet::compile(&pats.iter().map(|p| vsa(p)).collect::<Vec<_>>(), engine)
    }

    fn docs() -> Vec<Vec<u8>> {
        vec![
            b"qab12 plain words. tail qx9 end".to_vec(),
            b"".to_vec(),
            b"nothing relevant anywhere".to_vec(),
            b"qab7. qcd8. qab9 qcd1".to_vec(),
            b"...".to_vec(),
        ]
    }

    const PATS: [&str; 4] = [".*x{qab[0-9]+}.*", ".*x{qcd[0-9]+}.*", ".*x{a+}.*", "x{.*}"];

    #[test]
    fn eval_matches_per_member_eval() {
        for engine in [Engine::Nfa, Engine::Dense, Engine::Prefilter, Engine::Aot] {
            let fleet = fleet_of(&PATS, engine);
            for doc in docs() {
                let fused = fleet.eval(&doc);
                for (mi, rel) in fused.iter().enumerate() {
                    assert_eq!(
                        rel,
                        &fleet.member(mi).eval(&doc),
                        "member {mi} on {:?} under {engine:?}",
                        String::from_utf8_lossy(&doc)
                    );
                }
            }
        }
    }

    #[test]
    fn runner_matches_sequential_corpus_runners() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let config = CorpusRunnerConfig {
            workers: 3,
            batch_bytes: 4,
            queue_depth: 2,
            chunk_bytes: 3,
        };
        for engine in [Engine::Nfa, Engine::Dense, Engine::Prefilter, Engine::Aot] {
            let fleet = Arc::new(fleet_of(&PATS, engine));
            let runner = FleetRunner::new(fleet.clone(), splitter::sentences().compile(), config);
            let got = runner.run_slices(&refs);
            assert_eq!(got.stats.docs, refs.len());
            for (mi, pat) in PATS.iter().enumerate() {
                let seq = CorpusRunner::new(
                    crate::ExecSpanner::compile_with(&vsa(pat), engine),
                    splitter::sentences().compile(),
                    config,
                );
                let expected = seq.run_slices(&refs);
                for (di, rel) in expected.relations.iter().enumerate() {
                    assert_eq!(
                        &got.relations[di][mi], rel,
                        "doc {di} member {mi} under {engine:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_scan_prunes_dispatches() {
        // Two keyword members with disjoint literals and no catch-all:
        // on a corpus where each sentence mentions at most one keyword,
        // the fused pass must dispatch fewer (segment, member) pairs
        // than sequential evaluation would (segments × members).
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let fleet = Arc::new(fleet_of(
            &[".*x{qab[0-9]+}.*", ".*x{qcd[0-9]+}.*"],
            Engine::Prefilter,
        ));
        assert!(fleet.num_needles() >= 2, "keywords should enroll needles");
        let runner = FleetRunner::new(
            fleet.clone(),
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        );
        let got = runner.run_slices(&refs);
        let all_pairs = (got.stats.segments * fleet.num_members()) as u64;
        assert!(
            got.stats.dispatches < all_pairs,
            "fused pass should prune: {} dispatches of {all_pairs} pairs",
            got.stats.dispatches
        );
        assert_eq!(
            got.stats.dispatches + got.stats.gate_rejected + got.stats.scan_rejected,
            all_pairs,
            "every (segment, member) pair is dispatched or rejected exactly once"
        );
        assert_eq!(
            got.stats.candidates.iter().sum::<u64>(),
            got.stats.dispatches
        );
        assert!(got.stats.fan_out() < fleet.num_members() as f64);
    }

    #[test]
    fn empty_fleet_short_circuits() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let fleet = Arc::new(Fleet::compile(&[], Engine::Dense));
        assert_eq!(fleet.num_members(), 0);
        let runner = FleetRunner::new(
            fleet,
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        );
        let got = runner.run_slices(&refs);
        assert_eq!(got.stats.docs, refs.len());
        assert_eq!(got.stats.segments, 0, "no splitting work for empty fleets");
        assert_eq!(got.stats.dispatches, 0);
        assert!(got.relations.iter().all(Vec::is_empty));
    }

    #[test]
    fn empty_corpus() {
        let fleet = Arc::new(fleet_of(&PATS, Engine::Dense));
        let runner = FleetRunner::new(
            fleet,
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        );
        let got = runner.run_slices(&[]);
        assert!(got.relations.is_empty());
        assert_eq!(got.stats.docs, 0);
    }

    #[test]
    fn zero_length_match_member_is_always_dispatched() {
        // `.*x{}.*` matches the empty span at every position, including
        // in empty segments: min_len 0, no prefix, no content evidence
        // — the fused gates must never prune it.
        let fleet = fleet_of(&[".*x{}.*", ".*x{qab[0-9]+}.*"], Engine::Prefilter);
        for doc in [&b""[..], b"q", b"qab1"] {
            let fused = fleet.eval(doc);
            assert_eq!(fused[0], fleet.member(0).eval(doc));
            assert!(!fused[0].is_empty(), "x{{}} matches everywhere");
            assert_eq!(fused[1], fleet.member(1).eval(doc));
        }
    }

    #[test]
    fn shared_classes_are_a_common_refinement() {
        let fleet = fleet_of(&PATS, Engine::Dense);
        let classes = fleet.shared_classes().expect("dense fleets share classes");
        // Every member's transition masks must be unions of shared
        // classes: all bytes in one class agree on membership.
        for mi in 0..fleet.num_members() {
            for mask in fleet.member(mi).evsa().byte_masks() {
                for c in 0..classes.num_classes() {
                    let mut inside = classes.bytes_of(c).map(|b| mask.contains(b));
                    let first = inside.next();
                    if let Some(first) = first {
                        assert!(
                            inside.all(|m| m == first),
                            "class {c} split by a member-{mi} mask"
                        );
                    }
                }
            }
        }
        let nfa = fleet_of(&PATS, Engine::Nfa);
        assert!(nfa.shared_classes().is_none());
    }

    #[test]
    fn pooled_fleet_runner_matches_spawned() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let config = CorpusRunnerConfig {
            workers: 3,
            batch_bytes: 4,
            queue_depth: 2,
            chunk_bytes: 3,
        };
        let fleet = Arc::new(fleet_of(&PATS, Engine::Prefilter));
        let spawned = FleetRunner::new(fleet.clone(), splitter::sentences().compile(), config)
            .run_slices(&refs);
        let pool = Arc::new(EvalPool::new(2));
        for _request in 0..3 {
            let pooled = FleetRunner::with_pool(
                fleet.clone(),
                splitter::sentences().compile(),
                config,
                pool.clone(),
            )
            .run_slices(&refs);
            assert_eq!(pooled.relations, spawned.relations);
        }
        assert!(pool.stats().submitted >= 3);
    }

    #[test]
    fn worker_panic_does_not_deadlock() {
        // A fleet over a corpus large enough to need several batches,
        // with a member whose evaluation panics (induced via an
        // unreachable assertion is not available, so instead assert the
        // drain protocol indirectly: the runner completes under a tiny
        // bounded queue even when batches vastly outnumber its depth).
        let owned: Vec<Vec<u8>> = (0..64)
            .map(|i| format!("qab{i}. qcd{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let fleet = Arc::new(fleet_of(&PATS, Engine::Dense));
        let runner = FleetRunner::new(
            fleet,
            splitter::sentences().compile(),
            CorpusRunnerConfig {
                workers: 2,
                batch_bytes: 1,
                queue_depth: 1,
                chunk_bytes: 2,
            },
        );
        let got = runner.run_slices(&refs);
        assert_eq!(got.stats.docs, 64);
        assert!(
            got.stats.batches > 8,
            "tiny batches should outnumber the queue"
        );
    }
}
