//! Language-level operations: containment, equivalence, counterexamples.
//!
//! Containment `L(A) ⊆ L(B)` is decided by a *lazy* subset construction on
//! `B` synchronized with a traversal of `A`: we explore reachable pairs
//! `(q, T)` of an `A`-state and a `B`-subset and fail as soon as an
//! accepting `q` is paired with a non-accepting `T`. When `B` is
//! deterministic the subsets stay singletons and the procedure runs in
//! time `O(|A|·|B|)` — this degeneration is exactly the paper's NL
//! containment algorithm for deterministic functional VSet-automata
//! (Theorem 4.3). For nondeterministic `B` it is the standard PSPACE
//! procedure (Theorem 4.1).

use crate::nfa::{Nfa, StateId, Sym};
use std::collections::{HashMap, VecDeque};

/// Outcome of a containment check: either contained, or a counterexample
/// word accepted by the left automaton and rejected by the right one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Containment {
    /// `L(A) ⊆ L(B)` holds.
    Contained,
    /// A witness word in `L(A) \ L(B)`.
    Counterexample(Vec<Sym>),
}

impl Containment {
    /// True iff containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, Containment::Contained)
    }
}

/// Decides `L(a) ⊆ L(b)` and produces a shortest-by-construction
/// counterexample on failure (BFS order).
pub fn contains(a: &Nfa, b: &Nfa) -> Containment {
    debug_assert_eq!(a.alphabet_size(), b.alphabet_size());
    let a = a.remove_eps();
    let b = b.remove_eps();

    let mut a_starts: Vec<StateId> = a.starts().to_vec();
    a_starts.sort_unstable();
    a_starts.dedup();
    let mut b_start: Vec<StateId> = b.starts().to_vec();
    b_start.sort_unstable();
    b_start.dedup();

    // Intern B-subsets.
    let mut subset_ids: HashMap<Vec<StateId>, u32> = HashMap::new();
    let mut subsets: Vec<Vec<StateId>> = Vec::new();
    let mut subset_final: Vec<bool> = Vec::new();
    let mut intern =
        |set: Vec<StateId>, subsets: &mut Vec<Vec<StateId>>, subset_final: &mut Vec<bool>| -> u32 {
            if let Some(&id) = subset_ids.get(&set) {
                return id;
            }
            let id = subsets.len() as u32;
            subset_final.push(set.iter().any(|&q| b.is_final(q)));
            subset_ids.insert(set.clone(), id);
            subsets.push(set);
            id
        };

    let b0 = intern(b_start, &mut subsets, &mut subset_final);

    // BFS over (A-state, B-subset) pairs, remembering parents for
    // counterexample reconstruction.
    type ParentEntry = (Option<(usize, Sym)>, StateId, u32);
    let mut seen: HashMap<(StateId, u32), usize> = HashMap::new();
    let mut parents: Vec<ParentEntry> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    for &qa in &a_starts {
        let key = (qa, b0);
        if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
            let node = parents.len();
            parents.push((None, qa, b0));
            e.insert(node);
            queue.push_back(node);
        }
    }

    let reconstruct = |parents: &Vec<ParentEntry>, mut node: usize| {
        let mut word: Vec<Sym> = Vec::new();
        while let (Some((p, s)), _, _) = parents[node] {
            word.push(s);
            node = p;
        }
        word.reverse();
        word
    };

    while let Some(node) = queue.pop_front() {
        let (_, qa, tb) = parents[node];
        if a.is_final(qa) && !subset_final[tb as usize] {
            return Containment::Counterexample(reconstruct(&parents, node));
        }
        // Successor B-subsets per symbol actually used by A from qa.
        let mut by_sym: HashMap<Sym, Vec<StateId>> = HashMap::new();
        for &(s, ra) in a.transitions_from(qa) {
            by_sym.entry(s).or_default().push(ra);
        }
        for (s, ra_list) in by_sym {
            let mut succ_b: Vec<StateId> = Vec::new();
            for &qb in &subsets[tb as usize] {
                for &(s2, rb) in b.transitions_from(qb) {
                    if s2 == s {
                        succ_b.push(rb);
                    }
                }
            }
            succ_b.sort_unstable();
            succ_b.dedup();
            let tb2 = intern(succ_b, &mut subsets, &mut subset_final);
            for &ra in &ra_list {
                let key = (ra, tb2);
                if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(key) {
                    let nnode = parents.len();
                    parents.push((Some((node, s)), ra, tb2));
                    e.insert(nnode);
                    queue.push_back(nnode);
                }
            }
        }
    }
    Containment::Contained
}

/// Decides language equivalence; on failure reports which side has the
/// witness word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The languages are equal.
    Equivalent,
    /// Word accepted by the left automaton only.
    LeftOnly(Vec<Sym>),
    /// Word accepted by the right automaton only.
    RightOnly(Vec<Sym>),
}

impl Equivalence {
    /// True iff the languages are equal.
    pub fn holds(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }
}

/// Decides `L(a) = L(b)`.
pub fn equivalent(a: &Nfa, b: &Nfa) -> Equivalence {
    match contains(a, b) {
        Containment::Counterexample(w) => Equivalence::LeftOnly(w),
        Containment::Contained => match contains(b, a) {
            Containment::Counterexample(w) => Equivalence::RightOnly(w),
            Containment::Contained => Equivalence::Equivalent,
        },
    }
}

/// Whether the automaton accepts every word over its alphabet
/// (universality; PSPACE-complete in general — used by tests and by the
/// hardness-family generators in the bench crate).
pub fn universal(a: &Nfa) -> Containment {
    let mut sigma_star = Nfa::new(a.alphabet_size());
    let q = sigma_star.add_state();
    sigma_star.add_start(q);
    sigma_star.set_final(q, true);
    for s in 0..a.alphabet_size() {
        sigma_star.add_transition(q, Sym(s), q);
    }
    contains(&sigma_star, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_nfa(asize: u32, w: &[u32]) -> Nfa {
        let mut n = Nfa::new(asize);
        let mut q = n.add_state();
        n.add_start(q);
        for &c in w {
            let r = n.add_state();
            n.add_transition(q, Sym(c), r);
            q = r;
        }
        n.set_final(q, true);
        n
    }

    fn sigma_star(asize: u32) -> Nfa {
        let mut n = Nfa::new(asize);
        let q = n.add_state();
        n.add_start(q);
        n.set_final(q, true);
        for s in 0..asize {
            n.add_transition(q, Sym(s), q);
        }
        n
    }

    #[test]
    fn word_in_sigma_star() {
        let w = word_nfa(2, &[0, 1, 0]);
        assert!(contains(&w, &sigma_star(2)).holds());
        assert_eq!(
            contains(&sigma_star(2), &w),
            Containment::Counterexample(vec![]) // empty word not in {aba}
        );
    }

    #[test]
    fn equivalence_direction() {
        let a = word_nfa(2, &[0]);
        let b = word_nfa(2, &[1]);
        match equivalent(&a, &b) {
            Equivalence::LeftOnly(w) => assert_eq!(w, vec![Sym(0)]),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(equivalent(&a, &word_nfa(2, &[0])).holds());
    }

    #[test]
    fn universality() {
        assert!(universal(&sigma_star(3)).holds());
        let w = word_nfa(2, &[0]);
        assert!(!universal(&w).holds());
    }

    #[test]
    fn counterexample_is_shortest() {
        // A = {a, aa}; B = {aa}. Shortest counterexample is "a".
        let mut a = word_nfa(1, &[0]);
        let f2 = a.add_state();
        a.add_transition(1, Sym(0), f2);
        a.set_final(f2, true);
        let b = word_nfa(1, &[0, 0]);
        match contains(&a, &b) {
            Containment::Counterexample(w) => assert_eq!(w.len(), 1),
            _ => panic!("should not be contained"),
        }
    }

    #[test]
    fn containment_with_eps_inputs() {
        let mut a = Nfa::new(2);
        let q0 = a.add_state();
        let q1 = a.add_state();
        a.add_start(q0);
        a.add_eps(q0, q1);
        a.set_final(q1, true);
        a.add_transition(q1, Sym(0), q1);
        // L(a) = a*
        let mut b = sigma_star(2);
        assert!(contains(&a, &b).holds());
        b = word_nfa(2, &[0]);
        assert!(!contains(&a, &b).holds());
    }
}
