//! Literal prefilters for spanner evaluation.
//!
//! The dense engine ([`crate::dense`]) made the per-byte cost of
//! evaluation nearly constant; this module attacks the *number of bytes
//! that pay it*. Real corpora are match-sparse — most sentences of a log
//! or wiki dump contain no transaction, no number, no entity — yet the
//! dense engine still walks its lazy DFA over every byte of every
//! segment. A [`PrefilteredEvsa`] answers most of those scans without
//! touching the DFA at all:
//!
//! 1. **Analysis** ([`PrefilterAnalysis::analyze`]) runs once per
//!    compiled spanner and extracts three document-level facts from the
//!    block-normal-form automaton: the *minimum match length* (shortest
//!    accepted document), the *required prefix literal* (bytes every
//!    accepted document must start with), and a *required byte class* (a
//!    byte-class of the automaton's alphabet partition that every
//!    accepted document must contain — verified by an emptiness check of
//!    the automaton restricted to the class's complement).
//! 2. **Gate** ([`PrefilterGate`]) compiles those facts into `O(1)` /
//!    one-SWAR-scan document rejection tests: too short → empty relation;
//!    wrong prefix → empty relation; no required byte present
//!    ([`splitc_automata::scan::ByteFinder`]) → empty relation. Only
//!    documents that survive — the *candidates* — reach the DFA.
//! 3. **Skip-loop** — candidates are evaluated by the dense engine with
//!    [`DenseConfig::skip_loop`] enabled, so `Σ*`-style contexts are
//!    crossed by the scanner instead of the transition table.
//!
//! Every test is conservative (may pass a non-matching document, never
//! rejects a matching one), so the engine is exact: a spanner whose
//! analysis finds nothing useful (`PrefilterAnalysis::is_trivial`)
//! degrades to plain dense evaluation automatically — the fallback
//! invariant the differential suites assert, and the reason the
//! prefilter engine never loses more than scanner noise on match-dense
//! workloads.

use crate::byteset::ByteSet;
use crate::dense::{DenseCache, DenseConfig, DenseEvsa};
use crate::evsa::EVsa;
use crate::tuple::SpanRelation;
use splitc_automata::classes::ByteClassBuilder;
use splitc_automata::nfa::StateId;
use splitc_automata::scan::ByteFinder;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Longest required-prefix literal the analysis extracts.
const MAX_PREFIX: usize = 16;

/// Longest required *contained* literal the analysis grows from a
/// required singleton byte.
const MAX_LITERAL: usize = 12;

/// Largest transition mask whose bytes are tried as literal-extension
/// candidates. Keyword-shaped spanners force their literal bytes
/// through tiny (usually singleton) masks; wide masks only describe
/// contexts and would bloat the candidate set for nothing.
const MAX_CANDIDATE_MASK: usize = 4;

/// Largest required-byte-set size worth scanning for: a set covering
/// more than half the alphabet rejects almost nothing, so the gate
/// drops it rather than paying a scan per document.
const MAX_REQUIRED_BYTES: usize = 128;

/// Counters of one prefiltered evaluation stream, surfaced per corpus
/// run in `splitc_exec::CorpusStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Bytes never stepped through a DFA table: documents rejected
    /// wholesale by the gate plus bytes jumped by the skip-loop scanner.
    pub bytes_skipped: u64,
    /// Documents that passed the gate and were handed to the DFA.
    pub candidates: u64,
    /// Candidates whose evaluation produced no tuple — the gate's false
    /// positives (a high rate means the analysis is too coarse for the
    /// workload).
    pub false_candidates: u64,
}

impl PrefilterStats {
    /// Component-wise sum (for aggregating per-worker stats).
    pub fn merge(self, other: PrefilterStats) -> PrefilterStats {
        PrefilterStats {
            bytes_skipped: self.bytes_skipped + other.bytes_skipped,
            candidates: self.candidates + other.candidates,
            false_candidates: self.false_candidates + other.false_candidates,
        }
    }
}

/// Document-level facts extracted from a block-normal-form automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefilterAnalysis {
    /// Length of the shortest accepted document; `usize::MAX` when the
    /// language is empty (every document is rejected).
    pub min_len: usize,
    /// Bytes every accepted document starts with (may be empty).
    pub prefix: Vec<u8>,
    /// A byte set every accepted document intersects, when the analysis
    /// found a selective one (at most `MAX_REQUIRED_BYTES` bytes).
    pub required: Option<ByteSet>,
    /// A literal every accepted document *contains* (anywhere), grown
    /// from a required singleton byte by product-emptiness checks; empty
    /// when no single byte is required. A one-byte literal carries no
    /// information beyond `required` (gates skip it); longer literals
    /// are what make multi-spanner needle scanning selective.
    pub literal: Vec<u8>,
}

impl PrefilterAnalysis {
    /// Analyzes `evsa`. Cost is a handful of BFS passes over the
    /// automaton — negligible next to compilation.
    pub fn analyze(evsa: &EVsa) -> PrefilterAnalysis {
        let min_len = min_match_len(evsa);
        if min_len == 0 || min_len == usize::MAX {
            // Empty document accepted: nothing is required. Empty
            // language: the length test alone rejects everything.
            return PrefilterAnalysis {
                min_len,
                prefix: Vec::new(),
                required: None,
                literal: Vec::new(),
            };
        }
        let required = required_byteset(evsa);
        let literal = match &required {
            Some(set) if set.len() == 1 => required_literal(evsa, set.first().expect("singleton")),
            _ => Vec::new(),
        };
        PrefilterAnalysis {
            min_len,
            prefix: required_prefix(evsa),
            required,
            literal,
        }
    }

    /// Whether the analysis found nothing a gate could use — the
    /// documented fallback condition: a trivial analysis makes
    /// [`PrefilteredEvsa`] behave exactly like the dense engine (plus
    /// the skip-loop).
    pub fn is_trivial(&self) -> bool {
        self.min_len == 0 && self.prefix.is_empty() && self.required.is_none()
    }

    /// Literal *content needles* for multi-spanner scanning: a set of
    /// byte strings such that every document with a non-empty relation
    /// contains at least one of them (at most `max_set` needles).
    /// `None` means the analysis found no usable content fact, or the
    /// needle set would be larger than `max_set` — the caller must then
    /// treat the spanner as always-viable.
    ///
    /// Soundness: a non-empty required prefix is in particular a
    /// *contained* literal, so it alone suffices; a grown required
    /// literal likewise; otherwise each byte of a small required
    /// [`ByteSet`] becomes a one-byte needle. All three facts come from
    /// the emptiness/frontier analyses above, so the needles inherit
    /// their conservativeness: a document containing no needle provably
    /// yields an empty relation, while containing one promises nothing.
    pub fn content_needles(&self, max_set: usize) -> Option<Vec<Vec<u8>>> {
        if !self.prefix.is_empty() {
            return Some(vec![self.prefix.clone()]);
        }
        if !self.literal.is_empty() {
            return Some(vec![self.literal.clone()]);
        }
        if let Some(set) = &self.required {
            if set.len() <= max_set {
                return Some(set.iter().map(|b| vec![b]).collect());
            }
        }
        None
    }

    /// Compiles the analysis into a document gate.
    pub fn gate(&self) -> PrefilterGate {
        PrefilterGate {
            min_len: self.min_len,
            prefix: self.prefix.clone(),
            required: self.required.as_ref().map(|set| {
                let set = *set;
                ByteFinder::from_predicate(move |b| set.contains(b))
            }),
            literal: (self.literal.len() >= 2).then(|| {
                let first = self.literal[0];
                (
                    self.literal.clone(),
                    ByteFinder::from_predicate(move |b| b == first),
                )
            }),
        }
    }
}

/// Length of the shortest accepted document: BFS over byte transitions
/// (blocks are free), `usize::MAX` when no accepting configuration is
/// reachable.
fn min_match_len(evsa: &EVsa) -> usize {
    let ns = evsa.num_states();
    if ns == 0 {
        return usize::MAX;
    }
    let mut dist = vec![usize::MAX; ns];
    let mut queue = VecDeque::new();
    dist[evsa.start() as usize] = 0;
    queue.push_back(evsa.start());
    let mut best = usize::MAX;
    while let Some(q) = queue.pop_front() {
        let d = dist[q as usize];
        if d >= best {
            continue;
        }
        if !evsa.final_blocks(q).is_empty() {
            best = best.min(d);
            continue;
        }
        for (_, mask, r) in evsa.transitions_from(q) {
            if !mask.is_empty() && dist[*r as usize] == usize::MAX {
                dist[*r as usize] = d + 1;
                queue.push_back(*r);
            }
        }
    }
    best
}

/// The longest literal (capped at [`MAX_PREFIX`]) every accepted
/// document starts with: follow the frontier from the start state while
/// no frontier state accepts and all outgoing byte sets agree on a
/// single byte.
fn required_prefix(evsa: &EVsa) -> Vec<u8> {
    let mut prefix = Vec::new();
    let mut frontier: Vec<StateId> = vec![evsa.start()];
    while prefix.len() < MAX_PREFIX {
        if frontier.iter().any(|&q| !evsa.final_blocks(q).is_empty()) {
            break; // a document may end here
        }
        let mut union = ByteSet::EMPTY;
        for &q in &frontier {
            for (_, mask, _) in evsa.transitions_from(q) {
                union = union.or(mask);
            }
        }
        if union.len() != 1 {
            break;
        }
        let b = union.first().expect("non-empty union");
        prefix.push(b);
        let mut next: Vec<StateId> = Vec::new();
        for &q in &frontier {
            for (_, mask, r) in evsa.transitions_from(q) {
                if mask.contains(b) && !next.contains(r) {
                    next.push(*r);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break; // unreachable for a non-empty language, but be safe
        }
    }
    prefix
}

/// Searches the automaton's byte-class partition for a *required* class
/// union: a set of bytes `B` such that the automaton restricted to
/// transitions avoidable without `B` reaches no accepting state — i.e.
/// every accepted (non-empty-checked by the caller) document contains a
/// byte of `B`. Returns the smallest selective class found.
fn required_byteset(evsa: &EVsa) -> Option<ByteSet> {
    let mut builder = ByteClassBuilder::new();
    for m in evsa.byte_masks() {
        builder.add_set(|b| m.contains(b));
    }
    let classes = builder.build();
    let mut best: Option<ByteSet> = None;
    for c in 0..classes.num_classes() {
        let mut bytes = ByteSet::EMPTY;
        for b in classes.bytes_of(c) {
            bytes.insert(b);
        }
        if bytes.len() > MAX_REQUIRED_BYTES {
            continue;
        }
        if let Some(prev) = &best {
            if bytes.len() >= prev.len() {
                continue; // only interested in a more selective class
            }
        }
        if class_is_required(evsa, &bytes) {
            best = Some(bytes);
        }
    }
    best
}

/// Whether every accepted document contains a byte of `bytes`:
/// reachability from the start over transitions whose mask has at least
/// one byte *outside* `bytes`; required iff no reachable state accepts.
fn class_is_required(evsa: &EVsa, bytes: &ByteSet) -> bool {
    let avoid = bytes.complement();
    let ns = evsa.num_states();
    let mut seen = vec![false; ns];
    let mut queue = VecDeque::new();
    seen[evsa.start() as usize] = true;
    queue.push_back(evsa.start());
    while let Some(q) = queue.pop_front() {
        if !evsa.final_blocks(q).is_empty() {
            return false; // an accepting run avoiding `bytes` exists
        }
        for (_, mask, r) in evsa.transitions_from(q) {
            if !mask.and(&avoid).is_empty() && !seen[*r as usize] {
                seen[*r as usize] = true;
                queue.push_back(*r);
            }
        }
    }
    true
}

/// Grows a required singleton byte into the longest *contained* literal
/// (capped at [`MAX_LITERAL`]): greedy extension to the right, then to
/// the left, keeping each candidate word only when the product-emptiness
/// check proves every accepted document contains it. Extension
/// candidates are the bytes of small transition masks — the bytes a
/// keyword-shaped spanner actually forces.
fn required_literal(evsa: &EVsa, seed: u8) -> Vec<u8> {
    let mut candidates: Vec<u8> = Vec::new();
    for m in evsa.byte_masks() {
        if !m.is_empty() && m.len() <= MAX_CANDIDATE_MASK {
            for b in m.iter() {
                if !candidates.contains(&b) {
                    candidates.push(b);
                }
            }
        }
    }
    candidates.sort_unstable();
    let mut w = vec![seed];
    loop {
        if w.len() >= MAX_LITERAL {
            break;
        }
        let grown = candidates.iter().find_map(|&x| {
            let mut t = w.clone();
            t.push(x);
            word_is_required(evsa, &t).then_some(t)
        });
        match grown {
            Some(t) => w = t,
            None => break,
        }
    }
    loop {
        if w.len() >= MAX_LITERAL {
            break;
        }
        let grown = candidates.iter().find_map(|&x| {
            let mut t = Vec::with_capacity(w.len() + 1);
            t.push(x);
            t.extend_from_slice(&w);
            word_is_required(evsa, &t).then_some(t)
        });
        match grown {
            Some(t) => w = t,
            None => break,
        }
    }
    w
}

/// Whether every accepted document contains `w` as a substring: the
/// product of the automaton with the KMP automaton of `w`, restricted
/// to runs that never complete `w`, must reach no accepting state.
/// Exact (like [`class_is_required`]) — the product explores every
/// byte value a transition mask admits.
fn word_is_required(evsa: &EVsa, w: &[u8]) -> bool {
    let m = w.len();
    debug_assert!(m > 0);
    // KMP failure table and dense per-state byte stepper.
    let mut fail = vec![0usize; m];
    for i in 1..m {
        let mut k = fail[i - 1];
        while k > 0 && w[i] != w[k] {
            k = fail[k - 1];
        }
        if w[i] == w[k] {
            k += 1;
        }
        fail[i] = k;
    }
    let step = |k: usize, b: u8| -> usize {
        let mut k = k;
        while k > 0 && b != w[k] {
            k = fail[k - 1];
        }
        if b == w[k] {
            k + 1
        } else {
            0
        }
    };
    let ns = evsa.num_states();
    let mut seen = vec![false; ns * m];
    let mut queue = VecDeque::new();
    let start = evsa.start() as usize * m;
    seen[start] = true;
    queue.push_back((evsa.start(), 0usize));
    while let Some((q, k)) = queue.pop_front() {
        if !evsa.final_blocks(q).is_empty() {
            return false; // an accepting run avoiding `w` exists
        }
        for (_, mask, r) in evsa.transitions_from(q) {
            for b in mask.iter() {
                let k2 = step(k, b);
                if k2 == m {
                    continue; // this byte completes `w` — pruned
                }
                let idx = *r as usize * m + k2;
                if !seen[idx] {
                    seen[idx] = true;
                    queue.push_back((*r, k2));
                }
            }
        }
    }
    true
}

/// The compiled document-rejection test of a [`PrefilterAnalysis`].
#[derive(Debug, Clone)]
pub struct PrefilterGate {
    min_len: usize,
    prefix: Vec<u8>,
    required: Option<ByteFinder>,
    /// A contained literal of length ≥ 2 (one-byte literals are already
    /// covered by `required`), plus a SWAR finder for its first byte.
    literal: Option<(Vec<u8>, ByteFinder)>,
}

impl PrefilterGate {
    /// Whether `doc` provably produces an empty relation — without
    /// touching any automaton. Conservative: `false` means "maybe".
    pub fn rejects(&self, doc: &[u8]) -> bool {
        if doc.len() < self.min_len {
            return true;
        }
        if !self.prefix.is_empty() && !doc.starts_with(&self.prefix) {
            return true;
        }
        if let Some(f) = &self.required {
            if f.find(doc).is_none() {
                return true;
            }
        }
        if let Some((lit, first)) = &self.literal {
            if !contains_literal(doc, lit, first) {
                return true;
            }
        }
        false
    }

    /// Whether the gate can never reject anything (trivial analysis).
    pub fn is_transparent(&self) -> bool {
        self.min_len == 0 && self.prefix.is_empty() && self.required.is_none()
    }
}

/// Substring search driven by a SWAR finder over the literal's first
/// byte — the match-sparse shape the gate cares about (the literal's
/// first byte is itself rare in rejected documents, so the quadratic
/// worst case never materializes there).
fn contains_literal(doc: &[u8], lit: &[u8], first: &ByteFinder) -> bool {
    let mut i = 0;
    while i + lit.len() <= doc.len() {
        match first.find(&doc[i..=doc.len() - lit.len()]) {
            Some(j) => {
                if doc[i + j..].starts_with(lit) {
                    return true;
                }
                i += j + 1;
            }
            None => return false,
        }
    }
    false
}

/// An [`EVsa`] compiled for the prefiltered engine: the dense engine
/// with the skip-loop enabled, behind a [`PrefilterGate`]. Construct via
/// [`PrefilteredEvsa::compile`] or [`EVsa::compile_prefilter`]; share
/// across workers in an `Arc` like [`DenseEvsa`].
#[derive(Debug)]
pub struct PrefilteredEvsa {
    dense: Arc<DenseEvsa>,
    analysis: PrefilterAnalysis,
    gate: PrefilterGate,
    /// Reusable scan caches for the pooled entry points.
    caches: Mutex<Vec<DenseCache>>,
    /// Aggregate statistics of the pooled entry points.
    stats: Mutex<PrefilterStats>,
}

impl PrefilteredEvsa {
    /// Analyzes and compiles `evsa`. The dense engine inside always runs
    /// with [`DenseConfig::skip_loop`] on; the other knobs of `config`
    /// are passed through.
    pub fn compile(evsa: Arc<EVsa>, config: DenseConfig) -> PrefilteredEvsa {
        let analysis = PrefilterAnalysis::analyze(&evsa);
        let gate = analysis.gate();
        let dense = Arc::new(DenseEvsa::compile(
            evsa,
            DenseConfig {
                skip_loop: true,
                ..config
            },
        ));
        PrefilteredEvsa::assemble(dense, analysis, gate)
    }

    /// Like [`PrefilteredEvsa::compile`], but indexes the dense tables
    /// by a caller-supplied byte partition (see
    /// [`DenseEvsa::compile_with_classes`] — the partition must refine
    /// every transition mask, and the fleet engine passes the coarsest
    /// common refinement across all members).
    pub fn compile_with_classes(
        evsa: Arc<EVsa>,
        config: DenseConfig,
        classes: splitc_automata::classes::ByteClasses,
    ) -> PrefilteredEvsa {
        let analysis = PrefilterAnalysis::analyze(&evsa);
        let gate = analysis.gate();
        let dense = Arc::new(DenseEvsa::compile_with_classes(
            evsa,
            DenseConfig {
                skip_loop: true,
                ..config
            },
            classes,
        ));
        PrefilteredEvsa::assemble(dense, analysis, gate)
    }

    fn assemble(
        dense: Arc<DenseEvsa>,
        analysis: PrefilterAnalysis,
        gate: PrefilterGate,
    ) -> PrefilteredEvsa {
        PrefilteredEvsa {
            dense,
            analysis,
            gate,
            caches: Mutex::new(Vec::new()),
            stats: Mutex::new(PrefilterStats::default()),
        }
    }

    /// The analysis backing the gate.
    pub fn analysis(&self) -> &PrefilterAnalysis {
        &self.analysis
    }

    /// The document gate.
    pub fn gate(&self) -> &PrefilterGate {
        &self.gate
    }

    /// The skip-loop-enabled dense compilation behind the gate.
    pub fn dense(&self) -> &Arc<DenseEvsa> {
        &self.dense
    }

    /// The compiled automaton.
    pub fn evsa(&self) -> &EVsa {
        self.dense.evsa()
    }

    /// The compiled automaton behind its shared handle.
    pub fn evsa_arc(&self) -> &Arc<EVsa> {
        self.dense.evsa_arc()
    }

    /// Snapshot of the statistics accumulated by the pooled entry points
    /// ([`PrefilteredEvsa::eval`] / [`PrefilteredEvsa::accepts`]).
    /// Callers driving [`PrefilteredEvsa::eval_with`] own their stats.
    pub fn stats(&self) -> PrefilterStats {
        *self.stats.lock().expect("stats poisoned")
    }

    /// Evaluates on a document, producing exactly the relation of the
    /// dense and NFA engines. Uses pooled caches and the internal stats
    /// aggregate.
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        let mut cache = self.take_cache();
        let mut stats = PrefilterStats::default();
        let out = self.eval_with(doc, &mut cache, &mut stats);
        self.return_cache(cache);
        let mut agg = self.stats.lock().expect("stats poisoned");
        *agg = agg.merge(stats);
        out
    }

    /// Evaluates with an explicit scan cache and stats accumulator (one
    /// pair per worker; the cache amortizes lazy determinization, the
    /// stats feed `CorpusStats`).
    pub fn eval_with(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> SpanRelation {
        if self.gate.rejects(doc) {
            stats.bytes_skipped += doc.len() as u64;
            return SpanRelation::empty();
        }
        if !self.gate.is_transparent() {
            stats.candidates += 1;
        }
        let skipped_before = cache.skipped_bytes();
        let rel = self.dense.eval_with(doc, cache);
        stats.bytes_skipped += cache.skipped_bytes() - skipped_before;
        if rel.is_empty() && !self.gate.is_transparent() {
            stats.false_candidates += 1;
        }
        rel
    }

    /// Boolean acceptance through the gate (pooled cache + stats).
    pub fn accepts(&self, doc: &[u8]) -> bool {
        let mut cache = self.take_cache();
        let mut stats = PrefilterStats::default();
        let out = self.accepts_with(doc, &mut cache, &mut stats);
        self.return_cache(cache);
        let mut agg = self.stats.lock().expect("stats poisoned");
        *agg = agg.merge(stats);
        out
    }

    /// Boolean acceptance with an explicit cache and stats accumulator.
    pub fn accepts_with(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> bool {
        if self.gate.rejects(doc) {
            stats.bytes_skipped += doc.len() as u64;
            return false;
        }
        if !self.gate.is_transparent() {
            stats.candidates += 1;
        }
        let skipped_before = cache.skipped_bytes();
        let accepted = self.dense.accepts_with(doc, cache);
        stats.bytes_skipped += cache.skipped_bytes() - skipped_before;
        if !accepted && !self.gate.is_transparent() {
            stats.false_candidates += 1;
        }
        accepted
    }

    fn take_cache(&self) -> DenseCache {
        self.caches
            .lock()
            .expect("cache pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn return_cache(&self, cache: DenseCache) {
        self.caches.lock().expect("cache pool poisoned").push(cache);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseCacheStats;
    use crate::eval::eval_evsa;
    use crate::rgx::Rgx;

    fn compile(pattern: &str) -> Arc<EVsa> {
        let vsa = Rgx::parse(pattern).unwrap().to_vsa().unwrap();
        Arc::new(EVsa::from_functional(&vsa.functionalize()))
    }

    fn prefiltered(pattern: &str) -> PrefilteredEvsa {
        PrefilteredEvsa::compile(compile(pattern), DenseConfig::default())
    }

    #[test]
    fn analysis_extracts_min_len_prefix_and_required_class() {
        let a = PrefilterAnalysis::analyze(&compile("ab(x{c+})d.*"));
        assert_eq!(a.min_len, 4);
        // The capture's first byte is forced too: every match reads "abc".
        assert_eq!(a.prefix, b"abc".to_vec());

        // Digits are mandatory for the number extractor even though the
        // contexts accept anything.
        let a = PrefilterAnalysis::analyze(&compile("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)"));
        assert_eq!(a.min_len, 1);
        assert!(a.prefix.is_empty());
        let required = a.required.expect("digits are required");
        assert_eq!(required, ByteSet::range(b'0', b'9'));

        // `.*x{a+}.*`: an 'a' is required.
        let a = PrefilterAnalysis::analyze(&compile(".*x{a+}.*"));
        assert_eq!(a.min_len, 1);
        assert_eq!(a.required, Some(ByteSet::single(b'a')));
    }

    #[test]
    fn literal_grows_from_the_required_byte() {
        // Keyword extractor: every accepted document contains "qab".
        let a = PrefilterAnalysis::analyze(&compile(".*x{qab[0-9]+}.*"));
        assert_eq!(a.literal, b"qab".to_vec());
        assert!(a.prefix.is_empty(), "the .* context forbids a prefix");
        // The literal feeds both the gate and the needle extraction.
        assert_eq!(a.content_needles(16), Some(vec![b"qab".to_vec()]));
        let gate = a.gate();
        assert!(gate.rejects(b"qa ba qb aq but never the word"));
        assert!(!gate.rejects(b"here qab7 lives"));
        // Multi-byte required sets grow no literal.
        let a = PrefilterAnalysis::analyze(&compile("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)"));
        assert!(a.literal.is_empty());
        // Gate + engine equivalence on literal-gated documents.
        let e = compile(".*x{qab[0-9]+}.*");
        let p = PrefilteredEvsa::compile(e.clone(), DenseConfig::default());
        for doc in [
            b"qab1 and qab22".as_slice(),
            b"qa b a b q no hit",
            b"qab", // literal present, but no digit: false candidate
            b"",
        ] {
            assert_eq!(p.eval(doc), eval_evsa(&e, doc));
        }
    }

    #[test]
    fn content_needles_prefer_the_prefix_literal() {
        // Forced prefix: the single needle is the literal itself.
        let a = PrefilterAnalysis::analyze(&compile("ab(x{c+})d.*"));
        assert_eq!(a.content_needles(16), Some(vec![b"abc".to_vec()]));
        // Required byte set: one single-byte needle per member.
        let a = PrefilterAnalysis::analyze(&compile("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)"));
        let needles = a.content_needles(16).expect("digits required");
        assert_eq!(needles.len(), 10);
        assert!(needles.contains(&vec![b'0']));
        // ...but not when the set exceeds the cap.
        assert_eq!(a.content_needles(4), None);
        // Trivial analysis: no needles.
        assert_eq!(
            PrefilterAnalysis::analyze(&compile(".*x{}.*")).content_needles(16),
            None
        );
    }

    #[test]
    fn shared_classes_prefilter_matches_own_partition() {
        let e = compile("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)");
        let own = PrefilteredEvsa::compile(e.clone(), DenseConfig::default());
        let mut builder = ByteClassBuilder::new();
        for m in e.byte_masks() {
            builder.add_set(|b| m.contains(b));
        }
        builder.add_set(|b: u8| b.is_ascii_lowercase());
        let shared = PrefilteredEvsa::compile_with_classes(
            e.clone(),
            DenseConfig::default(),
            builder.build(),
        );
        for doc in [b"x 12 y".as_slice(), b"plain", b"", b"7"] {
            assert_eq!(shared.eval(doc), own.eval(doc));
        }
    }

    #[test]
    fn trivial_analyses_fall_back() {
        // Zero-length-match spanner: the empty document is accepted, so
        // neither length nor content can be required.
        let a = PrefilterAnalysis::analyze(&compile(".*x{}.*"));
        assert_eq!(a.min_len, 0);
        assert!(a.is_trivial());
        assert!(a.gate().is_transparent());
        // Universal matcher.
        assert!(PrefilterAnalysis::analyze(&compile("x{.*}")).is_trivial());
    }

    #[test]
    fn empty_language_rejects_everything() {
        // An automaton with no accepting run at all.
        let v = crate::vsa::Vsa::new(crate::vars::VarTable::empty());
        let e = Arc::new(EVsa::from_functional(&v));
        let a = PrefilterAnalysis::analyze(&e);
        assert_eq!(a.min_len, usize::MAX);
        let p = PrefilteredEvsa::compile(e, DenseConfig::default());
        assert!(p.eval(b"anything").is_empty());
        assert!(!p.accepts(b"anything"));
    }

    #[test]
    fn gate_rejections_do_not_change_results() {
        for (pat, docs) in [
            (
                "(.*[^0-9]|)x{[0-9]+}([^0-9].*|)",
                vec![
                    b"no digits here at all".to_vec(),
                    b"answer 42 found".to_vec(),
                    b"7".to_vec(),
                    b"".to_vec(),
                ],
            ),
            (
                ".*x{a+}.*",
                vec![b"bbbb".to_vec(), b"bab".to_vec(), b"".to_vec()],
            ),
            (
                "ab(x{c+})d",
                vec![
                    b"abccd".to_vec(),
                    b"xbccd".to_vec(),
                    b"a".to_vec(),
                    b"".to_vec(),
                ],
            ),
            (".*x{}.*", vec![b"ab".to_vec(), b"".to_vec()]),
        ] {
            let e = compile(pat);
            let p = PrefilteredEvsa::compile(e.clone(), DenseConfig::default());
            for doc in docs {
                assert_eq!(p.eval(&doc), eval_evsa(&e, &doc), "pattern {pat}");
                assert_eq!(
                    p.accepts(&doc),
                    !eval_evsa(&e, &doc).is_empty(),
                    "pattern {pat}"
                );
            }
        }
    }

    #[test]
    fn short_documents_short_circuit_without_touching_the_dfa() {
        let p = prefiltered("ab(x{c+})d");
        assert_eq!(p.analysis().min_len, 4);
        let mut cache = DenseCache::default();
        let mut stats = PrefilterStats::default();
        assert!(p.eval_with(b"abc", &mut cache, &mut stats).is_empty());
        // Rejected before evaluation: no DFA step ran, the whole
        // document counts as skipped, and it is not a candidate.
        assert_eq!(cache.stats(), DenseCacheStats::default());
        assert_eq!(stats.bytes_skipped, 3);
        assert_eq!(stats.candidates, 0);

        // Zero-length-match corner: min length 0 never rejects; the
        // empty document still produces its tuple.
        let z = prefiltered(".*x{}.*");
        assert_eq!(z.analysis().min_len, 0);
        assert_eq!(z.eval(b"").len(), 1);
    }

    #[test]
    fn stats_count_candidates_and_false_candidates() {
        let p = prefiltered("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)");
        let mut cache = DenseCache::default();
        let mut stats = PrefilterStats::default();
        // Gate-rejected (no digit): skipped, not a candidate.
        assert!(p
            .eval_with(b"plain words only", &mut cache, &mut stats)
            .is_empty());
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.bytes_skipped, 16);
        // True candidate with a match.
        assert!(!p.eval_with(b"x 12 y", &mut cache, &mut stats).is_empty());
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.false_candidates, 0);
        let merged = stats.merge(PrefilterStats {
            bytes_skipped: 1,
            candidates: 1,
            false_candidates: 1,
        });
        assert_eq!(merged.candidates, 2);
        assert_eq!(merged.false_candidates, 1);
        assert_eq!(merged.bytes_skipped, stats.bytes_skipped + 1);
    }

    #[test]
    fn skip_loop_skips_sparse_context_bytes() {
        let p = prefiltered("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)");
        let mut doc = vec![b'a'; 4096];
        doc[2048] = b'7';
        let e = compile("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)");
        let mut cache = DenseCache::default();
        let mut stats = PrefilterStats::default();
        let rel = p.eval_with(&doc, &mut cache, &mut stats);
        assert_eq!(rel, eval_evsa(&e, &doc));
        assert_eq!(rel.len(), 1);
        assert!(
            stats.bytes_skipped > 3000,
            "skip-loop should cross the flat context: {stats:?}"
        );
    }

    #[test]
    fn pooled_entry_points_aggregate_stats() {
        let p = prefiltered(".*x{a+}.*");
        assert!(p.eval(b"bbbb").is_empty());
        assert!(p.accepts(b"bba"));
        let s = p.stats();
        assert!(s.bytes_skipped >= 4, "rejected doc counted: {s:?}");
        assert_eq!(s.candidates, 1);
    }
}
