//! Spans and the shift operator `≫` (paper §2, Figure 1).
//!
//! The paper writes a span of a document `d = σ₁ ⋯ σₙ` as `[i, j⟩` with
//! `1 ≤ i ≤ j ≤ n + 1`, denoting the substring `σᵢ ⋯ σ_{j−1}`. We store
//! spans **0-based**: [`Span::start`]` = i − 1` and [`Span::end`]` = j − 1`,
//! so `d[span.start .. span.end]` is the selected substring. All predicates
//! below are literal translations of the paper's definitions under this
//! shift of origin.

use std::fmt;

/// A span `[start, end)` of a document, 0-based, end-exclusive.
///
/// Corresponds to the paper's `[start+1, end+1⟩` in 1-based notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Inclusive 0-based start offset.
    pub start: usize,
    /// Exclusive 0-based end offset.
    pub end: usize,
}

impl Span {
    /// Creates a span; panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Span {
        assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// Length of the selected substring.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span selects the empty string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The paper's *shift* operator `s′ ≫ s` (Figure 1): re-bases `self`,
    /// a span of the substring `d_s`, to a span of the original document
    /// `d`, by shifting it `s.start` characters to the right.
    ///
    /// ```
    /// use splitc_spanner::span::Span;
    /// // Paper Figure 1 (1-based): [2,6⟩ ≫ [7,13⟩ = [8,12⟩.
    /// // 0-based: [1,5) ≫ [6,12) = [7,11).
    /// let s_prime = Span::new(1, 5);
    /// let s = Span::new(6, 12);
    /// assert_eq!(s_prime.shift(s), Span::new(7, 11));
    /// ```
    #[inline]
    pub fn shift(self, s: Span) -> Span {
        Span {
            start: self.start + s.start,
            end: self.end + s.start,
        }
    }

    /// Inverse of [`Span::shift`]: re-bases `self`, a span of `d` lying
    /// inside `s`, to a span of the substring `d_s`. Returns `None` if
    /// `self` is not contained in `s`.
    pub fn unshift(self, s: Span) -> Option<Span> {
        if s.contains_span(self) {
            Some(Span {
                start: self.start - s.start,
                end: self.end - s.start,
            })
        } else {
            None
        }
    }

    /// The paper's overlap predicate: spans `[i, j⟩` and `[i′, j′⟩`
    /// *overlap* if `i ≤ i′ < j` or `i′ ≤ i < j′`.
    ///
    /// Note the asymmetry around empty spans: an empty span overlaps a
    /// span that strictly surrounds its position, but two empty spans
    /// never overlap.
    #[inline]
    pub fn overlaps(self, other: Span) -> bool {
        (self.start <= other.start && other.start < self.end)
            || (other.start <= self.start && self.start < other.end)
    }

    /// The paper's disjointness predicate: the negation of
    /// [`Span::overlaps`].
    #[inline]
    pub fn disjoint(self, other: Span) -> bool {
        !self.overlaps(other)
    }

    /// The paper's containment: `[i, j⟩` contains `[i′, j′⟩` if
    /// `i ≤ i′ ≤ j′ ≤ j`.
    #[inline]
    pub fn contains_span(self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Extracts the selected substring of `doc` (`d_{[i,j⟩}`).
    pub fn slice(self, doc: &[u8]) -> &[u8] {
        &doc[self.start..self.end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display in the paper's 1-based notation.
        write!(f, "[{}, {}⟩", self.start + 1, self.end + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_matches_paper_figure_1() {
        // Figure 1: s = [7,13⟩, s' = [2,6⟩, s' ≫ s = [8,12⟩ (1-based).
        let s = Span::new(6, 12);
        let s_prime = Span::new(1, 5);
        assert_eq!(s_prime.shift(s), Span::new(7, 11));
        assert_eq!(format!("{}", s_prime.shift(s)), "[8, 12⟩");
    }

    #[test]
    fn shift_is_associative() {
        // (s1 ≫ s2) ≫ s3 = s1 ≫ (s2 ≫ s3): used in Lemma 6.5.
        let s1 = Span::new(1, 2);
        let s2 = Span::new(3, 8);
        let s3 = Span::new(2, 20);
        assert_eq!(s1.shift(s2).shift(s3), s1.shift(s2.shift(s3)));
    }

    #[test]
    fn unshift_roundtrip() {
        let outer = Span::new(5, 15);
        let inner = Span::new(7, 9);
        let local = inner.unshift(outer).unwrap();
        assert_eq!(local, Span::new(2, 4));
        assert_eq!(local.shift(outer), inner);
        assert_eq!(Span::new(4, 16).unshift(outer), None);
    }

    #[test]
    fn overlap_cases() {
        let a = Span::new(0, 3);
        let b = Span::new(2, 5);
        let c = Span::new(3, 6);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        assert!(a.disjoint(c));
    }

    #[test]
    fn empty_span_overlap_matches_paper() {
        // 1-based [2,2⟩ inside [1,3⟩ overlaps; [2,2⟩ at the edge of
        // [1,2⟩ does not; two equal empty spans do not overlap.
        let empty = Span::new(1, 1);
        assert!(Span::new(0, 2).overlaps(empty));
        assert!(empty.overlaps(Span::new(0, 2)));
        assert!(!Span::new(0, 1).overlaps(empty));
        assert!(!empty.overlaps(empty));
    }

    #[test]
    fn containment() {
        let outer = Span::new(1, 9);
        assert!(outer.contains_span(Span::new(1, 9)));
        assert!(outer.contains_span(Span::new(3, 3)));
        assert!(!outer.contains_span(Span::new(0, 2)));
        assert!(!Span::new(3, 3).contains_span(outer));
    }

    #[test]
    fn slice_and_len() {
        let doc = b"hello world";
        let s = Span::new(6, 11);
        assert_eq!(s.slice(doc), b"world");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_span_panics() {
        let _ = Span::new(4, 2);
    }
}
