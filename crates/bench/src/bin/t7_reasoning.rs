//! T7 — §6: splitter commutativity (Thm 6.2) and subsumption (Thm 6.3)
//! as query-planning primitives, measured over the built-in splitter
//! library.

use splitc_bench::{ms, time_best, Table};
use splitc_core::reasoning::{commute, subsumes};
use splitc_spanner::splitter;

fn main() {
    let sentences = splitter::sentences();
    let lines = splitter::lines();
    let paragraphs = splitter::paragraphs();
    let whole = splitter::whole_document();

    let mut t = Table::new(
        "T7a — commutativity (Thm 6.2)",
        &["S1", "S2", "commute", "time ms"],
    );
    let pairs = [
        ("sentences", &sentences, "lines", &lines),
        ("sentences", &sentences, "whole_document", &whole),
        ("lines", &lines, "paragraphs", &paragraphs),
    ];
    for (n1, s1, n2, s2) in pairs {
        let (v, d) = time_best(1, || commute(s1, s2, None).unwrap());
        t.row(&[n1.into(), n2.into(), v.holds().to_string(), ms(d)]);
    }
    t.print();

    let mut t = Table::new(
        "T7b — subsumption S = S' ∘ S (Thm 6.3)",
        &["S", "S'", "subsumes", "time ms"],
    );
    let pairs = [
        ("sentences", &sentences, "sentences", &sentences),
        ("sentences", &sentences, "paragraphs", &paragraphs),
        ("lines", &lines, "paragraphs", &paragraphs),
        ("whole_document", &whole, "whole_document", &whole),
    ];
    for (n1, s1, n2, s2) in pairs {
        let (v, d) = time_best(1, || subsumes(s1, s2, None).unwrap());
        t.row(&[n1.into(), n2.into(), v.holds().to_string(), ms(d)]);
    }
    t.print();
}
