//! T6 — Lemma 5.6: the cover condition for deterministic functional
//! automata with a disjoint splitter is decidable in polynomial time
//! (unambiguous-automaton containment via path counting). Measured
//! against the general (PSPACE) check on the same instances.

use splitc_bench::families::chain_extractor;
use splitc_bench::{ms, time_best, Table};
use splitc_core::{cover_condition, cover_condition_df};
use splitc_spanner::splitter;

fn main() {
    let s = splitter::sentences();
    let sd = s.determinize();
    let mut t = Table::new(
        "T6 — cover condition: general (Lemma 5.4) vs PTIME (Lemma 5.6)",
        &["chain k", "general ms", "fast ms", "holds"],
    );
    for k in [2usize, 4, 8, 16, 32] {
        let p = chain_extractor(k);
        let pd = p.determinize();
        let (vg, dg) = time_best(3, || cover_condition(&p, &s));
        let (vf, df) = time_best(3, || cover_condition_df(&pd, &sd).unwrap());
        let hg = matches!(vg, splitc_core::Verdict::Holds);
        let hf = matches!(vf, splitc_core::Verdict::Holds);
        assert_eq!(hg, hf, "cover procedures must agree");
        t.row(&[k.to_string(), ms(dg), ms(df), hg.to_string()]);
    }
    t.print();
}
