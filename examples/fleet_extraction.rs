//! Fleet extraction: a whole rule catalog in one fused pass.
//!
//! Production extraction rarely runs one rule — a catalog of tens to
//! hundreds of extractors is evaluated over the same corpus, and
//! running one streaming pass per rule re-reads, re-splits, and
//! re-scans everything once per rule. This example shows the fleet
//! engine fusing a keyword-mention catalog into a single pass:
//!
//! 1. build the catalog and certify a member split-correct by
//!    sentences, as always;
//! 2. compile a `Fleet`: one shared byte partition across all members,
//!    and every member's literal evidence merged into one multi-needle
//!    scanner;
//! 3. run a synthetic keyword corpus through the streaming
//!    `FleetRunner`, compare wall clock against sequential per-member
//!    `CorpusRunner` passes, and read the `FleetStats` that explain the
//!    gap — one shared scan decides which members see each segment, so
//!    dispatch fan-out stays near the per-sentence mention rate instead
//!    of the catalog size.
//!
//! Run with: `cargo run --release --example fleet_extraction`

use split_correctness::prelude::*;
use split_correctness::textgen::{self, spanners, CorpusConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A 24-rule catalog: member `i` extracts `<keyword_i><digits>`
    // mention tokens (keywords `qaa`, `qab`, ... — disjoint literals).
    let n = 24;
    let catalog = spanners::keyword_fleet(n);

    // Certification is per member and unchanged by fusion: each
    // extractor is sentence-local, so per-sentence evaluation is exact.
    let s = splitters::sentences();
    assert!(self_splittable(&catalog[0], &s).unwrap().holds());

    // One compilation for the whole catalog. The fleet shares one byte
    // partition (coarsest common refinement of every member's
    // transition masks) and enrolls each member's required literal in
    // one Aho-Corasick scanner over SWAR byte finders.
    let opts = CompileOptions::new().engine(Engine::Prefilter);
    let fleet = Arc::new(opts.compile_fleet(&catalog));
    println!(
        "fleet: {} members, {} shared needles",
        n,
        fleet.num_needles()
    );

    // A corpus where each sentence mentions one uniformly-chosen
    // keyword with probability 1/8 — match-sparse per member.
    let cfg = CorpusConfig {
        target_bytes: 1 << 20,
        seed: 0xF1EE7,
        ..Default::default()
    };
    let docs = textgen::keyword_corpus_shards(8, &cfg, n, 8);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let total: usize = refs.iter().map(|d| d.len()).sum();
    println!(
        "corpus: {} shards, {:.1} MiB\n",
        refs.len(),
        total as f64 / (1 << 20) as f64
    );

    // Fused: one streamed split pass, one shared scan per segment.
    let runner = RunnerOptions::new().fleet_runner(fleet.clone(), opts.compile_splitter(&s));
    let t0 = Instant::now();
    let fused = runner.run_slices(&refs);
    let fused_wall = t0.elapsed();

    // Sequential: one full streaming pass per catalog member.
    let members: Vec<ExecSpanner> = catalog.iter().map(|v| opts.compile_spanner(v)).collect();
    let t0 = Instant::now();
    let sequential: Vec<CorpusResult> = members
        .iter()
        .map(|m| {
            RunnerOptions::new()
                .corpus_runner(m.clone(), opts.compile_splitter(&s))
                .run_slices(&refs)
        })
        .collect();
    let seq_wall = t0.elapsed();

    // Fusion is invisible in the results.
    for (mi, res) in sequential.iter().enumerate() {
        for (di, rel) in res.relations.iter().enumerate() {
            assert_eq!(&fused.relations[di][mi], rel, "doc {di} member {mi}");
        }
    }

    let st = &fused.stats;
    println!(
        "sequential: {:>8.1} ms   ({} passes over the corpus)",
        seq_wall.as_secs_f64() * 1e3,
        n
    );
    println!(
        "fused:      {:>8.1} ms   ({:.1}x)",
        fused_wall.as_secs_f64() * 1e3,
        seq_wall.as_secs_f64() / fused_wall.as_secs_f64().max(1e-9)
    );
    println!(
        "\n{} segments x {} members = {} pairs:",
        st.segments,
        n,
        st.segments * n
    );
    println!(
        "  {:>8} dispatched to an engine (fan-out {:.2})",
        st.dispatches,
        st.fan_out()
    );
    println!("  {:>8} rejected by cheap gates", st.gate_rejected);
    println!("  {:>8} rejected by the shared scan", st.scan_rejected);
    println!(
        "shared scan consumed {:.1} MiB (once), not {:.1} MiB ({} member passes)",
        st.shared_scan_bytes as f64 / (1 << 20) as f64,
        (st.segment_bytes * n as u64) as f64 / (1 << 20) as f64,
        n
    );
}
