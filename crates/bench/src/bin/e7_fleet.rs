//! E7 — fused multi-spanner fleet evaluation vs sequential per-spanner
//! passes.
//!
//! A deployment of split-correct extraction rarely runs *one* rule: a
//! rule catalog of tens to hundreds of extractors is evaluated over the
//! same corpus. The sequential shape — one [`CorpusRunner`] per rule —
//! re-streams, re-splits, and re-scans the corpus once per rule. The
//! fleet engine ([`splitc_exec::FleetRunner`]) fuses the catalog into
//! one pass: one streaming split, one shared byte partition, one merged
//! multi-needle Aho–Corasick scan dispatching each segment only to the
//! members with literal evidence in it.
//!
//! The workload is a keyword-mention catalog
//! (`splitc_textgen::spanners::keyword_fleet`): member `i` extracts
//! `<keyword_i><digits>` tokens, and corpora
//! (`splitc_textgen::keyword_corpus_shards`) mention a uniformly random
//! keyword in each sentence (**dense** flavor) or in one sentence in 16
//! (**sparse** flavor). Each (flavor × fleet size) point emits two
//! rows, `engine` `fused` and `sequential`, with `scale` = fleet size;
//! fleet sizes are 10 / 50 / 200. Fused and sequential relations are
//! asserted byte-identical on every point; the CI gate requires fused
//! over sequential by the configured floor at the 50-member sparse
//! point.
//!
//! One invocation emits every row (the `--engine` flag is
//! accepted-and-ignored for harness uniformity, like
//! `e6_sparse_prefilter`).

use splitc_bench::{bench_json, ms, scaled, time_best, x, Table};
use splitc_exec::{CorpusRunner, CorpusRunnerConfig, Engine, ExecSpanner, Fleet, FleetRunner};
use splitc_spanner::splitter;
use splitc_textgen::{spanners, CorpusConfig};
use std::sync::Arc;

fn main() {
    let workers: usize = std::env::var("SC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let config = CorpusRunnerConfig {
        workers,
        ..Default::default()
    };
    let engine = Engine::Prefilter; // strongest sequential baseline
    let fleet_sizes = [10usize, 50, 200];
    let max_fleet = *fleet_sizes.iter().max().unwrap();
    // Flavors: how often a sentence mentions any keyword at all.
    let flavors = [("sparse", 16usize), ("dense", 1usize)];
    let shards = 8;
    let per_doc = scaled(1 << 19).max(16 << 10);

    let mut table = Table::new(
        &format!("E7 — fused fleet vs sequential per-spanner passes at {workers} workers"),
        &[
            "corpus",
            "fleet",
            "sequential ms",
            "fused ms",
            "speedup",
            "fan-out",
        ],
    );

    for (flavor, needle_every) in flavors {
        let cfg = CorpusConfig {
            target_bytes: per_doc,
            seed: 0xF1EE7 + needle_every as u64,
            ..Default::default()
        };
        // One corpus per flavor, mentioning keywords of the *largest*
        // fleet: smaller fleets see the same bytes and simply own fewer
        // of the mentions (their other sentences are pure noise).
        let owned = splitc_textgen::keyword_corpus_shards(shards, &cfg, max_fleet, needle_every);
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let total_bytes: usize = refs.iter().map(|d| d.len()).sum();
        println!(
            "E7 [{flavor}]: {shards} shards, {:.1} MiB, keyword every {needle_every} sentence(s)",
            total_bytes as f64 / (1 << 20) as f64,
        );

        for &n in &fleet_sizes {
            let vsas = spanners::keyword_fleet(n);
            let fleet = Arc::new(Fleet::compile(&vsas, engine));
            let runner = FleetRunner::new(fleet.clone(), splitter::sentences().compile(), config);
            let (fused, fused_wall) = time_best(2, || runner.run_slices(&refs));
            let fused_tuples: usize = fused
                .relations
                .iter()
                .flat_map(|row| row.iter().map(|r| r.len()))
                .sum();

            let members: Vec<ExecSpanner> = vsas
                .iter()
                .map(|v| ExecSpanner::compile_with(v, engine))
                .collect();
            let (seq, seq_wall) = time_best(2, || {
                members
                    .iter()
                    .map(|m| {
                        CorpusRunner::new(m.clone(), splitter::sentences().compile(), config)
                            .run_slices(&refs)
                    })
                    .collect::<Vec<_>>()
            });
            let seq_tuples: usize = seq
                .iter()
                .flat_map(|r| r.relations.iter().map(|rel| rel.len()))
                .sum();

            for (mi, res) in seq.iter().enumerate() {
                for (di, rel) in res.relations.iter().enumerate() {
                    assert_eq!(
                        &fused.relations[di][mi], rel,
                        "fused and sequential disagree: doc {di} member {mi} [{flavor}]"
                    );
                }
            }
            assert_eq!(fused_tuples, seq_tuples);

            bench_json(
                &format!("e7_fleet/{flavor}"),
                "fused",
                total_bytes,
                n as f64,
                fused_wall,
                fused_tuples,
            );
            bench_json(
                &format!("e7_fleet/{flavor}"),
                "sequential",
                total_bytes,
                n as f64,
                seq_wall,
                seq_tuples,
            );
            table.row(&[
                flavor.into(),
                format!("{n}"),
                ms(seq_wall),
                ms(fused_wall),
                x(seq_wall.as_secs_f64() / fused_wall.as_secs_f64().max(1e-9)),
                format!("{:.2}", fused.stats.fan_out()),
            ]);
        }
    }
    table.print();
    println!(
        "\nShape check: sequential cost grows with fleet size (one full\n\
         split + scan pass per member), while the fused pass splits once\n\
         and lets the shared multi-needle scan dispatch each segment only\n\
         to the members whose keyword it mentions — fan-out stays near\n\
         the per-sentence mention rate instead of the fleet size. The CI\n\
         gate asserts the floor at the 50-member sparse point; recorded\n\
         quiet-host factors live in BENCH_pr6.json."
    );
}
