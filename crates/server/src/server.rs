//! The TCP accept loop, admission control, and connection workers.
//!
//! Shape: one acceptor thread owns the (non-blocking) listener and a
//! bounded admission queue of accepted connections; `workers`
//! connection threads pull from the queue and run keep-alive HTTP
//! sessions through [`crate::handlers::handle`]. When the queue is full
//! the acceptor answers `429 Too Many Requests` immediately and closes
//! — requests are *never* silently buffered beyond the configured
//! depth, so a saturated server sheds load instead of growing latency
//! without bound (the same backpressure discipline as the execution
//! crate's bounded segment queues, one level up the stack).
//!
//! Shutdown is cooperative: [`Server::shutdown`] (or the binary's
//! SIGTERM handler) raises a flag the acceptor polls between accepts;
//! the acceptor stops accepting, drops the queue sender, and every
//! worker exits after finishing its current connection. In-flight
//! requests complete; new connections are refused.

use crate::config::{ConfigError, ServerConfig};
use crate::handlers::{error, handle, ServiceState};
use crate::http::{read_request, HttpError};

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// How often the acceptor wakes up to poll the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// A running extraction service.
///
/// Bind-and-spawn with [`Server::spawn`]; the accept loop and all
/// connection workers run on background threads until
/// [`Server::shutdown`] (or drop, which shuts down implicitly).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Validates `config`, binds `127.0.0.1:{config.port}` (port 0 for
    /// an OS-assigned port), and starts the accept loop plus
    /// `config.workers` connection threads.
    ///
    /// `stop` is the cooperative shutdown flag: the acceptor polls it
    /// every few milliseconds, so an external party (a signal handler)
    /// can raise it. [`Server::spawn`] wires a fresh private flag.
    pub fn spawn_with_stop(
        config: ServerConfig,
        stop: Arc<AtomicBool>,
    ) -> Result<Server, SpawnError> {
        config.validate().map_err(SpawnError::Config)?;
        let listener = TcpListener::bind(("127.0.0.1", config.port)).map_err(SpawnError::Bind)?;
        listener.set_nonblocking(true).map_err(SpawnError::Bind)?;
        let addr = listener.local_addr().map_err(SpawnError::Bind)?;
        let state = Arc::new(ServiceState::new(config.clone()));

        let (conn_tx, conn_rx) = sync_channel::<TcpStream>(config.queue_depth);
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut workers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let rx = conn_rx.clone();
            let state = state.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || {
                connection_worker(&rx, &state, &stop)
            }));
        }

        let acceptor = {
            let state = state.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                accept_loop(&listener, &conn_tx, &state, &stop);
                drop(conn_tx); // disconnect: workers exit after draining
                for w in workers {
                    let _ = w.join();
                }
            })
        };

        Ok(Server {
            addr,
            state,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// [`Server::spawn_with_stop`] with a private stop flag.
    pub fn spawn(config: ServerConfig) -> Result<Server, SpawnError> {
        Server::spawn_with_stop(config, Arc::new(AtomicBool::new(false)))
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (registries, pool, metrics).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Raises the stop flag and joins every server thread. In-flight
    /// requests finish; queued and new connections are refused.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Why [`Server::spawn`] failed.
#[derive(Debug)]
pub enum SpawnError {
    /// The configuration did not validate.
    Config(ConfigError),
    /// The listener could not be bound.
    Bind(std::io::Error),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Config(e) => write!(f, "invalid configuration: {e}"),
            SpawnError::Bind(e) => write!(f, "cannot bind listener: {e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

fn accept_loop(
    listener: &TcpListener,
    conn_tx: &SyncSender<TcpStream>,
    state: &ServiceState,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking; accepted sockets must
                // block (workers read whole requests).
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                // Request/response exchanges are single writes on both
                // sides; Nagle buys nothing and costs delayed-ACK
                // stalls on keep-alive round-trips.
                let _ = stream.set_nodelay(true);
                match conn_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        state.metrics.rejected_429.fetch_add(1, Ordering::Relaxed);
                        let mut stream = stream;
                        let _ = error(429, "admission queue full, retry later")
                            .closing()
                            .write_to(&mut stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn connection_worker(rx: &Mutex<Receiver<TcpStream>>, state: &ServiceState, stop: &AtomicBool) {
    loop {
        let stream = match rx.lock().recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone: shutdown
        };
        serve_connection(stream, state, stop);
    }
}

/// Runs one keep-alive session: read request, handle, respond, repeat
/// until the peer closes, asks to close, errors, or shutdown begins.
fn serve_connection(stream: TcpStream, state: &ServiceState, stop: &AtomicBool) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // Wait for the first byte of the next request under a short
        // read timeout, polling the stop flag — an idle keep-alive
        // connection must not pin its worker through a shutdown. The
        // timeout only gates this idle wait; request bodies are read
        // blocking (the clones share one socket, so options set through
        // `writer` govern `reader` too).
        if writer.set_read_timeout(Some(ACCEPT_POLL * 4)).is_err() {
            return;
        }
        loop {
            use std::io::BufRead;
            match reader.fill_buf() {
                Ok([]) => return, // clean EOF
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        if writer.set_read_timeout(None).is_err() {
            return;
        }
        match read_request(&mut reader, state.config.max_body_bytes) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let mut response = handle(state, &req);
                // Stop keeping the connection alive once shutdown has
                // begun or the client asked to close.
                if req.wants_close() || stop.load(Ordering::SeqCst) {
                    response = response.closing();
                }
                let close = response.close;
                if response.write_to(&mut writer).is_err() || close {
                    return;
                }
            }
            Err(HttpError::BodyTooLarge { declared, limit }) => {
                state.metrics.count_status(413);
                let _ = error(
                    413,
                    format!("body of {declared} bytes exceeds limit {limit}"),
                )
                .closing()
                .write_to(&mut writer);
                return;
            }
            Err(HttpError::Malformed(m)) => {
                state.metrics.count_status(400);
                let _ = error(400, format!("malformed request: {m}"))
                    .closing()
                    .write_to(&mut writer);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}
