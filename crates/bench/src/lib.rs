//! Experiment harness: shared machinery for the `e*`/`t*` binaries that
//! regenerate every empirical claim of the paper (see the top-level
//! `README.md`, "Experiment binaries", for the experiment index).

use std::time::{Duration, Instant};

pub mod families;

/// The evaluation engine selected for this run: `--engine {nfa,dense}`
/// on the command line (also accepted as `--engine=...`), else the
/// `SC_ENGINE` environment variable, else the default ([`splitc_exec::Engine::Dense`]).
///
/// Panics with a usage message on an unknown engine name, so CI fails
/// loudly instead of silently benchmarking the wrong thing.
pub fn engine_arg() -> splitc_exec::Engine {
    let mut args = std::env::args().skip(1);
    let mut chosen: Option<String> = None;
    while let Some(a) = args.next() {
        if a == "--engine" {
            chosen = Some(
                args.next()
                    .expect("--engine requires a value: --engine {nfa,dense}"),
            );
        } else if let Some(v) = a.strip_prefix("--engine=") {
            chosen = Some(v.to_string());
        }
    }
    let chosen = chosen.or_else(|| std::env::var("SC_ENGINE").ok());
    match chosen {
        None => splitc_exec::Engine::default(),
        Some(v) => v
            .parse()
            .unwrap_or_else(|e| panic!("--engine: {e}; usage: --engine {{nfa,dense}}")),
    }
}

/// Emits one machine-readable benchmark result row on stdout.
///
/// The line format is `BENCH {json}` with the stable schema
/// `{"bench", "engine", "bytes", "scale", "wall_ms", "tuples"}`; the CI
/// `bench-smoke` job greps these lines into the `BENCH_pr.json`
/// artifact (JSON-lines, one row per line). `bytes` and `tuples` are 0
/// for benchmarks where they do not apply (e.g. decision-procedure
/// scaling rows). `scale` is the row's *problem-size parameter* — the
/// needle `k` of a scaling family, the N of an N-gram workload, a
/// document count — so tooling can gate on "the largest scale point"
/// without parsing bench-name suffixes (t-series rows used to carry
/// only `bytes: 0`, leaving gates to positional name assumptions).
pub fn bench_json(
    bench: &str,
    engine: &str,
    bytes: usize,
    scale: f64,
    wall: Duration,
    tuples: usize,
) {
    debug_assert!(
        !bench.contains('"') && !engine.contains('"'),
        "bench/engine labels must not need JSON escaping"
    );
    println!(
        "BENCH {{\"bench\":\"{bench}\",\"engine\":\"{engine}\",\"bytes\":{bytes},\"scale\":{scale},\"wall_ms\":{:.3},\"tuples\":{tuples}}}",
        wall.as_secs_f64() * 1e3
    );
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Times a closure over several iterations, returning the minimum
/// duration (robust against scheduler noise).
pub fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(iters >= 1);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        out = Some(f());
        best = best.min(t0.elapsed());
    }
    (out.expect("at least one iteration"), best)
}

/// Scale factor for corpus sizes, settable via `SC_SCALE` (default 1.0,
/// the scale the experiment binaries' reference numbers assume).
pub fn scale() -> f64 {
    std::env::var("SC_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a byte count by [`scale`].
pub fn scaled(bytes: usize) -> usize {
    ((bytes as f64) * scale()) as usize
}

/// A plain-text results table, printed in a stable, grep-friendly
/// format suitable for recording experiment results verbatim.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
    }

    /// Prints the table.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        println!("\n== {} ==", self.title);
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
            }
            line
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }
}

/// Formats a duration in milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a speedup factor.
pub fn x(f: f64) -> String {
    format!("{f:.2}x")
}
