//! A long-lived evaluation worker pool.
//!
//! Every parallel entry point in this crate used to spawn its worker
//! threads per call (scoped threads around one corpus run). That shape
//! is fine for batch jobs but wrong for a *service*: a server handling
//! thousands of `/extract` requests would pay thread spawn/join on each
//! one. [`EvalPool`] is the reusable handle — `workers` threads started
//! once, fed jobs over a channel, joined on drop — that
//! [`crate::CorpusRunner::with_pool`] and
//! [`crate::FleetRunner::with_pool`] plug their per-request worker loops
//! into.
//!
//! Jobs are plain `FnOnce` boxes. Runner worker loops are self-draining
//! (they exit when the run's segment queue disconnects), so a pool
//! smaller than a run's requested `workers` still completes the run:
//! the jobs that find a free pool thread drain the whole queue, and the
//! late ones exit immediately on the disconnected channel. Concurrent
//! runs therefore share the pool without deadlock — producers live on
//! the callers' threads, never inside the pool.
//!
//! A job that panics is caught by the pool thread (the panic is
//! reported to the submitting runner through its own drain-on-panic
//! protocol), so one poisoned request can never shrink the pool.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A boxed unit of work submitted to the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Usage counters of an [`EvalPool`], for service `/stats` surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalPoolStats {
    /// Jobs submitted over the pool's lifetime.
    pub submitted: u64,
    /// Jobs completed (including panicked ones, which are caught).
    pub completed: u64,
    /// Jobs that panicked while running.
    pub panicked: u64,
}

/// A fixed-size pool of long-lived evaluation threads.
///
/// Construct once (typically wrapped in an [`Arc`] and shared across
/// requests), submit jobs with [`EvalPool::execute`]; dropping the pool
/// closes the job channel and joins every thread.
///
/// ```
/// use splitc_exec::pool::EvalPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = EvalPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..16 {
///     let hits = hits.clone();
///     pool.execute(Box::new(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     }));
/// }
/// drop(pool); // joins: all jobs have run
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// ```
#[derive(Debug)]
pub struct EvalPool {
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    submitted: AtomicU64,
    completed: Arc<AtomicU64>,
    panicked: Arc<AtomicU64>,
}

impl EvalPool {
    /// Starts a pool of `workers` threads. `0` is normalized to 1,
    /// matching the contract of every pool entry point in this crate.
    pub fn new(workers: usize) -> EvalPool {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let completed = Arc::new(AtomicU64::new(0));
        let panicked = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let completed = completed.clone();
                let panicked = panicked.clone();
                std::thread::spawn(move || Self::worker(&rx, &completed, &panicked))
            })
            .collect();
        EvalPool {
            tx: Some(tx),
            handles,
            workers,
            submitted: AtomicU64::new(0),
            completed,
            panicked,
        }
    }

    /// Number of threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits a job. Jobs run in submission order as threads free up;
    /// the call never blocks (the job channel is unbounded — admission
    /// control belongs to the caller, e.g. the server's bounded request
    /// queue).
    pub fn execute(&self, job: Job) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.tx
            .as_ref()
            .expect("pool channel open until drop")
            .send(job)
            .expect("pool threads alive until drop");
    }

    /// Lifetime usage counters.
    pub fn stats(&self) -> EvalPoolStats {
        EvalPoolStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
        }
    }

    fn worker(rx: &Mutex<Receiver<Job>>, completed: &AtomicU64, panicked: &AtomicU64) {
        loop {
            let job = match rx.lock().recv() {
                Ok(j) => j,
                Err(_) => break, // pool dropped and queue drained
            };
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                panicked.fetch_add(1, Ordering::Relaxed);
            }
            completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // disconnect: workers exit after draining
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs_and_counts() {
        let pool = EvalPool::new(3);
        assert_eq!(pool.workers(), 3);
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let n = n.clone();
            pool.execute(Box::new(move || {
                n.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // Drop joins, so every job has completed afterwards.
        let stats_before = pool.stats();
        assert_eq!(stats_before.submitted, 50);
        drop(pool);
        assert_eq!(n.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_workers_normalized() {
        let pool = EvalPool::new(0);
        assert_eq!(pool.workers(), 1);
        let n = Arc::new(AtomicUsize::new(0));
        let nn = n.clone();
        pool.execute(Box::new(move || {
            nn.fetch_add(1, Ordering::Relaxed);
        }));
        drop(pool);
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = EvalPool::new(1);
        pool.execute(Box::new(|| panic!("induced")));
        let n = Arc::new(AtomicUsize::new(0));
        let nn = n.clone();
        pool.execute(Box::new(move || {
            nn.fetch_add(1, Ordering::Relaxed);
        }));
        drop(pool);
        assert_eq!(n.load(Ordering::Relaxed), 1, "pool survived the panic");
    }

    #[test]
    fn stats_track_panics() {
        let pool = EvalPool::new(2);
        pool.execute(Box::new(|| {}));
        pool.execute(Box::new(|| panic!("induced")));
        // Busy-wait for completion (jobs are fast).
        for _ in 0..1000 {
            if pool.stats().completed == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = pool.stats();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 2);
        assert_eq!(s.panicked, 1);
    }
}
