//! Service metrics: per-endpoint latency histograms and aggregated
//! execution counters, all lock-cheap and rendered into `/stats` JSON.

use crate::json::Json;
use parking_lot::Mutex;
use splitc_exec::{CorpusStats, FleetStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds; the last bucket is open-ended. 30
/// buckets reach ~17 minutes — everything beyond clips into the top
/// bucket.
const BUCKETS: usize = 30;

/// A fixed-size log2 latency histogram (microsecond resolution).
///
/// Recording is two relaxed atomic adds, so request threads never
/// contend; percentile queries walk the 30 buckets and return the upper
/// bound of the bucket holding the requested rank (an upward-biased
/// estimate, which is the conservative direction for latency SLOs).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// observation (`p` in `[0, 100]`), in microseconds. 0 when empty.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return upper_bound_us(i);
            }
        }
        upper_bound_us(BUCKETS - 1)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Renders `{count, mean_us, p50_us, p99_us}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count() as f64)),
            ("mean_us", Json::Num(self.mean_us() as f64)),
            ("p50_us", Json::Num(self.percentile_us(50.0) as f64)),
            ("p99_us", Json::Num(self.percentile_us(99.0) as f64)),
        ])
    }
}

fn upper_bound_us(bucket: usize) -> u64 {
    if bucket >= BUCKETS - 1 {
        u64::MAX >> (64 - BUCKETS)
    } else {
        (1u64 << bucket).saturating_mul(2).saturating_sub(1).max(1)
    }
}

/// Everything `/stats` reports about request handling and execution,
/// owned by the server and shared with its connection handlers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Latency per endpoint, in route order: register (spanner /
    /// splitter / fleet), certify, extract, stats.
    pub register_latency: LatencyHistogram,
    /// `/certify` latency.
    pub certify_latency: LatencyHistogram,
    /// `/extract` latency.
    pub extract_latency: LatencyHistogram,
    /// Corpus-resource endpoint latency (`PUT`/`GET`/`DELETE`
    /// `/corpus/{id}` and `POST /corpus/{id}/delta`).
    pub corpus_latency: LatencyHistogram,
    /// `/stats` latency.
    pub stats_latency: LatencyHistogram,
    /// Requests answered, by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (bad requests, unknown ids, 409s, 413s).
    pub responses_4xx: AtomicU64,
    /// 5xx responses.
    pub responses_5xx: AtomicU64,
    /// Connections refused with `429` at admission.
    pub rejected_429: AtomicU64,
    /// Aggregated execution counters across every `/extract`.
    pub exec: Mutex<ExecTotals>,
}

/// Cumulative execution counters folded in from each corpus/fleet run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecTotals {
    /// Corpus-runner extractions served.
    pub corpus_runs: u64,
    /// Fleet-runner extractions served.
    pub fleet_runs: u64,
    /// Documents processed.
    pub docs: u64,
    /// Segments evaluated.
    pub segments: u64,
    /// Bytes across evaluated segments.
    pub segment_bytes: u64,
    /// Batches dispatched to the evaluation pool.
    pub batches: u64,
    /// Lazy-DFA cache hits.
    pub cache_hits: u64,
    /// Lazy-DFA cache misses.
    pub cache_misses: u64,
    /// Prefilter bytes skipped (gate rejections + skip-loop jumps).
    pub prefilter_bytes_skipped: u64,
    /// Prefilter candidates handed to a DFA.
    pub prefilter_candidates: u64,
    /// Fleet `(segment, member)` evaluations dispatched.
    pub fleet_dispatches: u64,
    /// Fleet pairs pruned by cheap gates.
    pub fleet_gate_rejected: u64,
    /// Fleet pairs pruned by the shared needle scan.
    pub fleet_scan_rejected: u64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Classifies a response status into the 2xx/4xx/5xx counters.
    pub fn count_status(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.responses_2xx,
            500..=599 => &self.responses_5xx,
            _ => &self.responses_4xx,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one corpus run's statistics into the totals.
    pub fn record_corpus(&self, stats: &CorpusStats) {
        let mut t = self.exec.lock();
        t.corpus_runs += 1;
        t.docs += stats.docs as u64;
        t.segments += stats.segments as u64;
        t.segment_bytes += stats.segment_bytes;
        t.batches += stats.batches as u64;
        t.cache_hits += stats.cache.hits;
        t.cache_misses += stats.cache.misses;
        t.prefilter_bytes_skipped += stats.prefilter.bytes_skipped;
        t.prefilter_candidates += stats.prefilter.candidates;
    }

    /// Folds one fleet run's statistics into the totals.
    pub fn record_fleet(&self, stats: &FleetStats) {
        let mut t = self.exec.lock();
        t.fleet_runs += 1;
        t.docs += stats.docs as u64;
        t.segments += stats.segments as u64;
        t.segment_bytes += stats.segment_bytes;
        t.batches += stats.batches as u64;
        t.cache_hits += stats.cache.hits;
        t.cache_misses += stats.cache.misses;
        t.prefilter_bytes_skipped += stats.prefilter.bytes_skipped;
        t.prefilter_candidates += stats.prefilter.candidates;
        t.fleet_dispatches += stats.dispatches;
        t.fleet_gate_rejected += stats.gate_rejected;
        t.fleet_scan_rejected += stats.scan_rejected;
    }

    /// Renders the request-side metrics (`/stats` assembles the full
    /// document around this).
    pub fn to_json(&self) -> Json {
        let exec = *self.exec.lock();
        Json::obj(vec![
            (
                "latency",
                Json::obj(vec![
                    ("register", self.register_latency.to_json()),
                    ("certify", self.certify_latency.to_json()),
                    ("extract", self.extract_latency.to_json()),
                    ("corpus", self.corpus_latency.to_json()),
                    ("stats", self.stats_latency.to_json()),
                ]),
            ),
            (
                "responses",
                Json::obj(vec![
                    (
                        "ok_2xx",
                        Json::Num(self.responses_2xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "client_4xx",
                        Json::Num(self.responses_4xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "server_5xx",
                        Json::Num(self.responses_5xx.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "rejected_429",
                        Json::Num(self.rejected_429.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "exec",
                Json::obj(vec![
                    ("corpus_runs", Json::Num(exec.corpus_runs as f64)),
                    ("fleet_runs", Json::Num(exec.fleet_runs as f64)),
                    ("docs", Json::Num(exec.docs as f64)),
                    ("segments", Json::Num(exec.segments as f64)),
                    ("segment_bytes", Json::Num(exec.segment_bytes as f64)),
                    ("batches", Json::Num(exec.batches as f64)),
                    ("cache_hits", Json::Num(exec.cache_hits as f64)),
                    ("cache_misses", Json::Num(exec.cache_misses as f64)),
                    (
                        "prefilter_bytes_skipped",
                        Json::Num(exec.prefilter_bytes_skipped as f64),
                    ),
                    (
                        "prefilter_candidates",
                        Json::Num(exec.prefilter_candidates as f64),
                    ),
                    ("fleet_dispatches", Json::Num(exec.fleet_dispatches as f64)),
                    (
                        "fleet_gate_rejected",
                        Json::Num(exec.fleet_gate_rejected as f64),
                    ),
                    (
                        "fleet_scan_rejected",
                        Json::Num(exec.fleet_scan_rejected as f64),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_upper_bounds() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(50.0), 0, "empty");
        for us in [1u64, 2, 3, 100, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.percentile_us(50.0);
        assert!(p50 >= 3, "p50 bucket bound covers the median, got {p50}");
        assert!(h.percentile_us(99.0) >= 1000);
        assert!(h.mean_us() >= (1 + 2 + 3 + 100 + 1000) / 5 - 1);
        // Huge values clip into the top bucket instead of panicking.
        h.record(Duration::from_secs(40_000));
        assert!(h.percentile_us(100.0) > 0);
    }

    #[test]
    fn status_classes() {
        let m = Metrics::new();
        for s in [200, 200, 404, 429, 500] {
            m.count_status(s);
        }
        assert_eq!(m.responses_2xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_4xx.load(Ordering::Relaxed), 2);
        assert_eq!(m.responses_5xx.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exec_totals_fold() {
        let m = Metrics::new();
        let cs = CorpusStats {
            docs: 2,
            segments: 10,
            segment_bytes: 100,
            ..Default::default()
        };
        m.record_corpus(&cs);
        m.record_corpus(&cs);
        let t = *m.exec.lock();
        assert_eq!(t.corpus_runs, 2);
        assert_eq!(t.docs, 4);
        assert_eq!(t.segments, 20);
        // JSON rendering includes the folded numbers.
        let rendered = m.to_json().to_string();
        assert!(rendered.contains("\"corpus_runs\":2"));
        assert!(rendered.contains("\"segment_bytes\":200"));
    }
}
