//! Classic VSet-automata (paper §4.2).
//!
//! A VSet-automaton is an ε-NFA over the extended alphabet `Σ ∪ Γ_V`:
//! transitions are labeled with byte sets (compact encoding of sets of
//! `Σ`-transitions), with ε, or with variable operations. Its ref-word
//! language `R(A)` is the accepted language over the extended alphabet;
//! the spanner `⟦A⟧` maps a document `d` to the tuples of the *valid*
//! ref-words in `R(A)` that `clr` maps to `d`.
//!
//! The module implements, following the paper:
//!
//! * functionality (`R(A) = Ref(A)`) testing — [`Vsa::is_functional`];
//! * functionalization via the variable-configuration monitor
//!   ([`Vsa::functionalize`], the 3^|V| product underlying Prop. 4.4);
//! * weak determinism (Maturana et al.) and the paper's stronger
//!   determinism with the fixed operation order `≺` —
//!   [`Vsa::is_weakly_deterministic`], [`Vsa::is_deterministic`];
//! * determinization to a deterministic functional VSet-automaton
//!   ([`Vsa::determinize`], Prop. 4.4);
//! * the spanner-algebra operations needed by the decision procedures:
//!   union, variable wrapping `x{P}`, and concatenation with regular
//!   languages (Definition A.1/A.2, Lemma A.3).

use crate::byteset::ByteSet;
use crate::evsa::EVsa;
use crate::ext::ExtAlphabet;
use crate::vars::{VarId, VarMap, VarOp, VarTable};
use splitc_automata::nfa::StateId;
use std::collections::{HashMap, VecDeque};

/// A transition label of a VSet-automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// ε-transition.
    Eps,
    /// Variable operation.
    Op(VarOp),
    /// Any byte in the set (compactly encodes a family of Σ-transitions).
    Bytes(ByteSet),
}

/// A classic VSet-automaton.
#[derive(Debug, Clone)]
pub struct Vsa {
    vars: VarTable,
    trans: Vec<Vec<(Label, StateId)>>,
    start: StateId,
    finals: Vec<bool>,
}

/// Per-variable status inside the configuration monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarStatus {
    /// Not yet opened.
    Waiting,
    /// Opened, not yet closed.
    Open,
    /// Closed.
    Closed,
}

/// A variable configuration: status of every variable, packed 2 bits per
/// variable (limits |V| to 32, far beyond any IE program in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarConfig(u64);

impl VarConfig {
    /// All variables waiting.
    pub fn initial() -> VarConfig {
        VarConfig(0)
    }

    /// Status of variable `v`.
    pub fn get(self, v: VarId) -> VarStatus {
        match (self.0 >> (2 * v.index())) & 3 {
            0 => VarStatus::Waiting,
            1 => VarStatus::Open,
            _ => VarStatus::Closed,
        }
    }

    fn set(self, v: VarId, st: VarStatus) -> VarConfig {
        let code = match st {
            VarStatus::Waiting => 0u64,
            VarStatus::Open => 1,
            VarStatus::Closed => 2,
        };
        let shift = 2 * v.index();
        VarConfig((self.0 & !(3 << shift)) | (code << shift))
    }

    /// Applies an operation if legal; `None` when the operation would make
    /// the ref-word invalid (double open, close before open, …).
    pub fn apply(self, op: VarOp) -> Option<VarConfig> {
        match op {
            VarOp::Open(v) if self.get(v) == VarStatus::Waiting => {
                Some(self.set(v, VarStatus::Open))
            }
            VarOp::Close(v) if self.get(v) == VarStatus::Open => {
                Some(self.set(v, VarStatus::Closed))
            }
            _ => None,
        }
    }

    /// Whether every variable is closed (validity at acceptance).
    pub fn all_closed(self, num_vars: usize) -> bool {
        (0..num_vars).all(|i| self.get(VarId(i as u32)) == VarStatus::Closed)
    }
}

impl Vsa {
    /// Creates an automaton with one (start) state and the given
    /// variables.
    pub fn new(vars: VarTable) -> Vsa {
        assert!(vars.len() <= 32, "at most 32 variables are supported");
        Vsa {
            vars,
            trans: vec![Vec::new()],
            start: 0,
            finals: vec![false],
        }
    }

    /// The variable table (`SVars(A)`).
    #[inline]
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` accepts.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q as usize]
    }

    /// Transitions leaving `q`.
    #[inline]
    pub fn transitions_from(&self, q: StateId) -> &[(Label, StateId)] {
        &self.trans[q as usize]
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = self.trans.len() as StateId;
        self.trans.push(Vec::new());
        self.finals.push(false);
        id
    }

    /// Marks a state accepting.
    pub fn set_final(&mut self, q: StateId, f: bool) {
        self.finals[q as usize] = f;
    }

    /// Sets the start state.
    pub fn set_start(&mut self, q: StateId) {
        self.start = q;
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, label: Label, to: StateId) {
        if let Label::Op(op) = label {
            assert!(
                op.var().index() < self.vars.len(),
                "operation on unknown variable"
            );
        }
        if let Label::Bytes(m) = label {
            if m.is_empty() {
                return; // empty byte set: no transition
            }
        }
        self.trans[from as usize].push((label, to));
    }

    /// Convenience: transition on a single byte.
    pub fn add_byte(&mut self, from: StateId, b: u8, to: StateId) {
        self.add_transition(from, Label::Bytes(ByteSet::single(b)), to);
    }

    /// All accepting states.
    pub fn final_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.finals
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .map(|(q, _)| q as StateId)
    }

    /// All byte sets used on transitions (for byte-class computation).
    pub fn byte_masks(&self) -> Vec<ByteSet> {
        let mut out = Vec::new();
        for ts in &self.trans {
            for (l, _) in ts {
                if let Label::Bytes(m) = l {
                    out.push(*m);
                }
            }
        }
        out
    }

    /// Removes states that are not reachable from the start or cannot
    /// reach an accepting state.
    pub fn trim(&self) -> Vsa {
        let n = self.num_states();
        // Forward reachability.
        let mut fwd = vec![false; n];
        let mut queue = VecDeque::new();
        fwd[self.start as usize] = true;
        queue.push_back(self.start);
        while let Some(q) = queue.pop_front() {
            for &(_, r) in &self.trans[q as usize] {
                if !fwd[r as usize] {
                    fwd[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
        // Backward.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for q in 0..n {
            for &(_, r) in &self.trans[q] {
                rev[r as usize].push(q as StateId);
            }
        }
        let mut bwd = vec![false; n];
        for (q, (b, &fin)) in bwd.iter_mut().zip(self.finals.iter()).enumerate() {
            if fin {
                *b = true;
                queue.push_back(q as StateId);
            }
        }
        while let Some(q) = queue.pop_front() {
            for &r in &rev[q as usize] {
                if !bwd[r as usize] {
                    bwd[r as usize] = true;
                    queue.push_back(r);
                }
            }
        }
        let mut remap: Vec<Option<StateId>> = vec![None; n];
        let mut out = Vsa::new(self.vars.clone());
        // Keep the start state even if dead (automaton must have a start).
        out.finals[0] = self.finals[self.start as usize]
            && fwd[self.start as usize]
            && bwd[self.start as usize];
        remap[self.start as usize] = Some(0);
        for q in 0..n {
            if q != self.start as usize && fwd[q] && bwd[q] {
                let id = out.add_state();
                out.finals[id as usize] = self.finals[q];
                remap[q] = Some(id);
            }
        }
        for q in 0..n {
            let Some(nq) = remap[q] else { continue };
            if !(fwd[q] && bwd[q]) {
                continue;
            }
            for &(l, r) in &self.trans[q] {
                if let Some(nr) = remap[r as usize] {
                    if fwd[r as usize] && bwd[r as usize] {
                        out.trans[nq as usize].push((l, nr));
                    }
                }
            }
        }
        out
    }

    /// Computes, for each state of the **trimmed** automaton, the set of
    /// variable configurations with which it is reachable. Used by the
    /// functionality check.
    fn reachable_configs(&self) -> Vec<Vec<VarConfig>> {
        let mut configs: Vec<Vec<VarConfig>> = vec![Vec::new(); self.num_states()];
        let mut queue: VecDeque<(StateId, VarConfig)> = VecDeque::new();
        let init = VarConfig::initial();
        configs[self.start as usize].push(init);
        queue.push_back((self.start, init));
        while let Some((q, c)) = queue.pop_front() {
            for &(l, r) in &self.trans[q as usize] {
                let next = match l {
                    Label::Eps | Label::Bytes(_) => Some(c),
                    Label::Op(op) => c.apply(op),
                };
                let Some(nc) = next else { continue };
                if !configs[r as usize].contains(&nc) {
                    configs[r as usize].push(nc);
                    queue.push_back((r, nc));
                }
            }
        }
        configs
    }

    /// Returns the unique variable configuration of every state, when the
    /// automaton is trimmed and functional (each state of such an
    /// automaton is reachable with exactly one configuration —
    /// Freydenberger et al.). Returns `None` when some state has zero or
    /// several configurations (untrimmed or non-functional input).
    pub fn unique_configs(&self) -> Option<Vec<VarConfig>> {
        let configs = self.reachable_configs();
        configs
            .into_iter()
            .map(|mut c| if c.len() == 1 { c.pop() } else { None })
            .collect()
    }

    /// Replaces the variable table, keeping variable *indices* unchanged.
    /// The new table must have the same number of variables; the caller
    /// is responsible for the positional correspondence (primarily used
    /// to rename the single variable of a splitter).
    pub fn replace_var_table(&self, table: VarTable) -> Result<Vsa, String> {
        if table.len() != self.vars.len() {
            return Err(format!(
                "replacement table has {} variables, expected {}",
                table.len(),
                self.vars.len()
            ));
        }
        let mut out = self.clone();
        out.vars = table;
        Ok(out)
    }

    /// Whether the automaton is functional: every accepting run produces a
    /// valid ref-word (`R(A) = Ref(A)`).
    ///
    /// On the trimmed automaton this holds iff (i) every state is
    /// reachable with exactly one legal configuration, (ii) no reachable
    /// transition applies an illegal operation, and (iii) accepting states
    /// carry the all-closed configuration (Freydenberger et al.).
    pub fn is_functional(&self) -> bool {
        let t = self.trim();
        let configs = t.reachable_configs();
        for (q, qconfigs) in configs.iter().enumerate() {
            match qconfigs.len() {
                0 => continue, // unreachable (dead start corner case)
                1 => {}
                _ => return false, // two configs: some completion is invalid
            }
            let c = qconfigs[0];
            if t.finals[q] && !c.all_closed(t.vars.len()) {
                return false;
            }
            for &(l, _) in &t.trans[q] {
                if let Label::Op(op) = l {
                    if c.apply(op).is_none() {
                        // A trimmed state has an accepting continuation, so
                        // an illegal reachable operation witnesses an
                        // accepted invalid ref-word.
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The configuration-monitor product: returns an equivalent
    /// *functional* automaton whose runs are exactly the valid accepting
    /// runs of `self` (first half of Prop. 4.4). Worst case `3^|V|`
    /// states per original state.
    pub fn functionalize(&self) -> Vsa {
        let nv = self.vars.len();
        let mut out = Vsa::new(self.vars.clone());
        let mut map: HashMap<(StateId, VarConfig), StateId> = HashMap::new();
        let init = VarConfig::initial();
        map.insert((self.start, init), 0);
        out.finals[0] = self.finals[self.start as usize] && init.all_closed(nv);
        let mut queue: VecDeque<(StateId, VarConfig)> = VecDeque::new();
        queue.push_back((self.start, init));
        while let Some((q, c)) = queue.pop_front() {
            let id = map[&(q, c)];
            for &(l, r) in &self.trans[q as usize] {
                let nc = match l {
                    Label::Eps | Label::Bytes(_) => Some(c),
                    Label::Op(op) => c.apply(op),
                };
                let Some(nc) = nc else { continue };
                let rid = *map.entry((r, nc)).or_insert_with(|| {
                    let rid = out.add_state();
                    out.finals[rid as usize] = self.finals[r as usize] && nc.all_closed(nv);
                    queue.push_back((r, nc));
                    rid
                });
                out.trans[id as usize].push((l, rid));
            }
        }
        out.trim()
    }

    /// Weak determinism of Maturana et al.: no ε-transitions and at most
    /// one successor per (state, symbol). Byte transitions count per byte:
    /// overlapping byte sets to different targets violate determinism.
    pub fn is_weakly_deterministic(&self) -> bool {
        for ts in &self.trans {
            let mut byte_cover = ByteSet::EMPTY;
            let mut seen_ops: Vec<VarOp> = Vec::new();
            for &(l, _) in ts {
                match l {
                    Label::Eps => return false,
                    Label::Op(op) => {
                        if seen_ops.contains(&op) {
                            return false;
                        }
                        seen_ops.push(op);
                    }
                    Label::Bytes(m) => {
                        if !byte_cover.and(&m).is_empty() {
                            return false;
                        }
                        byte_cover = byte_cover.or(&m);
                    }
                }
            }
        }
        true
    }

    /// The paper's determinism: weak determinism plus condition (2) —
    /// consecutive variable operations respect the fixed order `≺`.
    pub fn is_deterministic(&self) -> bool {
        if !self.is_weakly_deterministic() {
            return false;
        }
        for q in 0..self.num_states() {
            for &(l, r) in &self.trans[q] {
                let Label::Op(op1) = l else { continue };
                for &(l2, _) in &self.trans[r as usize] {
                    let Label::Op(op2) = l2 else { continue };
                    if op1 >= op2 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Determinization (Prop. 4.4): returns an equivalent automaton that
    /// is deterministic (conditions 1–2) **and** functional. Worst-case
    /// exponential, as unavoidable for PSPACE-complete reasoning; the
    /// split-correctness fast paths (Thm 5.7) take deterministic automata
    /// as *inputs* instead.
    pub fn determinize(&self) -> Vsa {
        let functional = self.functionalize();
        let evsa = EVsa::from_functional(&functional);
        let ext = ExtAlphabet::for_automata(&self.vars, &[&functional]);
        let nfa = evsa.to_nfa(&ext);
        let dfa = splitc_automata::Dfa::determinize(&nfa).minimize();
        let trimmed = dfa.to_nfa().trim();
        Vsa::from_ext_nfa(&trimmed, &ext)
    }

    /// Reinterprets an NFA over an extended alphabet as a classic
    /// VSet-automaton (inverse of the normalized-NFA expansion). Merges
    /// parallel byte-class edges with the same endpoints into byte sets.
    pub fn from_ext_nfa(nfa: &splitc_automata::Nfa, ext: &ExtAlphabet) -> Vsa {
        let mut out = Vsa::new(ext.vars().clone());
        // State 0 of `out` is the start; map NFA states onto fresh states.
        let mut remap: Vec<StateId> = Vec::with_capacity(nfa.num_states());
        assert!(
            nfa.starts().len() <= 1,
            "extended NFA must have a single start state"
        );
        let nfa_start = nfa.starts().first().copied();
        for q in 0..nfa.num_states() as StateId {
            if Some(q) == nfa_start {
                remap.push(0);
            } else {
                remap.push(out.add_state());
            }
        }
        for q in 0..nfa.num_states() as StateId {
            out.finals[remap[q as usize] as usize] = nfa.is_final(q);
            // Merge class edges to the same target.
            let mut merged: HashMap<StateId, ByteSet> = HashMap::new();
            for &(sym, r) in nfa.transitions_from(q) {
                match ext.decode(sym) {
                    crate::ext::ExtSym::Op(op) => {
                        out.add_transition(remap[q as usize], Label::Op(op), remap[r as usize]);
                    }
                    crate::ext::ExtSym::Class(mask) => {
                        let e = merged.entry(remap[r as usize]).or_insert(ByteSet::EMPTY);
                        *e = e.or(&mask);
                    }
                }
            }
            let mut merged: Vec<(StateId, ByteSet)> = merged.into_iter().collect();
            merged.sort_by_key(|(r, _)| *r);
            for (r, m) in merged {
                out.add_transition(remap[q as usize], Label::Bytes(m), r);
            }
            for &r in nfa.eps_from(q) {
                out.add_transition(remap[q as usize], Label::Eps, remap[r as usize]);
            }
        }
        out
    }

    /// Renders the automaton in Graphviz DOT format (debugging aid:
    /// `dot -Tsvg`). Byte sets are abbreviated via their `Debug` form.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  start [shape=point];");
        let _ = writeln!(out, "  start -> q{};", self.start);
        for q in 0..self.num_states() as StateId {
            let shape = if self.is_final(q) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  q{q} [shape={shape}];");
            for &(l, r) in self.transitions_from(q) {
                let label = match l {
                    Label::Eps => "ε".to_string(),
                    Label::Op(op) => crate::vars::display_op(op, &self.vars),
                    Label::Bytes(m) => format!("{m:?}"),
                };
                let label = label.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = writeln!(out, "  q{q} -> q{r} [label=\"{label}\"];");
            }
        }
        out.push_str("}\n");
        out
    }

    // ------------------------------------------------------------------
    // Spanner algebra (Definition A.1/A.2).
    // ------------------------------------------------------------------

    /// Union of two union-compatible spanners (`SVars` must coincide).
    pub fn union(&self, other: &Vsa) -> Result<Vsa, String> {
        if self.vars.names() != other.vars.names() {
            return Err(format!(
                "union requires identical variables: {} vs {}",
                self.vars, other.vars
            ));
        }
        let mut out = Vsa::new(self.vars.clone());
        let a0 = out.import(self);
        let b0 = out.import(other);
        out.add_transition(0, Label::Eps, a0);
        out.add_transition(0, Label::Eps, b0);
        Ok(out)
    }

    /// Copies `other`'s states into `self` (labels unchanged — caller is
    /// responsible for variable-table compatibility). Returns the image of
    /// `other`'s start state.
    fn import(&mut self, other: &Vsa) -> StateId {
        let off = self.num_states() as StateId;
        for _ in 0..other.num_states() {
            self.add_state();
        }
        for q in 0..other.num_states() {
            self.finals[off as usize + q] = other.finals[q];
            for &(l, r) in &other.trans[q] {
                self.trans[off as usize + q].push((l, off + r));
            }
        }
        off + other.start
    }

    /// Re-labels variables according to a map into a new table; operations
    /// on dropped variables become ε (this is *syntactic* projection; use
    /// [`EVsa::project`] through the algebra for semantic projection —
    /// they agree because erasing operations is exactly the paper's
    /// projection on ref-words).
    pub fn rename_vars(&self, new_table: VarTable, map: &VarMap) -> Vsa {
        let mut out = Vsa::new(new_table);
        out.trans = self
            .trans
            .iter()
            .map(|ts| {
                ts.iter()
                    .map(|&(l, r)| match l {
                        Label::Op(op) => match map.map_op(op) {
                            Some(nop) => (Label::Op(nop), r),
                            None => (Label::Eps, r),
                        },
                        other => (other, r),
                    })
                    .collect()
            })
            .collect();
        out.finals = self.finals.clone();
        out.start = self.start;
        out
    }

    /// Wraps the whole spanner in a new capture variable: `x{P}`
    /// (used by the canonical-split-spanner and composition
    /// constructions). The new variable must not already occur.
    pub fn wrap_var(&self, name: &str) -> Result<Vsa, String> {
        if self.vars.lookup(name).is_some() {
            return Err(format!("variable {name} already used"));
        }
        let mut names: Vec<String> = self.vars.names().to_vec();
        names.push(name.to_string());
        let new_table = VarTable::new(names)?;
        let (merged, map_self, _) = self.vars.merge(&new_table);
        debug_assert_eq!(merged.names(), new_table.names());
        let x = new_table.lookup(name).expect("just added");
        let mut out = Vsa::new(new_table.clone());
        let remapped = self.rename_vars(new_table, &map_self);
        let inner_start = out.import(&remapped);
        // New start --x⊢--> inner; inner finals --⊣x--> new final.
        out.add_transition(0, Label::Op(VarOp::Open(x)), inner_start);
        let new_final = out.add_state();
        out.set_final(new_final, true);
        let inner_finals: Vec<StateId> = out
            .finals
            .iter()
            .enumerate()
            .filter(|&(q, &f)| f && q != new_final as usize)
            .map(|(q, _)| q as StateId)
            .collect();
        for q in inner_finals {
            out.set_final(q, false);
            out.add_transition(q, Label::Op(VarOp::Close(x)), new_final);
        }
        Ok(out)
    }

    /// Concatenation `L · P` with a regular language given as a Boolean
    /// (0-ary) spanner (Definition A.2 / Lemma A.3).
    pub fn concat_lang_left(&self, lang: &Vsa) -> Result<Vsa, String> {
        if !lang.vars.is_empty() {
            return Err("language operand must have no variables".into());
        }
        let mut out = Vsa::new(self.vars.clone());
        let l0 = out.import(&Vsa {
            vars: self.vars.clone(),
            trans: lang.trans.clone(),
            start: lang.start,
            finals: lang.finals.clone(),
        });
        let p0 = out.import(self);
        out.add_transition(0, Label::Eps, l0);
        // lang finals -> eps -> P start; lang finals stop accepting.
        let lang_final_ids: Vec<StateId> = (0..lang.num_states())
            .filter(|&q| lang.finals[q])
            .map(|q| l0 - lang.start + q as StateId)
            .collect();
        for q in lang_final_ids {
            out.set_final(q, false);
            out.add_transition(q, Label::Eps, p0);
        }
        Ok(out)
    }

    /// Concatenation `P · L` (Definition A.2 / Lemma A.3).
    pub fn concat_lang_right(&self, lang: &Vsa) -> Result<Vsa, String> {
        if !lang.vars.is_empty() {
            return Err("language operand must have no variables".into());
        }
        let mut out = Vsa::new(self.vars.clone());
        let p0 = out.import(self);
        let l0 = out.import(&Vsa {
            vars: self.vars.clone(),
            trans: lang.trans.clone(),
            start: lang.start,
            finals: lang.finals.clone(),
        });
        out.add_transition(0, Label::Eps, p0);
        let p_final_ids: Vec<StateId> = (0..self.num_states())
            .filter(|&q| self.finals[q])
            .map(|q| p0 - self.start + q as StateId)
            .collect();
        for q in p_final_ids {
            out.set_final(q, false);
            out.add_transition(q, Label::Eps, l0);
        }
        Ok(out)
    }
}

// NOTE: `import` with `l0 - lang.start + q` relies on states being copied
// contiguously in order; `import` returns `off + other.start`, so
// `l0 - other.start` recovers `off`.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::rgx::Rgx;
    use crate::span::Span;
    use crate::tuple::SpanTuple;

    fn x_of(v: &Vsa, name: &str) -> VarId {
        v.vars().lookup(name).unwrap()
    }

    /// Hand-built automaton for `x{a*}` over Σ = {a}.
    fn x_a_star() -> Vsa {
        let mut v = Vsa::new(VarTable::new(["x"]).unwrap());
        let x = VarId(0);
        let q1 = v.add_state();
        let q2 = v.add_state();
        v.add_transition(0, Label::Op(VarOp::Open(x)), q1);
        v.add_byte(q1, b'a', q1);
        v.add_transition(q1, Label::Op(VarOp::Close(x)), q2);
        v.set_final(q2, true);
        v
    }

    #[test]
    fn functional_automaton_detected() {
        let v = x_a_star();
        assert!(v.is_functional());
    }

    #[test]
    fn non_functional_star_detected() {
        // (x{a})): the Kleene star over a variable — the paper's footnote
        // 5 example of a non-functional formula. Build directly: start
        // state is final (0 iterations -> x never opened) and loops.
        let mut v = Vsa::new(VarTable::new(["x"]).unwrap());
        let x = VarId(0);
        let q1 = v.add_state();
        let q2 = v.add_state();
        v.set_final(0, true);
        v.add_transition(0, Label::Op(VarOp::Open(x)), q1);
        v.add_byte(q1, b'a', q2);
        v.add_transition(q2, Label::Op(VarOp::Close(x)), 0);
        assert!(!v.is_functional());
        let f = v.functionalize();
        assert!(f.is_functional());
        // Exactly one iteration survives functionalization.
        let rel = eval(&f, b"a");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 1));
        assert!(eval(&f, b"").is_empty());
        assert!(eval(&f, b"aa").is_empty());
    }

    #[test]
    fn trim_keeps_start() {
        let mut v = Vsa::new(VarTable::empty());
        let dead = v.add_state();
        v.add_byte(0, b'a', dead);
        let t = v.trim();
        assert_eq!(t.num_states(), 1); // only the (dead) start remains
        assert!(!t.is_final(0));
    }

    #[test]
    fn weak_and_strong_determinism() {
        let v = x_a_star();
        assert!(v.is_weakly_deterministic());
        assert!(v.is_deterministic());

        // Consecutive ops out of ≺ order: ⊣x then... build y⊢ after ⊣y.
        let mut w = Vsa::new(VarTable::new(["x", "y"]).unwrap());
        let q1 = w.add_state();
        let q2 = w.add_state();
        let q3 = w.add_state();
        let q4 = w.add_state();
        // y⊢ then x⊢ — violates ≺ (Open(x) ≺ Open(y)).
        w.add_transition(0, Label::Op(VarOp::Open(VarId(1))), q1);
        w.add_transition(q1, Label::Op(VarOp::Open(VarId(0))), q2);
        w.add_transition(q2, Label::Op(VarOp::Close(VarId(0))), q3);
        w.add_transition(q3, Label::Op(VarOp::Close(VarId(1))), q4);
        w.set_final(q4, true);
        assert!(w.is_weakly_deterministic());
        assert!(!w.is_deterministic());
    }

    #[test]
    fn overlapping_byte_sets_are_nondeterministic() {
        let mut v = Vsa::new(VarTable::empty());
        let q1 = v.add_state();
        let q2 = v.add_state();
        v.add_transition(0, Label::Bytes(ByteSet::range(b'a', b'm')), q1);
        v.add_transition(0, Label::Bytes(ByteSet::range(b'k', b'z')), q2);
        v.set_final(q1, true);
        assert!(!v.is_weakly_deterministic());
    }

    #[test]
    fn determinize_preserves_spanner() {
        let p = Rgx::parse("(a|b)*x{a+}(a|b)*").unwrap().to_vsa().unwrap();
        let d = p.determinize();
        assert!(d.is_deterministic(), "determinize must satisfy conds 1-2");
        assert!(d.is_functional());
        for doc in [b"aa".as_slice(), b"ab", b"ba", b"bab", b"aba"] {
            assert_eq!(eval(&p, doc), eval(&d, doc), "doc {doc:?}");
        }
    }

    #[test]
    fn union_requires_compatibility() {
        let a = x_a_star();
        let b = Vsa::new(VarTable::empty());
        assert!(a.union(&b).is_err());
        // x{a*} is anchored: on "a" the only output is x = [0,1).
        let u = a.union(&x_a_star()).unwrap();
        let rel = eval(&u, b"a");
        assert_eq!(rel, eval(&x_a_star(), b"a"));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn wrap_var_selects_whole_document_region() {
        // y{x{a*}}: y spans the same region as x.
        let v = x_a_star().wrap_var("y").unwrap();
        assert_eq!(v.vars().names(), &["x", "y"]);
        let rel = eval(&v, b"aa");
        for t in rel.iter() {
            assert_eq!(t.get(x_of(&v, "x")), t.get(x_of(&v, "y")));
        }
        assert_eq!(rel.len(), 1); // x = y = [0,2)? No: x{a*} consumes all.
        let t = &rel.tuples()[0];
        assert_eq!(t.get(x_of(&v, "x")), Span::new(0, 2));
    }

    #[test]
    fn concat_lang_shifts_spans() {
        // L = "ab", P = x{c}. L · P on "abc": x = [2,3).
        let lang = Rgx::parse("ab").unwrap().to_vsa().unwrap();
        let p = Rgx::parse("x{c}").unwrap().to_vsa().unwrap();
        let lp = p.concat_lang_left(&lang).unwrap();
        let rel = eval(&lp, b"abc");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(2, 3));
        assert!(eval(&lp, b"xbc").is_empty());
        // P · L on "cab": x = [0,1).
        let pl = p.concat_lang_right(&lang).unwrap();
        let rel = eval(&pl, b"cab");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 1));
    }

    #[test]
    fn dot_export_is_well_formed() {
        let dot = x_a_star().to_dot("demo");
        assert!(dot.starts_with("digraph demo {"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("x⊢"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), 1 + x_a_star().num_transitions());
    }

    #[test]
    fn rename_vars_projects_ops_to_eps() {
        let v = x_a_star();
        let (empty, map) = v.vars().project(&[]);
        let b = v.rename_vars(empty, &map);
        assert!(b.vars().is_empty());
        // Boolean spanner accepting a*.
        let rel = eval(&b.functionalize(), b"aaa");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0], SpanTuple::unit());
    }
}
