//! Criterion microbenchmarks for the decision procedures (supports
//! T2/T5/T6): self-splittability fast path vs general procedure, and
//! the disjointness check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use splitc_bench::families::chain_extractor;
use splitc_core::{self_splittable, self_splittable_df};
use splitc_spanner::splitter;

fn bench_self_splittability(c: &mut Criterion) {
    let s = splitter::sentences();
    let sd = s.determinize();
    let mut group = c.benchmark_group("self_splittability");
    group.sample_size(10);
    for k in [4usize, 16] {
        let p = chain_extractor(k);
        let pd = p.determinize();
        group.bench_with_input(BenchmarkId::new("general", k), &k, |b, _| {
            b.iter(|| self_splittable(&p, &s).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("df_fast_path", k), &k, |b, _| {
            b.iter(|| self_splittable_df(&pd, &sd).unwrap())
        });
    }
    group.finish();
}

fn bench_disjointness(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjointness");
    group.sample_size(10);
    for (name, s) in [
        ("sentences", splitter::sentences()),
        ("ngrams3", splitter::ngrams(3)),
        ("paragraphs", splitter::paragraphs()),
    ] {
        group.bench_function(name, |b| b.iter(|| s.is_disjoint()));
    }
    group.finish();
}

criterion_group!(benches, bench_self_splittability, bench_disjointness);
criterion_main!(benches);
