//! Deterministic finite automata and subset construction.

use crate::nfa::{Nfa, StateId, Sym};
use std::collections::HashMap;

/// A deterministic finite automaton with a (dense) transition table.
///
/// `trans[q * alphabet_size + a]` is the successor of state `q` on symbol
/// `a`, or `DEAD` when undefined (the implicit rejecting sink).
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet_size: u32,
    trans: Vec<StateId>,
    start: StateId,
    finals: Vec<bool>,
}

/// Sentinel for "no transition" (implicit dead state).
pub const DEAD: StateId = StateId::MAX;

impl Dfa {
    /// Builds a DFA from raw parts: a row-major transition table
    /// (`trans[q * alphabet_size + a]`, [`DEAD`] marking missing edges),
    /// a start state and per-state acceptance flags.
    ///
    /// This is the entry point for callers that determinize outside this
    /// module (e.g. the spanner crate's ahead-of-time engine tier, which
    /// runs a budget-bounded subset construction) but want the
    /// minimizers and language-level operations of [`Dfa`].
    ///
    /// # Panics
    ///
    /// `trans` must have exactly `finals.len() * alphabet_size` entries,
    /// every non-[`DEAD`] entry must index a state, and `start` must be
    /// a state (unless the automaton has no states at all).
    pub fn from_parts(
        alphabet_size: u32,
        trans: Vec<StateId>,
        start: StateId,
        finals: Vec<bool>,
    ) -> Dfa {
        assert_eq!(
            trans.len(),
            finals.len() * alphabet_size as usize,
            "transition table must be states × alphabet"
        );
        let n = finals.len() as StateId;
        assert!(
            trans.iter().all(|&r| r == DEAD || r < n),
            "transition target out of range"
        );
        assert!(finals.is_empty() || start < n, "start state out of range");
        Dfa {
            alphabet_size,
            trans,
            start,
            finals,
        }
    }

    /// Alphabet size.
    #[inline]
    pub fn alphabet_size(&self) -> u32 {
        self.alphabet_size
    }

    /// Number of (explicit) states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// The start state.
    #[inline]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `q` accepts.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals[q as usize]
    }

    /// Successor of `q` on `sym`, or [`DEAD`].
    #[inline]
    pub fn step(&self, q: StateId, sym: Sym) -> StateId {
        self.trans[q as usize * self.alphabet_size as usize + sym.index()]
    }

    /// Runs the automaton on a word.
    pub fn accepts(&self, word: &[Sym]) -> bool {
        let mut q = self.start;
        for &s in word {
            q = self.step(q, s);
            if q == DEAD {
                return false;
            }
        }
        self.is_final(q)
    }

    /// Subset construction: determinizes an NFA (ε-transitions allowed).
    ///
    /// Worst-case exponential — this is exactly the PSPACE-hardness source
    /// the paper works around with dfVSA; the library exposes it for the
    /// general procedures and for small inputs.
    pub fn determinize(nfa: &Nfa) -> Dfa {
        let nfa = nfa.remove_eps();
        let asize = nfa.alphabet_size();
        let mut subsets: HashMap<Vec<StateId>, StateId> = HashMap::new();
        let mut worklist: Vec<Vec<StateId>> = Vec::new();
        let mut trans: Vec<StateId> = Vec::new();
        let mut finals: Vec<bool> = Vec::new();

        let mut start_set: Vec<StateId> = nfa.starts().to_vec();
        start_set.sort_unstable();
        start_set.dedup();

        let mut intern = |set: Vec<StateId>,
                          worklist: &mut Vec<Vec<StateId>>,
                          trans: &mut Vec<StateId>,
                          finals: &mut Vec<bool>|
         -> StateId {
            if let Some(&id) = subsets.get(&set) {
                return id;
            }
            let id = finals.len() as StateId;
            finals.push(set.iter().any(|&q| nfa.is_final(q)));
            trans.extend(std::iter::repeat_n(DEAD, asize as usize));
            subsets.insert(set.clone(), id);
            worklist.push(set);
            id
        };

        let start = intern(start_set, &mut worklist, &mut trans, &mut finals);
        let mut idx = 0usize;
        while idx < worklist.len() {
            let set = worklist[idx].clone();
            let id = idx as StateId;
            idx += 1;
            // Group successors by symbol.
            let mut by_sym: HashMap<Sym, Vec<StateId>> = HashMap::new();
            for &q in &set {
                for &(s, r) in nfa.transitions_from(q) {
                    by_sym.entry(s).or_default().push(r);
                }
            }
            for (s, mut succ) in by_sym {
                succ.sort_unstable();
                succ.dedup();
                let rid = intern(succ, &mut worklist, &mut trans, &mut finals);
                trans[id as usize * asize as usize + s.index()] = rid;
            }
        }
        let _ = start;
        Dfa {
            alphabet_size: asize,
            trans,
            start: 0,
            finals,
        }
    }

    /// Minimizes the automaton by Moore partition refinement: states are
    /// split by acceptance, then repeatedly by successor-block signature
    /// until stable. `O(n² · |Σ|)` worst case — simple and sufficient for
    /// the automata the decision procedures produce. The implicit dead
    /// state is kept implicit (unreachable/dead states are dropped).
    pub fn minimize(&self) -> Dfa {
        let n = self.num_states();
        if n == 0 {
            return self.clone();
        }
        let asize = self.alphabet_size as usize;
        // Reachable states only.
        let mut reach = vec![false; n];
        let mut stack = vec![self.start];
        reach[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            for a in 0..asize {
                let r = self.trans[q as usize * asize + a];
                if r != DEAD && !reach[r as usize] {
                    reach[r as usize] = true;
                    stack.push(r);
                }
            }
        }
        // Block id per state; DEAD gets the reserved block u32::MAX.
        let mut block: Vec<u32> = (0..n).map(|q| if self.finals[q] { 1 } else { 0 }).collect();
        loop {
            use std::collections::HashMap;
            let mut sig_to_block: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next_block = vec![0u32; n];
            let mut changed = false;
            for q in 0..n {
                if !reach[q] {
                    continue;
                }
                let mut sig = Vec::with_capacity(asize);
                for a in 0..asize {
                    let r = self.trans[q * asize + a];
                    sig.push(if r == DEAD {
                        u32::MAX
                    } else {
                        block[r as usize]
                    });
                }
                let nb = sig_to_block.len() as u32;
                let id = *sig_to_block.entry((block[q], sig)).or_insert(nb);
                next_block[q] = id;
            }
            for q in 0..n {
                if reach[q] && next_block[q] != block[q] {
                    changed = true;
                }
            }
            block = next_block;
            if !changed {
                break;
            }
        }
        // Build the quotient.
        let num_blocks = block
            .iter()
            .zip(&reach)
            .filter(|(_, r)| **r)
            .map(|(b, _)| *b)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let mut trans = vec![DEAD; num_blocks * asize];
        let mut finals = vec![false; num_blocks];
        for q in 0..n {
            if !reach[q] {
                continue;
            }
            let b = block[q] as usize;
            finals[b] = self.finals[q];
            for a in 0..asize {
                let r = self.trans[q * asize + a];
                if r != DEAD {
                    trans[b * asize + a] = block[r as usize];
                }
            }
        }
        Dfa {
            alphabet_size: self.alphabet_size,
            trans,
            start: block[self.start as usize],
            finals,
        }
    }

    /// Minimizes the automaton by Hopcroft's partition-refinement
    /// algorithm (`O(n · |Σ| · log n)`).
    ///
    /// Language-equivalent to [`Dfa::minimize`] but asymptotically faster:
    /// instead of re-deriving every state's successor-block signature per
    /// round, only the *preimages* of recently split blocks are examined,
    /// and after each split the smaller half is enqueued as the next
    /// splitter. This is the minimizer the ahead-of-time engine tier uses
    /// before freezing transition tables, where the state count is about
    /// to be paid for in cache-resident table bytes.
    ///
    /// The implicit dead state is completed explicitly during refinement
    /// (so preimage computations see a total transition function) and
    /// dropped again from the result; states with an empty right language
    /// merge into it and disappear. An automaton whose start state is
    /// dead-equivalent (empty language) collapses to a single
    /// non-accepting state with no transitions.
    pub fn minimize_hopcroft(&self) -> Dfa {
        let n = self.num_states();
        if n == 0 {
            return self.clone();
        }
        let asize = self.alphabet_size as usize;
        // Reachable states only (mirrors `minimize`).
        let mut reach = vec![false; n];
        let mut stack = vec![self.start];
        reach[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            for a in 0..asize {
                let r = self.trans[q as usize * asize + a];
                if r != DEAD && !reach[r as usize] {
                    reach[r as usize] = true;
                    stack.push(r);
                }
            }
        }
        // Compact the reachable states and complete the function with an
        // explicit dead sink.
        let mut compact = vec![u32::MAX; n];
        let mut old_of: Vec<usize> = Vec::new();
        for q in 0..n {
            if reach[q] {
                compact[q] = old_of.len() as u32;
                old_of.push(q);
            }
        }
        let dead = old_of.len();
        let total = dead + 1;
        let mut delta = vec![dead as u32; total * asize];
        let mut finals = vec![false; total];
        for (i, &q) in old_of.iter().enumerate() {
            finals[i] = self.finals[q];
            for a in 0..asize {
                let r = self.trans[q * asize + a];
                if r != DEAD {
                    delta[i * asize + a] = compact[r as usize];
                }
            }
        }
        // Inverse transition lists, CSR-packed by (target, symbol).
        let mut pred_off = vec![0u32; total * asize + 1];
        for q in 0..total {
            for a in 0..asize {
                let r = delta[q * asize + a] as usize;
                pred_off[r * asize + a + 1] += 1;
            }
        }
        for i in 0..total * asize {
            pred_off[i + 1] += pred_off[i];
        }
        let mut pred = vec![0u32; total * asize];
        let mut fill: Vec<u32> = pred_off[..total * asize].to_vec();
        for q in 0..total {
            for a in 0..asize {
                let r = delta[q * asize + a] as usize;
                pred[fill[r * asize + a] as usize] = q as u32;
                fill[r * asize + a] += 1;
            }
        }
        // Initial partition {F, Q\F}; every non-empty block seeds the
        // worklist for every symbol (the textbook "smaller half only"
        // seeding is an optimization; seeding both is equally correct).
        let mut block_of = vec![0u32; total];
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for q in 0..total {
            let b = usize::from(finals[q]);
            block_of[q] = b as u32;
            blocks[b].push(q as u32);
        }
        use std::collections::{HashSet, VecDeque};
        let mut work: VecDeque<(u32, usize)> = VecDeque::new();
        let mut in_work: HashSet<(u32, usize)> = HashSet::new();
        for b in 0..2u32 {
            if !blocks[b as usize].is_empty() {
                for a in 0..asize {
                    work.push_back((b, a));
                    in_work.insert((b, a));
                }
            }
        }
        let mut in_x = vec![false; total];
        while let Some((a_blk, sym)) = work.pop_front() {
            in_work.remove(&(a_blk, sym));
            // X = preimage of the splitter block under `sym`. Determinism
            // makes the per-target predecessor lists disjoint, so X is
            // duplicate-free.
            let mut x: Vec<u32> = Vec::new();
            for &q in &blocks[a_blk as usize] {
                let base = q as usize * asize + sym;
                for k in pred_off[base]..pred_off[base + 1] {
                    x.push(pred[k as usize]);
                }
            }
            if x.is_empty() {
                continue;
            }
            for &q in &x {
                in_x[q as usize] = true;
            }
            let mut by_block: HashMap<u32, Vec<u32>> = HashMap::new();
            for &q in &x {
                by_block.entry(block_of[q as usize]).or_default().push(q);
            }
            for (b, inter) in by_block {
                if inter.len() == blocks[b as usize].len() {
                    continue;
                }
                let rest: Vec<u32> = blocks[b as usize]
                    .iter()
                    .copied()
                    .filter(|&q| !in_x[q as usize])
                    .collect();
                let nb = blocks.len() as u32;
                for &q in &inter {
                    block_of[q as usize] = nb;
                }
                blocks[b as usize] = rest;
                blocks.push(inter);
                // Hopcroft worklist rule: a pending (b, c) now means the
                // kept half, so the new half must also be processed; when
                // (b, c) is not pending, processing the smaller half alone
                // suffices.
                for c in 0..asize {
                    if in_work.contains(&(b, c)) {
                        work.push_back((nb, c));
                        in_work.insert((nb, c));
                    } else {
                        let pick = if blocks[b as usize].len() <= blocks[nb as usize].len() {
                            b
                        } else {
                            nb
                        };
                        if in_work.insert((pick, c)) {
                            work.push_back((pick, c));
                        }
                    }
                }
            }
            for &q in &x {
                in_x[q as usize] = false;
            }
        }
        // Quotient: drop the dead sink's block (dead-equivalent states
        // become implicit again).
        let dead_block = block_of[dead];
        if block_of[compact[self.start as usize] as usize] == dead_block {
            // Empty language: one explicit non-accepting state.
            return Dfa {
                alphabet_size: self.alphabet_size,
                trans: vec![DEAD; asize],
                start: 0,
                finals: vec![false],
            };
        }
        let mut renum = vec![u32::MAX; blocks.len()];
        let mut num_out = 0u32;
        for (b, members) in blocks.iter().enumerate() {
            if b as u32 != dead_block && !members.is_empty() {
                renum[b] = num_out;
                num_out += 1;
            }
        }
        let mut trans = vec![DEAD; num_out as usize * asize];
        let mut out_finals = vec![false; num_out as usize];
        for (b, members) in blocks.iter().enumerate() {
            let ob = renum[b];
            if ob == u32::MAX {
                continue;
            }
            // The partition is stable, so any member is a valid
            // representative.
            let q = members[0] as usize;
            out_finals[ob as usize] = finals[q];
            for a in 0..asize {
                let rb = block_of[delta[q * asize + a] as usize];
                if rb != dead_block {
                    trans[ob as usize * asize + a] = renum[rb as usize];
                }
            }
        }
        Dfa {
            alphabet_size: self.alphabet_size,
            trans,
            start: renum[block_of[compact[self.start as usize] as usize] as usize],
            finals: out_finals,
        }
    }

    /// Converts back to an NFA (useful for reusing NFA-level algorithms).
    pub fn to_nfa(&self) -> Nfa {
        let mut n = Nfa::new(self.alphabet_size);
        n.add_states(self.num_states());
        n.add_start(self.start);
        for q in 0..self.num_states() as StateId {
            n.set_final(q, self.finals[q as usize]);
            for a in 0..self.alphabet_size {
                let r = self.step(q, Sym(a));
                if r != DEAD {
                    n.add_transition(q, Sym(a), r);
                }
            }
        }
        n
    }

    /// Complement over the full alphabet: completes with the dead state and
    /// flips acceptance.
    pub fn complement(&self) -> Dfa {
        let asize = self.alphabet_size as usize;
        let n = self.num_states();
        let mut trans = self.trans.clone();
        // Materialize the dead state as an explicit, now-accepting sink.
        let dead_id = n as StateId;
        for t in trans.iter_mut() {
            if *t == DEAD {
                *t = dead_id;
            }
        }
        trans.extend(std::iter::repeat_n(dead_id, asize));
        let mut finals: Vec<bool> = self.finals.iter().map(|f| !f).collect();
        finals.push(true);
        Dfa {
            alphabet_size: self.alphabet_size,
            trans,
            start: self.start,
            finals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ends_in_a() -> Nfa {
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.add_start(q0);
        n.set_final(q1, true);
        n.add_transition(q0, Sym(0), q0);
        n.add_transition(q0, Sym(1), q0);
        n.add_transition(q0, Sym(0), q1);
        n
    }

    #[test]
    fn determinize_matches_nfa() {
        let n = ends_in_a();
        let d = Dfa::determinize(&n);
        for w in n.enumerate_words(5, 100) {
            assert!(d.accepts(&w));
        }
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&[Sym(1)]));
        assert!(d.accepts(&[Sym(1), Sym(0)]));
    }

    #[test]
    fn complement_flips() {
        let d = Dfa::determinize(&ends_in_a());
        let c = d.complement();
        assert!(c.accepts(&[]));
        assert!(c.accepts(&[Sym(1)]));
        assert!(!c.accepts(&[Sym(0)]));
        assert!(!c.accepts(&[Sym(1), Sym(0)]));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // Two redundant paths to acceptance: (a|b)(a|b)* built wastefully.
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let f1 = n.add_state();
        let f2 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), f1);
        n.add_transition(q0, Sym(1), f2);
        for f in [f1, f2] {
            n.set_final(f, true);
            n.add_transition(f, Sym(0), f);
            n.add_transition(f, Sym(1), f);
        }
        let d = Dfa::determinize(&n);
        let m = d.minimize();
        assert_eq!(m.num_states(), 2, "q0 + one accepting sink");
        for w in n.enumerate_words(4, 50) {
            assert!(m.accepts(&w));
        }
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn minimize_preserves_language() {
        let d = Dfa::determinize(&ends_in_a());
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        for len in 0..=6usize {
            for wi in 0..(1u32 << len) {
                let w: Vec<Sym> = (0..len).map(|i| Sym((wi >> i) & 1)).collect();
                assert_eq!(d.accepts(&w), m.accepts(&w));
            }
        }
    }

    #[test]
    fn hopcroft_collapses_equivalent_states() {
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let f1 = n.add_state();
        let f2 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), f1);
        n.add_transition(q0, Sym(1), f2);
        for f in [f1, f2] {
            n.set_final(f, true);
            n.add_transition(f, Sym(0), f);
            n.add_transition(f, Sym(1), f);
        }
        let d = Dfa::determinize(&n);
        let m = d.minimize_hopcroft();
        assert_eq!(m.num_states(), 2, "q0 + one accepting sink");
        for w in n.enumerate_words(4, 50) {
            assert!(m.accepts(&w));
        }
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn hopcroft_agrees_with_moore() {
        let d = Dfa::determinize(&ends_in_a());
        let moore = d.minimize();
        let hop = d.minimize_hopcroft();
        assert!(hop.num_states() <= moore.num_states());
        for len in 0..=7usize {
            for wi in 0..(1u32 << len) {
                let w: Vec<Sym> = (0..len).map(|i| Sym((wi >> i) & 1)).collect();
                assert_eq!(d.accepts(&w), hop.accepts(&w), "word {w:?}");
            }
        }
    }

    #[test]
    fn hopcroft_drops_dead_equivalent_states() {
        // q0 -a-> f (accepting), q0 -b-> t (trap with self-loops):
        // the trap has an empty right language and must vanish.
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let f = n.add_state();
        let t = n.add_state();
        n.add_start(q0);
        n.set_final(f, true);
        n.add_transition(q0, Sym(0), f);
        n.add_transition(q0, Sym(1), t);
        n.add_transition(t, Sym(0), t);
        n.add_transition(t, Sym(1), t);
        let d = Dfa::determinize(&n);
        let m = d.minimize_hopcroft();
        assert_eq!(m.num_states(), 2, "q0 + accepting state; trap dropped");
        assert!(m.accepts(&[Sym(0)]));
        assert!(!m.accepts(&[Sym(1)]));
        assert!(!m.accepts(&[Sym(1), Sym(0)]));
    }

    #[test]
    fn hopcroft_empty_language_collapses() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), q0);
        // No finals: the language is empty.
        let d = Dfa::determinize(&n);
        let m = d.minimize_hopcroft();
        assert_eq!(m.num_states(), 1);
        assert!(!m.accepts(&[]));
        assert!(!m.accepts(&[Sym(0)]));
        // Fixpoint on the collapsed form.
        let m2 = m.minimize_hopcroft();
        assert_eq!(m2.num_states(), 1);
    }

    #[test]
    fn hopcroft_is_fixpoint() {
        for nfa in [ends_in_a()] {
            let d = Dfa::determinize(&nfa);
            let m = d.minimize_hopcroft();
            let m2 = m.minimize_hopcroft();
            assert_eq!(m.num_states(), m2.num_states());
            for w in nfa.enumerate_words(5, 100) {
                assert!(m2.accepts(&w));
            }
        }
    }

    #[test]
    fn roundtrip_to_nfa() {
        let d = Dfa::determinize(&ends_in_a());
        let n = d.to_nfa();
        assert!(n.accepts(&[Sym(1), Sym(0)]));
        assert!(!n.accepts(&[Sym(1)]));
    }
}
