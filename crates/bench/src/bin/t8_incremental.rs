//! T8 — paper §1: incremental maintenance under a real edit workload.
//!
//! A maintained corpus ([`CorpusHandle`] + shared [`SegmentCache`])
//! absorbs a Wikipedia-model edit script (point edits, appends, shard
//! rewrites from `splitc_textgen::edits`): each delta resplits only
//! the dirty window of the touched shard, and re-extraction through
//! the content-addressed cache re-evaluates only segments whose bytes
//! actually changed. The alternative a certificate-less service is
//! stuck with — a full from-scratch rescan of the whole corpus after
//! every edit — is measured against it on the same final state, per
//! engine, at two corpus scales.
//!
//! Rows (`scale` = total segments maintained):
//!
//! * `t8_incremental/incremental` — average wall time per edit for
//!   delta + cached re-extraction.
//! * `t8_incremental/full` — wall time of one uncached full rescan.
//!
//! The CI gate (`--gate incremental:ratio[:scale]` in
//! `scripts/bench_check.py`) requires incremental ≥ ratio × faster
//! than full at the largest scale point, for every engine present.

use splitc_bench::{bench_json, engine_arg, ms, scaled, time, x, Table};
use splitc_exec::{CompileOptions, CorpusHandle, RunnerOptions, SegmentCache};
use splitc_spanner::splitter;
use splitc_textgen::edits::{edit_script, Edit};
use splitc_textgen::{spanners, wiki_corpus, CorpusConfig};
use std::sync::Arc;
use std::time::Duration;

/// Shards per corpus (each shard is an independently-editable
/// document, as in the server's corpus resources).
const SHARDS: usize = 12;
/// Edits per measured script.
const EDITS: usize = 12;

fn main() {
    let engine = engine_arg();
    println!("T8: incremental maintenance — engine {}", engine.name());
    let compile = CompileOptions::new().engine(engine);
    let spanner = compile.compile_spanner(&spanners::entity_extractor());
    let compiled = compile.compile_splitter(&splitter::sentences());

    for (round, base) in [(0u64, 2usize << 20), (1, 16 << 20)] {
        let bytes = scaled(base);
        let per_shard = (bytes / SHARDS).max(1024);
        let docs: Vec<Vec<u8>> = (0..SHARDS)
            .map(|i| {
                wiki_corpus(&CorpusConfig {
                    target_bytes: per_shard,
                    seed: 0xED17 + round * 100 + i as u64,
                    ..CorpusConfig::default()
                })
            })
            .collect();
        let lens: Vec<usize> = docs.iter().map(Vec::len).collect();

        let cache = Arc::new(SegmentCache::new(1 << 20));
        let runner = RunnerOptions::new()
            .segment_cache(cache.clone())
            .corpus_runner(spanner.clone(), compiled.clone());
        let full_runner = RunnerOptions::new().corpus_runner(spanner.clone(), compiled.clone());

        let mut handle = CorpusHandle::from_shards(compiled.clone(), docs.clone());
        let mut shadow = docs;

        // Cold pass: populates the segment cache (every segment a miss).
        let (mut last, cold) = time(|| handle.extract(&runner));

        let script = edit_script(0x5EED + round, &lens, EDITS);
        let mut incr_total = Duration::ZERO;
        let mut resplit = 0usize;
        let mut converged = 0usize;
        for e in &script {
            e.apply(&mut shadow);
            let d = match e {
                Edit::Point {
                    shard,
                    start,
                    end,
                    text,
                } => handle.edit(*shard, *start..*end, text),
                Edit::Append { shard, text } => handle.append(*shard, text),
                Edit::ReplaceShard { shard, text } => handle.replace_shard(*shard, text.clone()),
            };
            resplit += d.segments_resplit;
            converged += d.converged as usize;
            let (res, t) = time(|| handle.extract(&runner));
            incr_total += t;
            last = res;
        }
        let incr_avg = incr_total / EDITS as u32;

        // The certificate-less baseline: full rescan of the final state.
        let refs: Vec<&[u8]> = shadow.iter().map(Vec::as_slice).collect();
        let (full, full_wall) = time(|| full_runner.run_slices(&refs));
        assert_eq!(
            last.relations, full.relations,
            "incremental extraction equals the full rescan"
        );

        let segments = handle.total_segments();
        let total: usize = shadow.iter().map(Vec::len).sum();
        let tuples: usize = full.relations.iter().map(|r| r.len()).sum();
        let stats = cache.stats();

        let mut t = Table::new(
            &format!(
                "T8 — {:.1} MiB / {segments} segments, {EDITS} edits ({})",
                total as f64 / (1 << 20) as f64,
                engine.name()
            ),
            &["metric", "value"],
        );
        t.row(&["cold pass".into(), ms(cold)]);
        t.row(&[
            "segments resplit/edit".into(),
            format!("{:.1}", resplit as f64 / EDITS as f64),
        ]);
        t.row(&[
            "dirty windows converged".into(),
            format!("{converged}/{EDITS}"),
        ]);
        t.row(&["avg incremental/edit".into(), ms(incr_avg)]);
        t.row(&["full rescan".into(), ms(full_wall)]);
        t.row(&[
            "incremental speedup".into(),
            x(full_wall.as_secs_f64() / incr_avg.as_secs_f64().max(1e-12)),
        ]);
        t.row(&[
            "segment cache".into(),
            format!(
                "{} hits / {} misses / {} evictions",
                stats.hits, stats.misses, stats.evictions
            ),
        ]);
        t.print();

        bench_json(
            "t8_incremental/incremental",
            engine.name(),
            total,
            segments as f64,
            incr_avg,
            tuples,
        );
        bench_json(
            "t8_incremental/full",
            engine.name(),
            total,
            segments as f64,
            full_wall,
            tuples,
        );
    }
}
