//! Server configuration with typed validation.
//!
//! Every knob is validated up front into a [`ConfigError`] — a bad
//! `--workers 0` is a diagnosable startup failure, never a panic deep
//! inside a runner (the execution crate's own policy is to *normalize*
//! zeros; the service's policy is to *reject* them, because a zero here
//! is an operator typo, not a computed edge case).

use std::fmt;

/// Configuration of a [`crate::server::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// TCP port to bind on 127.0.0.1. `0` asks the OS for an ephemeral
    /// port (the bound address is reported by
    /// [`crate::server::Server::addr`] and printed by the binary).
    pub port: u16,
    /// Size of the shared evaluation pool *and* the number of
    /// connection-handling threads.
    pub workers: usize,
    /// Admission queue capacity, in pending connections. When the
    /// queue is full, new connections are refused with `429`.
    pub queue_depth: usize,
    /// Target batch payload for corpus runs, in bytes.
    pub batch_bytes: usize,
    /// Largest accepted request body, in bytes (`413` beyond).
    pub max_body_bytes: usize,
    /// Capacity (in segments) of the process-wide segment cache shared
    /// by every corpus-resource extraction. Bounded by FIFO eviction;
    /// eviction affects speed only, never results.
    pub segment_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            port: 7878,
            workers: 4,
            queue_depth: 32,
            batch_bytes: 32 << 10,
            max_body_bytes: 16 << 20,
            segment_cache_capacity: 1 << 16,
        }
    }
}

/// Why a [`ServerConfig`] was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `workers` was 0.
    ZeroWorkers,
    /// `workers` exceeded the sanity cap.
    TooManyWorkers {
        /// The requested count.
        requested: usize,
        /// The cap.
        limit: usize,
    },
    /// `queue_depth` was 0.
    ZeroQueueDepth,
    /// `batch_bytes` was 0.
    ZeroBatchBytes,
    /// `max_body_bytes` was too small to carry any request.
    BodyCapTooSmall,
    /// `segment_cache_capacity` was 0.
    ZeroSegmentCache,
    /// A command-line flag had a malformed or missing value.
    BadFlag {
        /// The flag as typed.
        flag: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::TooManyWorkers { requested, limit } => {
                write!(f, "workers {requested} exceeds the cap of {limit}")
            }
            ConfigError::ZeroQueueDepth => write!(f, "queue-depth must be at least 1"),
            ConfigError::ZeroBatchBytes => write!(f, "batch-bytes must be at least 1"),
            ConfigError::BodyCapTooSmall => {
                write!(f, "max body cap must be at least 1024 bytes")
            }
            ConfigError::ZeroSegmentCache => {
                write!(f, "segment-cache capacity must be at least 1")
            }
            ConfigError::BadFlag { flag, reason } => write!(f, "flag {flag}: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Sanity cap on the worker count: far beyond any sensible deployment,
/// low enough that a unit typo (`--workers 40000`) cannot exhaust
/// process threads.
pub const MAX_WORKERS: usize = 1024;

impl ServerConfig {
    /// Checks every knob, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.workers > MAX_WORKERS {
            return Err(ConfigError::TooManyWorkers {
                requested: self.workers,
                limit: MAX_WORKERS,
            });
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.batch_bytes == 0 {
            return Err(ConfigError::ZeroBatchBytes);
        }
        if self.max_body_bytes < 1024 {
            return Err(ConfigError::BodyCapTooSmall);
        }
        if self.segment_cache_capacity == 0 {
            return Err(ConfigError::ZeroSegmentCache);
        }
        Ok(())
    }

    /// Parses `--port N --workers N --queue-depth N --batch-bytes N`
    /// style flags (the binary's interface) into a validated config.
    /// Unknown flags are rejected; `--offline` is returned separately.
    pub fn from_args<I, S>(args: I) -> Result<(ServerConfig, bool), ConfigError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut config = ServerConfig::default();
        let mut offline = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let flag = arg.as_ref().to_string();
            if flag == "--offline" {
                offline = true;
                continue;
            }
            let value = args.next().map(|v| v.as_ref().to_string()).ok_or_else(|| {
                ConfigError::BadFlag {
                    flag: flag.clone(),
                    reason: "missing value".into(),
                }
            })?;
            let parse = |value: &str, flag: &str| -> Result<usize, ConfigError> {
                value.parse().map_err(|_| ConfigError::BadFlag {
                    flag: flag.to_string(),
                    reason: format!("not a number: {value:?}"),
                })
            };
            match flag.as_str() {
                "--port" => {
                    config.port = value.parse().map_err(|_| ConfigError::BadFlag {
                        flag,
                        reason: format!("not a port: {value:?}"),
                    })?
                }
                "--workers" => config.workers = parse(&value, &flag)?,
                "--queue-depth" => config.queue_depth = parse(&value, &flag)?,
                "--batch-bytes" => config.batch_bytes = parse(&value, &flag)?,
                "--max-body-bytes" => config.max_body_bytes = parse(&value, &flag)?,
                "--segment-cache" => config.segment_cache_capacity = parse(&value, &flag)?,
                _ => {
                    return Err(ConfigError::BadFlag {
                        flag,
                        reason: "unknown flag".into(),
                    })
                }
            }
        }
        config.validate()?;
        Ok((config, offline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(ServerConfig::default().validate(), Ok(()));
    }

    #[test]
    fn each_knob_is_validated() {
        let base = ServerConfig::default();
        let cases: Vec<(ServerConfig, ConfigError)> = vec![
            (
                ServerConfig {
                    workers: 0,
                    ..base.clone()
                },
                ConfigError::ZeroWorkers,
            ),
            (
                ServerConfig {
                    workers: MAX_WORKERS + 1,
                    ..base.clone()
                },
                ConfigError::TooManyWorkers {
                    requested: MAX_WORKERS + 1,
                    limit: MAX_WORKERS,
                },
            ),
            (
                ServerConfig {
                    queue_depth: 0,
                    ..base.clone()
                },
                ConfigError::ZeroQueueDepth,
            ),
            (
                ServerConfig {
                    batch_bytes: 0,
                    ..base.clone()
                },
                ConfigError::ZeroBatchBytes,
            ),
            (
                ServerConfig {
                    max_body_bytes: 10,
                    ..base.clone()
                },
                ConfigError::BodyCapTooSmall,
            ),
            (
                ServerConfig {
                    segment_cache_capacity: 0,
                    ..base.clone()
                },
                ConfigError::ZeroSegmentCache,
            ),
        ];
        for (config, want) in cases {
            assert_eq!(config.validate(), Err(want));
        }
    }

    #[test]
    fn arg_parsing() {
        let (c, offline) = ServerConfig::from_args([
            "--port",
            "0",
            "--workers",
            "2",
            "--queue-depth",
            "5",
            "--segment-cache",
            "128",
            "--offline",
        ])
        .unwrap();
        assert!(offline);
        assert_eq!((c.port, c.workers, c.queue_depth), (0, 2, 5));
        assert_eq!(c.segment_cache_capacity, 128);

        for bad in [
            vec!["--port"],
            vec!["--workers", "x"],
            vec!["--frobnicate", "1"],
            vec!["--workers", "0"],
            vec!["--port", "99999"],
            vec!["--segment-cache", "0"],
        ] {
            assert!(ServerConfig::from_args(bad.clone()).is_err(), "{bad:?}");
        }
    }
}
