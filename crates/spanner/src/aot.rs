//! The ahead-of-time (AOT) engine: fully determinized, Hopcroft-minimized
//! DFAs frozen into flat premultiplied `u16` transition tables.
//!
//! The dense engine ([`crate::dense`]) pays lazy-DFA bookkeeping on the
//! hot path: a memoization probe, a hit/miss counter and a
//! `state * num_classes + class` multiply per scanned byte, plus hash
//! interning whenever a scan reaches a new power-set state. For the
//! small hot spanners that dominate the e-series benchmarks and the
//! server's warm paths, this module removes all of it at compile time:
//!
//! 1. **Full determinization under a budget** — both scan directions
//!    (the forward acceptance DFA and the backward *viability* DFA that
//!    feeds tuple enumeration) are determinized eagerly over the dense
//!    engine's byte-class adjacency. Construction aborts — and the
//!    caller falls back to the lazy dense tier — as soon as either
//!    direction would intern more than [`AotConfig::max_states`] sets
//!    (or more than the packed tables can address).
//! 2. **Hopcroft minimization** — the forward DFA only observes Boolean
//!    acceptance, so it is minimized with
//!    [`splitc_automata::dfa::Dfa::minimize_hopcroft`] before freezing.
//!    The backward DFA is *not* minimized: each of its states is an
//!    observable set of viable eVSA states (tuple enumeration reads the
//!    membership bitsets), and merging language-equivalent sets would
//!    change results.
//! 3. **Premultiplied `u16` tables** — state ids are stored
//!    pre-multiplied by the row stride (the class count rounded up to a
//!    power of two), with the accept/empty flag packed into bit 15, so
//!    the inner loop is `table[(id & MASK) | class]`: one AND, one OR,
//!    one load — no multiply, no branch. Both passes step 4 bytes per
//!    iteration (unrolled), and compose with the existing
//!    [`PrefilterGate`] and precompiled skip-loop escape scanners.
//!
//! Exactness: the backward table's states are exactly the viability sets
//! the lazy dense engine would intern, and the forward tuple enumeration
//! is the shared [`crate::eval`] search over the same dense edge tables —
//! so relations are byte-identical to the NFA, dense and prefilter
//! engines (asserted by the repository-wide engine-matrix differential
//! harness).

use crate::dense::{DenseCache, DenseConfig, DenseEdges, DenseEvsa};
use crate::eval::forward_enumerate_scratch;
use crate::eval::ViableSource;
use crate::evsa::EVsa;
use crate::prefilter::{PrefilterAnalysis, PrefilterGate, PrefilterStats};
use crate::tuple::SpanRelation;
use splitc_automata::classes::ByteClasses;
use splitc_automata::dfa::{Dfa, DEAD};
use splitc_automata::nfa::StateId;
use splitc_automata::scan::ByteFinder;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Flag bit packed into a table entry's id: *accepting* in the forward
/// table, *empty viability set* in the backward table.
const FLAG: u16 = 1 << 15;

/// Mask selecting the premultiplied state id (low 15 bits).
const MASK: u16 = FLAG - 1;

/// Consecutive self-steps before a pass consults its precompiled
/// skip-loop scanner (same rationale and value as the dense engine).
const SKIP_STREAK: u32 = 8;

/// Packs a state index into a premultiplied table entry.
///
/// `shift` is `log2(stride)`; the flag lands in bit 15, which the
/// packing budget (`states * stride <= 1 << 15`) keeps clear of the id.
#[inline]
fn pack(index: usize, shift: u32, flag: bool) -> u16 {
    debug_assert!(index << shift < 1 << 15, "premultiplied id overflows u16");
    ((index << shift) as u16) | if flag { FLAG } else { 0 }
}

/// Recovers the state index from a packed table entry.
#[inline]
fn unpack(id: u16, shift: u32) -> usize {
    ((id & MASK) >> shift) as usize
}

/// Tuning knobs of the AOT engine.
#[derive(Debug, Clone, Copy)]
pub struct AotConfig {
    /// Upper bound on determinized states *per scan direction*. When
    /// either direction's subset construction would exceed it — or the
    /// premultiplied ids would no longer fit in the 15 addressable bits
    /// of a `u16` — compilation returns `None` and the caller stays on
    /// the lazy dense tier. Determinization cost is bounded by
    /// `O(max_states · classes · |Q|/64)`, so an adversarial automaton
    /// cannot make compilation blow up.
    pub max_states: usize,
    /// Configuration for the embedded dense compilation, which supplies
    /// the byte-class partition and the edge tables driving tuple
    /// enumeration.
    pub dense: DenseConfig,
}

impl Default for AotConfig {
    fn default() -> Self {
        // Hot production spanners determinize to a handful of states;
        // the default budget admits all of them while keeping both
        // packed tables comfortably cache-resident (at most
        // `2 · 1024 · stride` u16 entries = 64 KiB per direction even at
        // the widest stride the u16 packing allows).
        AotConfig {
            max_states: 1024,
            dense: DenseConfig::default(),
        }
    }
}

/// One eagerly determinized scan direction: interned power sets and a
/// total `index × class` transition table (the empty set is explicit).
struct SubsetDfa {
    /// Flattened membership bitsets, `words` per state.
    sets: Vec<u64>,
    /// `trans[index * nc + class]` → successor index (total).
    trans: Vec<u32>,
    /// Index of the seed set.
    start: u32,
}

impl SubsetDfa {
    fn num_states(&self, words: usize) -> usize {
        self.sets.len().checked_div(words).unwrap_or(0)
    }
}

/// Budget-bounded subset construction over one of the dense engine's
/// adjacency CSRs (`backward` selects predecessors). Returns `None` when
/// more than `budget` sets would be interned.
fn determinize_bounded(
    dense: &DenseEvsa,
    seed: &[u64],
    backward: bool,
    budget: usize,
) -> Option<SubsetDfa> {
    let nc = dense.nc;
    let words = dense.words;
    let (off, pool) = if backward {
        (&dense.pred_off, &dense.pred_pool)
    } else {
        (&dense.succ_off, &dense.succ_pool)
    };
    let mut sets: Vec<u64> = Vec::new();
    let mut ids: HashMap<Box<[u64]>, u32> = HashMap::new();
    let mut trans: Vec<u32> = Vec::new();
    fn intern(
        set: Box<[u64]>,
        nc: usize,
        budget: usize,
        ids: &mut HashMap<Box<[u64]>, u32>,
        sets: &mut Vec<u64>,
        trans: &mut Vec<u32>,
    ) -> Option<u32> {
        if let Some(&id) = ids.get(&set) {
            return Some(id);
        }
        if ids.len() >= budget {
            return None;
        }
        let id = ids.len() as u32;
        sets.extend_from_slice(&set);
        trans.resize(trans.len() + nc, u32::MAX);
        ids.insert(set, id);
        Some(id)
    }
    let start = intern(seed.into(), nc, budget, &mut ids, &mut sets, &mut trans)?;
    let mut next = 0usize;
    let mut out = vec![0u64; words];
    while next < ids.len() {
        let id = next;
        next += 1;
        for c in 0..nc {
            out.iter_mut().for_each(|w| *w = 0);
            for w in 0..words {
                let mut bits = sets[id * words + w];
                while bits != 0 {
                    let q = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let base = q * nc + c;
                    for &t in &pool[off[base] as usize..off[base + 1] as usize] {
                        out[t as usize >> 6] |= 1u64 << (t & 63);
                    }
                }
            }
            let rid = intern(
                out.clone().into_boxed_slice(),
                nc,
                budget,
                &mut ids,
                &mut sets,
                &mut trans,
            )?;
            trans[id * nc + c] = rid;
        }
    }
    Some(SubsetDfa { sets, trans, start })
}

/// Precompiled scan-skip analysis for one eVSA state with a block-free
/// self-loop (a "scanning" state: the `.*` context of an extractor).
///
/// `ok` is a bitvec indexed by `(backward id << shift) | class`: the bit
/// is set when, for a document byte of that class with that viability id
/// *after* it, the state's only viable move is the self-loop — the
/// self-loop mask contains the class, the state itself is in the
/// viability set, and every other transition either misses the class or
/// targets a state outside the set. Under those conditions the forward
/// enumeration can cross the byte without a stack frame (see
/// [`crate::eval::ViableSource::scan_skip`]); the lazy dense tier cannot
/// precompute this table because its cache ids are unstable under
/// eviction.
#[derive(Debug)]
struct ScanSkip {
    ok: Vec<u64>,
}

/// An [`EVsa`] compiled for the AOT engine: premultiplied forward
/// (acceptance) and backward (viability) DFA tables behind a
/// [`PrefilterGate`], with the dense engine's edge tables driving tuple
/// enumeration. Construct via [`AotEvsa::compile`] or
/// [`EVsa::compile_aot`]; `None` means the automaton exceeded the
/// budget and the caller should stay on the lazy dense tier.
#[derive(Debug)]
pub struct AotEvsa {
    /// The embedded dense compilation: byte classes, edge tables for the
    /// forward enumeration, post flags.
    dense: Arc<DenseEvsa>,
    analysis: PrefilterAnalysis,
    gate: PrefilterGate,
    /// `log2(stride)`; premultiplied id = `index << shift`.
    shift: u32,
    /// Row stride: class count rounded up to a power of two.
    stride: usize,
    /// Byte → class, widened for direct OR-ing into a premultiplied id.
    cls: Box<[u16; 256]>,
    /// Forward table: `fwd_tbl[(id & MASK) | class]` → packed successor
    /// (bit 15 = accepting).
    fwd_tbl: Vec<u16>,
    /// Backward table: same layout (bit 15 = empty viability set).
    bwd_tbl: Vec<u16>,
    /// Packed start entries of both passes.
    fwd_start: u16,
    bwd_start: u16,
    /// Premultiplied id of the forward dead sink (scan is decided).
    fwd_dead: u16,
    /// Bitset words per viability set.
    words: usize,
    /// Flattened viability membership bitsets, `words` per backward
    /// state, indexed by unpacked backward ids.
    bwd_sets: Vec<u64>,
    /// Per-eVSA-state scan-skip tables (`None` = no block-free
    /// self-loop, the state never scans).
    scan: Vec<Option<ScanSkip>>,
    /// Precompiled skip-loop escape scanners per state index (`None` =
    /// the state escapes too often for skipping to pay).
    fwd_escape: Vec<Option<ByteFinder>>,
    bwd_escape: Vec<Option<ByteFinder>>,
    /// State counts of the *raw* (unminimized) determinizations — the
    /// numbers the budget is charged against.
    raw_fwd: usize,
    raw_bwd: usize,
    /// Packed forward states (after minimization, incl. the dead sink).
    num_fwd: usize,
    /// Reusable scan caches for the pooled entry points.
    caches: Mutex<Vec<DenseCache>>,
    /// Aggregate statistics of the pooled entry points.
    stats: Mutex<PrefilterStats>,
}

impl AotEvsa {
    /// Determinizes and freezes `evsa` under `config`. `None` when the
    /// automaton is empty, a subset construction exceeds
    /// [`AotConfig::max_states`], or the packed ids would overflow the
    /// 15 addressable bits of a `u16` — callers then fall back to the
    /// lazy dense tier (which is exact at any size).
    pub fn compile(evsa: Arc<EVsa>, config: AotConfig) -> Option<AotEvsa> {
        let dense = Arc::new(DenseEvsa::compile(evsa, config.dense));
        AotEvsa::assemble(dense, config)
    }

    /// Like [`AotEvsa::compile`], but indexes the tables by a
    /// caller-supplied byte partition (see
    /// [`DenseEvsa::compile_with_classes`]; the fleet engine passes the
    /// coarsest common refinement across all members). A shared
    /// partition widens the row stride, so a member that fits the
    /// packing budget alone may return `None` here — fleet members
    /// degrade to lazy dense individually.
    ///
    /// # Panics
    ///
    /// Like the dense engine, `classes` must refine every transition
    /// mask of the automaton.
    pub fn compile_with_classes(
        evsa: Arc<EVsa>,
        config: AotConfig,
        classes: ByteClasses,
    ) -> Option<AotEvsa> {
        let dense = Arc::new(DenseEvsa::compile_with_classes(evsa, config.dense, classes));
        AotEvsa::assemble(dense, config)
    }

    fn assemble(dense: Arc<DenseEvsa>, config: AotConfig) -> Option<AotEvsa> {
        let evsa = dense.evsa_arc();
        if evsa.num_states() == 0 {
            return None;
        }
        let nc = dense.nc;
        let words = dense.words;
        let stride = nc.next_power_of_two();
        let shift = stride.trailing_zeros();
        // Ids are premultiplied by `stride`, so `states * stride` must
        // stay below bit 15; charging the budget with the same cap keeps
        // construction memory proportional to what can be packed.
        let budget = config.max_states.min((1usize << 15) / stride);
        if budget == 0 {
            return None;
        }

        let fwd_raw = determinize_bounded(&dense, &dense.start_set, false, budget)?;
        let bwd_raw = determinize_bounded(&dense, &dense.finals, true, budget)?;
        let raw_fwd = fwd_raw.num_states(words);
        let raw_bwd = bwd_raw.num_states(words);

        // Forward: only acceptance is observable, so minimize before
        // packing. The raw table is total (the empty set is an explicit
        // state), and Hopcroft re-drops dead-equivalent states.
        let accepts: Vec<bool> = (0..raw_fwd)
            .map(|i| (0..words).any(|w| fwd_raw.sets[i * words + w] & dense.finals[w] != 0))
            .collect();
        let dfa = Dfa::from_parts(
            nc as u32,
            fwd_raw.trans.iter().map(|&r| r as StateId).collect(),
            fwd_raw.start,
            accepts,
        );
        let min = dfa.minimize_hopcroft();
        // Pack the minimized forward DFA plus one explicit dead sink.
        let m = min.num_states();
        let num_fwd = m + 1;
        if num_fwd * stride > 1 << 15 {
            return None;
        }
        let sink = m;
        let fwd_dead = pack(sink, shift, false) & MASK;
        let mut fwd_tbl = vec![fwd_dead; num_fwd * stride];
        for q in 0..m {
            for c in 0..nc {
                let r = min.step(q as StateId, splitc_automata::nfa::Sym(c as u32));
                let entry = if r == DEAD {
                    fwd_dead
                } else {
                    pack(r as usize, shift, min.is_final(r))
                };
                fwd_tbl[(q << shift) | c] = entry;
            }
        }
        let fwd_start = pack(min.start() as usize, shift, min.is_final(min.start()));

        // Backward: every state's membership set feeds tuple
        // enumeration, so the determinization is packed unminimized.
        if raw_bwd * stride > 1 << 15 {
            return None;
        }
        let empty_of = |i: usize| (0..words).all(|w| bwd_raw.sets[i * words + w] == 0);
        let mut bwd_tbl = vec![0u16; raw_bwd * stride];
        for q in 0..raw_bwd {
            for c in 0..nc {
                let r = bwd_raw.trans[q * nc + c] as usize;
                bwd_tbl[(q << shift) | c] = pack(r, shift, empty_of(r));
            }
            // Padding classes are never indexed (cls[b] < nc); keep them
            // self-looping so a stray read cannot leave the table.
            for c in nc..stride {
                bwd_tbl[(q << shift) | c] = pack(q, shift, empty_of(q));
            }
        }
        let bwd_start = pack(
            bwd_raw.start as usize,
            shift,
            empty_of(bwd_raw.start as usize),
        );

        let classes = dense.classes();
        let mut cls = Box::new([0u16; 256]);
        for b in 0..=255u8 {
            cls[b as usize] = classes.class_of(b) as u16;
        }

        // Precompile skip-loop escape scanners: a state that self-loops
        // on ≥ 192 of the 256 bytes gets a SWAR finder for its escapes
        // (same threshold as the dense engine's lazy probe).
        let escapes = |tbl: &[u16], n: usize| -> Vec<Option<ByteFinder>> {
            (0..n)
                .map(|q| {
                    let own = (q << shift) as u16;
                    let mut stay = crate::byteset::ByteSet::EMPTY;
                    for c in 0..nc {
                        if tbl[(q << shift) | c] & MASK == own {
                            for b in classes.bytes_of(c) {
                                stay.insert(b);
                            }
                        }
                    }
                    if stay.len() >= 192 {
                        Some(ByteFinder::from_predicate(|b| !stay.contains(b)))
                    } else {
                        None
                    }
                })
                .collect()
        };
        let fwd_escape = escapes(&fwd_tbl, num_fwd);
        let bwd_escape = escapes(&bwd_tbl, raw_bwd);

        // Scan-skip tables (see [`ScanSkip`]): the backward ids are a
        // frozen, exhaustive enumeration of every viability set, so the
        // "is the self-loop the only viable move?" predicate can be
        // answered per (id, class) once, at compile time. The class
        // partition refines every transition mask, so testing one
        // representative byte per class is exact.
        let set_has = |id: usize, q: StateId| {
            bwd_raw.sets[id * words + (q as usize >> 6)] & (1u64 << (q & 63)) != 0
        };
        let scan: Vec<Option<ScanSkip>> = (0..evsa.num_states())
            .map(|qi| {
                let s = qi as StateId;
                // Post states emit-and-cut on entry: no frame ever
                // scans from one.
                if dense.post[qi] {
                    return None;
                }
                let ts = evsa.transitions_from(s);
                let mut self_mask = crate::byteset::ByteSet::EMPTY;
                for (block, mask, r) in ts {
                    if *r == s && block.is_empty() {
                        self_mask = self_mask.or(mask);
                    }
                }
                if self_mask.is_empty() {
                    return None;
                }
                let others: Vec<_> = ts
                    .iter()
                    .filter(|(block, _, r)| !(*r == s && block.is_empty()))
                    .map(|(_, mask, r)| (mask, *r))
                    .collect();
                let bits = raw_bwd << shift;
                let mut ok = vec![0u64; bits.div_ceil(64)];
                for c in 0..nc {
                    let Some(b) = classes.bytes_of(c).next() else {
                        continue;
                    };
                    if !self_mask.contains(b) {
                        continue;
                    }
                    for id in 0..raw_bwd {
                        if !set_has(id, s)
                            || others.iter().any(|(m, r)| m.contains(b) && set_has(id, *r))
                        {
                            continue;
                        }
                        let idx = (id << shift) | c;
                        ok[idx >> 6] |= 1u64 << (idx & 63);
                    }
                }
                Some(ScanSkip { ok })
            })
            .collect();

        let analysis = PrefilterAnalysis::analyze(evsa);
        let gate = analysis.gate();

        Some(AotEvsa {
            analysis,
            gate,
            shift,
            stride,
            cls,
            fwd_tbl,
            bwd_tbl,
            fwd_start,
            bwd_start,
            fwd_dead,
            words,
            bwd_sets: bwd_raw.sets,
            scan,
            fwd_escape,
            bwd_escape,
            raw_fwd,
            raw_bwd,
            num_fwd,
            dense,
            caches: Mutex::new(Vec::new()),
            stats: Mutex::new(PrefilterStats::default()),
        })
    }

    /// The compiled automaton.
    pub fn evsa(&self) -> &EVsa {
        self.dense.evsa()
    }

    /// The compiled automaton behind its shared handle.
    pub fn evsa_arc(&self) -> &Arc<EVsa> {
        self.dense.evsa_arc()
    }

    /// The embedded dense compilation (edge tables, byte classes).
    pub fn dense(&self) -> &Arc<DenseEvsa> {
        &self.dense
    }

    /// The prefilter analysis backing the gate.
    pub fn analysis(&self) -> &PrefilterAnalysis {
        &self.analysis
    }

    /// The document gate (shared with the prefilter engine).
    pub fn gate(&self) -> &PrefilterGate {
        &self.gate
    }

    /// Raw (unminimized) determinized state counts `(forward,
    /// backward)` — the numbers charged against
    /// [`AotConfig::max_states`]. Exposed so the tiering boundary can be
    /// pinned by regression tests.
    pub fn determinized_states(&self) -> (usize, usize) {
        (self.raw_fwd, self.raw_bwd)
    }

    /// Packed state counts `(forward, backward)`: the forward count is
    /// after Hopcroft minimization (plus the explicit dead sink), the
    /// backward count equals the raw determinization.
    pub fn packed_states(&self) -> (usize, usize) {
        (self.num_fwd, self.raw_bwd)
    }

    /// Row stride of the premultiplied tables: the byte-class count
    /// rounded up to the next power of two.
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// Total size of the two premultiplied transition tables in bytes.
    pub fn table_bytes(&self) -> usize {
        (self.fwd_tbl.len() + self.bwd_tbl.len()) * 2
    }

    /// Snapshot of the statistics accumulated by the pooled entry
    /// points; callers driving [`AotEvsa::eval_with`] own their stats.
    pub fn stats(&self) -> PrefilterStats {
        *self.stats.lock().expect("stats poisoned")
    }

    /// One backward table step.
    #[inline(always)]
    fn bstep(&self, cur: u16, b: u8) -> u16 {
        self.bwd_tbl[((cur & MASK) | self.cls[b as usize]) as usize]
    }

    /// One forward table step.
    #[inline(always)]
    fn fstep(&self, cur: u16, b: u8) -> u16 {
        self.fwd_tbl[((cur & MASK) | self.cls[b as usize]) as usize]
    }

    /// Runs the backward viability pass, filling `cache.ids_buf` with
    /// the backward state *index* per position. Unrolled 4 bytes per
    /// iteration; flat regions are crossed by the precompiled escape
    /// scanners; an empty viability set short-circuits the rest (the
    /// empty set is a fixpoint of the predecessor step).
    fn viability_pass(&self, doc: &[u8], cache: &mut DenseCache) {
        let n = doc.len();
        cache.ids_buf.clear();
        cache.ids_buf.resize(n + 1, 0);
        let mut cur = self.bwd_start;
        cache.ids_buf[n] = unpack(cur, self.shift) as u32;
        let mut i = n;
        let mut streak = 0u32;
        while i > 0 {
            if cur & FLAG != 0 {
                // Empty viability set: every earlier position is empty.
                let idx = unpack(cur, self.shift) as u32;
                cache.ids_buf[..i].fill(idx);
                return;
            }
            if streak >= SKIP_STREAK {
                streak = 0;
                let idx = unpack(cur, self.shift);
                if let Some(f) = &self.bwd_escape[idx] {
                    match f.rfind(&doc[..i]) {
                        Some(j) => {
                            // Bytes after the last escape all stay put.
                            cache.ids_buf[j + 1..i].fill(idx as u32);
                            cache.skipped += (i - (j + 1)) as u64;
                            i = j + 1;
                            if i == 0 {
                                return;
                            }
                        }
                        None => {
                            cache.ids_buf[..i].fill(idx as u32);
                            cache.skipped += i as u64;
                            return;
                        }
                    }
                }
            }
            if i >= 4 {
                let prev = cur;
                cur = self.bstep(cur, doc[i - 1]);
                cache.ids_buf[i - 1] = unpack(cur, self.shift) as u32;
                cur = self.bstep(cur, doc[i - 2]);
                cache.ids_buf[i - 2] = unpack(cur, self.shift) as u32;
                cur = self.bstep(cur, doc[i - 3]);
                cache.ids_buf[i - 3] = unpack(cur, self.shift) as u32;
                cur = self.bstep(cur, doc[i - 4]);
                cache.ids_buf[i - 4] = unpack(cur, self.shift) as u32;
                i -= 4;
                // Block-level streak: a state unchanged across 4 steps
                // is (heuristically) sitting in a self-loop; the escape
                // probe above is exact either way.
                streak = if cur == prev { streak + 4 } else { 0 };
            } else {
                let prev = cur;
                cur = self.bstep(cur, doc[i - 1]);
                cache.ids_buf[i - 1] = unpack(cur, self.shift) as u32;
                i -= 1;
                streak = if cur == prev { streak + 1 } else { 0 };
            }
        }
    }

    /// Evaluates on a document, producing exactly the relation of the
    /// NFA, dense and prefilter engines. Uses pooled caches and the
    /// internal stats aggregate.
    pub fn eval(&self, doc: &[u8]) -> SpanRelation {
        let mut cache = self.take_cache();
        let mut stats = PrefilterStats::default();
        let out = self.eval_with(doc, &mut cache, &mut stats);
        self.return_cache(cache);
        let mut agg = self.stats.lock().expect("stats poisoned");
        *agg = agg.merge(stats);
        out
    }

    /// Evaluates with an explicit scan cache and stats accumulator (one
    /// pair per worker). The cache's id buffer and enumeration scratch
    /// are reused; its lazy-DFA state is untouched (the AOT tables are
    /// static), so a cache may alternate between engines freely.
    pub fn eval_with(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> SpanRelation {
        if self.gate.rejects(doc) {
            stats.bytes_skipped += doc.len() as u64;
            return SpanRelation::empty();
        }
        if !self.gate.is_transparent() {
            stats.candidates += 1;
        }
        let skipped_before = cache.skipped;
        self.viability_pass(doc, cache);
        stats.bytes_skipped += cache.skipped - skipped_before;
        let viable = AotViable {
            ids: &cache.ids_buf,
            sets: &self.bwd_sets,
            words: self.words,
            scan: &self.scan,
            shift: self.shift,
            cls: &self.cls,
        };
        let rel = forward_enumerate_scratch(
            self.dense.evsa(),
            doc,
            &self.dense.post,
            &viable,
            &DenseEdges(&self.dense),
            &mut cache.scratch,
        );
        if rel.is_empty() && !self.gate.is_transparent() {
            stats.false_candidates += 1;
        }
        rel
    }

    /// Boolean acceptance through the gate (pooled cache + stats).
    pub fn accepts(&self, doc: &[u8]) -> bool {
        let mut cache = self.take_cache();
        let mut stats = PrefilterStats::default();
        let out = self.accepts_with(doc, &mut cache, &mut stats);
        self.return_cache(cache);
        let mut agg = self.stats.lock().expect("stats poisoned");
        *agg = agg.merge(stats);
        out
    }

    /// Boolean acceptance with an explicit cache and stats accumulator:
    /// the forward minimized table, unrolled 4 bytes per iteration, with
    /// dead-state early exit and skip-loop escapes.
    pub fn accepts_with(
        &self,
        doc: &[u8],
        cache: &mut DenseCache,
        stats: &mut PrefilterStats,
    ) -> bool {
        if self.gate.rejects(doc) {
            stats.bytes_skipped += doc.len() as u64;
            return false;
        }
        if !self.gate.is_transparent() {
            stats.candidates += 1;
        }
        let n = doc.len();
        let mut cur = self.fwd_start;
        let mut pos = 0usize;
        let mut streak = 0u32;
        while pos < n {
            if cur & MASK == self.fwd_dead {
                break;
            }
            if streak >= SKIP_STREAK {
                streak = 0;
                let idx = unpack(cur, self.shift);
                if let Some(f) = &self.fwd_escape[idx] {
                    match f.find(&doc[pos..]) {
                        Some(j) => {
                            cache.skipped += j as u64;
                            stats.bytes_skipped += j as u64;
                            pos += j;
                        }
                        None => {
                            cache.skipped += (n - pos) as u64;
                            stats.bytes_skipped += (n - pos) as u64;
                            pos = n;
                            break;
                        }
                    }
                }
            }
            if pos + 4 <= n {
                let prev = cur;
                cur = self.fstep(cur, doc[pos]);
                cur = self.fstep(cur, doc[pos + 1]);
                cur = self.fstep(cur, doc[pos + 2]);
                cur = self.fstep(cur, doc[pos + 3]);
                pos += 4;
                streak = if cur == prev { streak + 4 } else { 0 };
            } else {
                let prev = cur;
                cur = self.fstep(cur, doc[pos]);
                pos += 1;
                streak = if cur == prev { streak + 1 } else { 0 };
            }
        }
        let accepted = pos >= n && cur & FLAG != 0;
        if !accepted && !self.gate.is_transparent() {
            stats.false_candidates += 1;
        }
        accepted
    }

    fn take_cache(&self) -> DenseCache {
        self.caches
            .lock()
            .expect("cache pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn return_cache(&self, cache: DenseCache) {
        self.caches.lock().expect("cache pool poisoned").push(cache);
    }
}

/// Viability view over the AOT backward table's membership bitsets.
struct AotViable<'a> {
    /// Backward state index per document position.
    ids: &'a [u32],
    /// Flattened membership bitsets, `words` per state.
    sets: &'a [u64],
    words: usize,
    /// Per-eVSA-state scan-skip tables.
    scan: &'a [Option<ScanSkip>],
    /// `log2(stride)` — the scan tables share the premultiplied layout.
    shift: u32,
    /// Byte → class.
    cls: &'a [u16; 256],
}

impl ViableSource for AotViable<'_> {
    #[inline]
    fn viable(&self, pos: usize, q: StateId) -> bool {
        let q = q as usize;
        let base = self.ids[pos] as usize * self.words;
        self.sets[base + (q >> 6)] & (1u64 << (q & 63)) != 0
    }

    #[inline]
    fn scan_skip(&self, doc: &[u8], mut pos: usize, q: StateId) -> usize {
        let Some(skip) = self.scan[q as usize].as_ref() else {
            return pos;
        };
        // One load + bit test per crossed byte, against the per-byte
        // frame push/pop + edge iteration this replaces.
        while pos < doc.len() {
            let idx =
                ((self.ids[pos + 1] as usize) << self.shift) | self.cls[doc[pos] as usize] as usize;
            if skip.ok[idx >> 6] & (1u64 << (idx & 63)) == 0 {
                break;
            }
            pos += 1;
        }
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{accepts_evsa, eval_evsa};
    use crate::rgx::Rgx;

    fn compile(pattern: &str) -> Arc<EVsa> {
        let vsa = Rgx::parse(pattern).unwrap().to_vsa().unwrap();
        Arc::new(EVsa::from_functional(&vsa.functionalize()))
    }

    fn aot(pattern: &str) -> AotEvsa {
        AotEvsa::compile(compile(pattern), AotConfig::default()).expect("fits default budget")
    }

    #[test]
    fn eval_matches_nfa_engine() {
        for (pat, docs) in [
            (
                ".*x{a+}.*",
                vec![b"aabaa".to_vec(), b"".to_vec(), b"bbb".to_vec()],
            ),
            (
                "x{a*}y{b*}",
                vec![b"aabb".to_vec(), b"ab".to_vec(), b"ba".to_vec()],
            ),
            ("(a|b)*x{ab}(a|b)*", vec![b"abab".to_vec()]),
            (".*x{}.*", vec![b"ab".to_vec()]),
            ("x{[^.]+}(\\..*)?", vec![b"ab.cd".to_vec()]),
            ("x{ab}b|a(x{bb})", vec![b"abb".to_vec(), b"ab".to_vec()]),
        ] {
            let e = compile(pat);
            let a = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
            for doc in docs {
                assert_eq!(a.eval(&doc), eval_evsa(&e, &doc), "pattern {pat}");
                assert_eq!(
                    a.accepts(&doc),
                    !eval_evsa(&e, &doc).is_empty(),
                    "pattern {pat}"
                );
            }
        }
    }

    #[test]
    fn accepts_matches_nfa_engine() {
        let e = compile("a+b");
        let a = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        for doc in [b"aab".as_slice(), b"ab c", b"", b"b", b"aaab"] {
            assert_eq!(a.accepts(doc), accepts_evsa(&e, doc), "doc {doc:?}");
        }
    }

    #[test]
    fn long_unrolled_scan_is_exact() {
        // Lengths around the 4-byte unroll boundary and beyond.
        let e = compile(".*x{a+}.*");
        let a = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        for len in [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 63, 64, 65, 255] {
            let mut doc = vec![b'b'; len];
            if len > 2 {
                doc[len / 2] = b'a';
                doc[len - 1] = b'a';
            }
            assert_eq!(a.eval(&doc), eval_evsa(&e, &doc), "len {len}");
            assert_eq!(a.accepts(&doc), accepts_evsa(&e, &doc), "len {len}");
        }
    }

    #[test]
    fn skip_loop_is_exact_and_skips() {
        let e = compile(".*x{q+}.*");
        let a = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        let mut doc = vec![b'a'; 2048];
        doc[777] = b'q';
        let mut cache = DenseCache::default();
        let mut stats = PrefilterStats::default();
        assert_eq!(
            a.eval_with(&doc, &mut cache, &mut stats),
            eval_evsa(&e, &doc)
        );
        assert!(
            cache.skipped_bytes() > 1000,
            "expected a large jump, got {}",
            cache.skipped_bytes()
        );
        // Matchless and tiny documents behave identically too.
        for doc in [vec![b'a'; 100], vec![], vec![b'q']] {
            assert_eq!(
                a.eval_with(&doc, &mut cache, &mut stats),
                eval_evsa(&e, &doc)
            );
        }
    }

    #[test]
    fn scan_skip_is_exact_on_sparse_and_dense_matches() {
        // Token-boundary extractor with `.*` contexts: the scanning
        // state gets a precompiled scan-skip table, and the enumeration
        // must still produce the exact NFA relation whether matches are
        // sparse (long skips), dense (skips interleave with branches),
        // or sitting on the document edges.
        let e = compile("(.*[^ab]|)x{a+b}([^ab].*|)");
        let a = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        assert!(
            a.scan.iter().any(Option::is_some),
            "the .* context must yield a scan-skip table"
        );
        let mut sparse = vec![b'.'; 4096];
        sparse[1000] = b'a';
        sparse[1001] = b'b';
        sparse[4094] = b'a';
        sparse[4095] = b'b';
        let dense_doc: Vec<u8> = b"aab ab .ab aaab b a ab".repeat(40);
        let edges: Vec<u8> = b"ab..ab".to_vec();
        for doc in [&sparse, &dense_doc, &edges, &Vec::new()] {
            assert_eq!(a.eval(doc), eval_evsa(&e, doc));
        }
    }

    #[test]
    fn gate_rejects_and_counts() {
        // Required literal 'q': an all-'a' document is gate-rejected
        // without a single table step.
        let a = aot(".*x{q+}.*");
        assert!(!a.gate().is_transparent());
        let mut cache = DenseCache::default();
        let mut stats = PrefilterStats::default();
        let doc = vec![b'a'; 512];
        assert!(a.eval_with(&doc, &mut cache, &mut stats).is_empty());
        assert_eq!(stats.bytes_skipped, 512);
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn budget_fallback_boundary() {
        // budget-1 / budget / budget+1 around the automaton's own raw
        // determinization size pins the AOT→dense fallback edge.
        let e = compile("(a|b)*x{ab}(a|b)*");
        let full = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        let (rf, rb) = full.determinized_states();
        let need = rf.max(rb);
        assert!(need > 1, "test automaton must determinize to > 1 state");
        let cfg = |max_states| AotConfig {
            max_states,
            ..AotConfig::default()
        };
        assert!(
            AotEvsa::compile(e.clone(), cfg(need - 1)).is_none(),
            "budget-1 must fall back"
        );
        let at = AotEvsa::compile(e.clone(), cfg(need)).expect("budget exactly fits");
        let above = AotEvsa::compile(e.clone(), cfg(need + 1)).expect("budget+1 fits");
        for doc in [b"abab".as_slice(), b"", b"bb"] {
            assert_eq!(at.eval(doc), eval_evsa(&e, doc));
            assert_eq!(above.eval(doc), eval_evsa(&e, doc));
        }
    }

    #[test]
    fn zero_and_empty_automata_fall_back() {
        // An empty-language automaton either compiles (and then agrees
        // with the reference evaluator everywhere) or falls back.
        let v = crate::vsa::Vsa::new(crate::vars::VarTable::empty());
        let e = Arc::new(EVsa::from_functional(&v));
        if let Some(a) = AotEvsa::compile(e.clone(), AotConfig::default()) {
            for doc in [b"".as_slice(), b"ab"] {
                assert_eq!(a.eval(doc), eval_evsa(&e, doc));
                assert!(!a.accepts(doc));
            }
        }
        let e = compile("x{a}");
        assert!(AotEvsa::compile(
            e,
            AotConfig {
                max_states: 0,
                ..AotConfig::default()
            }
        )
        .is_none());
    }

    #[test]
    fn packing_roundtrips_at_u16_boundary() {
        // Every (index, shift) pair the packing budget admits must
        // round-trip through the premultiplied representation with the
        // flag bit intact — including the extreme index for each stride.
        for shift in 0..=8u32 {
            let stride = 1usize << shift;
            let max_index = (1usize << 15) / stride - 1;
            for index in [0, 1, max_index / 2, max_index] {
                for flag in [false, true] {
                    let id = pack(index, shift, flag);
                    assert_eq!(unpack(id, shift), index, "shift {shift} index {index}");
                    assert_eq!(id & FLAG != 0, flag);
                    // The premultiplied id stays below bit 15: masking
                    // off the flag recovers the shifted index exactly.
                    assert_eq!((id & MASK) as usize, index << shift);
                }
            }
        }
    }

    #[test]
    fn packing_budget_caps_state_count() {
        // With the widest possible stride the cap is 2^15 / stride; the
        // compile-time budget must never admit more states than pack().
        for nc in [1usize, 2, 3, 5, 8, 17, 200, 256] {
            let stride = nc.next_power_of_two();
            let cap = (1usize << 15) / stride;
            let shift = stride.trailing_zeros();
            // The largest admissible index packs; one past it would not.
            assert!(((cap - 1) << shift) < (1 << 15));
            assert!((cap << shift) >= (1 << 15));
        }
    }

    #[test]
    fn classes_shared_partition_matches_own() {
        use splitc_automata::classes::ByteClassBuilder;
        let e = compile(".*x{a+}.*");
        let own = AotEvsa::compile(e.clone(), AotConfig::default()).unwrap();
        let mut builder = ByteClassBuilder::new();
        for m in e.byte_masks() {
            builder.add_set(|b| m.contains(b));
        }
        builder.add_set(|b: u8| b.is_ascii_digit());
        let shared =
            AotEvsa::compile_with_classes(e.clone(), AotConfig::default(), builder.build())
                .unwrap();
        for doc in [b"aabaa".as_slice(), b"", b"q9a", b"bbb"] {
            assert_eq!(shared.eval(doc), own.eval(doc));
            assert_eq!(shared.accepts(doc), own.accepts(doc));
        }
    }

    #[test]
    fn minimization_shrinks_forward_table() {
        // The forward DFA of a union of redundant branches minimizes
        // below its raw determinization; the backward table must stay
        // at the raw size (its states are observable).
        let e = compile("x{a|aa|aaa}");
        let a = AotEvsa::compile(e, AotConfig::default()).unwrap();
        let (raw_fwd, raw_bwd) = a.determinized_states();
        let (packed_fwd, packed_bwd) = a.packed_states();
        assert_eq!(packed_bwd, raw_bwd);
        // packed_fwd includes the explicit dead sink.
        assert!(packed_fwd <= raw_fwd + 1);
        assert!(a.table_bytes() > 0);
    }
}
