//! Span variables and variable operations (paper §2, §4).
//!
//! A spanner is associated with a finite set `V ⊆ SVars` of variables.
//! Ref-words extend documents with the *variable operations*
//! `Γ_V = {x⊢, ⊣x | x ∈ V}`. Deterministic VSet-automata (paper §4.2)
//! additionally fix a total order `≺` on `Γ_V` with `x⊢ ≺ ⊣x`; we order
//! operations by `(variable, kind)` with `Open < Close`, where variables
//! compare by **name** — this makes `≺` canonical across spanners that are
//! later combined.

use std::fmt;
use std::sync::Arc;

/// Index of a variable within a [`VarTable`] (dense, name-sorted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A variable operation: `x⊢` (open) or `⊣x` (close).
///
/// `Ord` implements the paper's total order `≺`: operations compare by
/// `(variable, kind)` with `Open < Close`, hence `x⊢ ≺ ⊣x` for every `x`
/// as required by determinism condition (2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VarOp {
    /// `x⊢`: opening of the variable.
    Open(VarId),
    /// `⊣x`: closing of the variable.
    Close(VarId),
}

// NOTE on derive order: `Open(x) < Close(y)` whenever x == y because the
// derived enum order compares the discriminant first. For x != y we want
// comparison by variable first; the derived order compares Open(x) with
// Open(y) by payload but Open(x) < Close(y) for ALL x, y. Any fixed total
// order with x⊢ ≺ ⊣x per variable is a valid choice of ≺ (the paper only
// fixes one such order), and "all opens before all closes, each group by
// variable" satisfies that — see `order_property` test.

impl VarOp {
    /// The variable this operation refers to.
    #[inline]
    pub fn var(self) -> VarId {
        match self {
            VarOp::Open(v) | VarOp::Close(v) => v,
        }
    }

    /// Whether this is an opening operation.
    #[inline]
    pub fn is_open(self) -> bool {
        matches!(self, VarOp::Open(_))
    }

    /// Dense index of the operation within `Γ_V` for a table of `n`
    /// variables: opens occupy `0..n`, closes `n..2n`.
    #[inline]
    pub fn dense_index(self, num_vars: usize) -> usize {
        match self {
            VarOp::Open(v) => v.index(),
            VarOp::Close(v) => num_vars + v.index(),
        }
    }
}

/// An immutable, name-sorted table of span variables.
///
/// Variable identity is the **name**; `VarId`s are dense indices into the
/// sorted name list, so the order on `VarId` agrees with the order on
/// names. Tables are cheap to clone (`Arc` inside wrappers is used where
/// sharing matters).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarTable {
    names: Arc<[String]>,
}

impl VarTable {
    /// Builds a table from names; duplicates are rejected.
    pub fn new<I, S>(names: I) -> Result<VarTable, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut v: Vec<String> = names.into_iter().map(Into::into).collect();
        v.sort();
        for w in v.windows(2) {
            if w[0] == w[1] {
                return Err(format!("duplicate variable name: {}", w[0]));
            }
        }
        Ok(VarTable { names: v.into() })
    }

    /// The empty variable set (Boolean spanners).
    pub fn empty() -> VarTable {
        VarTable {
            names: Vec::new().into(),
        }
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table has no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Name of a variable.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// Looks a variable up by name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.names
            .binary_search_by(|n| n.as_str().cmp(name))
            .ok()
            .map(|i| VarId(i as u32))
    }

    /// All variable ids in order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32).map(VarId)
    }

    /// All names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Merges two tables; returns the merged table and remappings for each
    /// input (`old VarId -> new VarId`).
    pub fn merge(&self, other: &VarTable) -> (VarTable, VarMap, VarMap) {
        let mut all: Vec<String> = self.names.iter().cloned().collect();
        all.extend(other.names.iter().cloned());
        all.sort();
        all.dedup();
        let merged = VarTable { names: all.into() };
        let map_a = VarMap::build(self, &merged);
        let map_b = VarMap::build(other, &merged);
        (merged, map_a, map_b)
    }

    /// Table restricted to a subset of variables (projection).
    pub fn project(&self, keep: &[VarId]) -> (VarTable, VarMap) {
        let names: Vec<String> = keep.iter().map(|v| self.names[v.index()].clone()).collect();
        let table = VarTable::new(names).expect("subset of unique names");
        let map = VarMap::build_partial(self, &table);
        (table, map)
    }

    /// Shared variables of two tables (by name), as ids in `self`.
    pub fn shared(&self, other: &VarTable) -> Vec<VarId> {
        self.iter()
            .filter(|v| other.lookup(self.name(*v)).is_some())
            .collect()
    }
}

/// A mapping from variable ids of one table to (optionally) another.
#[derive(Debug, Clone)]
pub struct VarMap {
    map: Vec<Option<VarId>>,
}

impl VarMap {
    fn build(from: &VarTable, to: &VarTable) -> VarMap {
        VarMap {
            map: from
                .names()
                .iter()
                .map(|n| Some(to.lookup(n).expect("merged table contains name")))
                .collect(),
        }
    }

    fn build_partial(from: &VarTable, to: &VarTable) -> VarMap {
        VarMap {
            map: from.names().iter().map(|n| to.lookup(n)).collect(),
        }
    }

    /// Image of `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<VarId> {
        self.map[v.index()]
    }

    /// Image of an operation, if its variable survives.
    pub fn map_op(&self, op: VarOp) -> Option<VarOp> {
        self.get(op.var()).map(|nv| match op {
            VarOp::Open(_) => VarOp::Open(nv),
            VarOp::Close(_) => VarOp::Close(nv),
        })
    }
}

/// Formats an operation with its table for display.
pub fn display_op(op: VarOp, table: &VarTable) -> String {
    match op {
        VarOp::Open(v) => format!("{}⊢", table.name(v)),
        VarOp::Close(v) => format!("⊣{}", table.name(v)),
    }
}

impl fmt::Display for VarTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_name_sorted() {
        let t = VarTable::new(["y", "x", "z"]).unwrap();
        assert_eq!(t.names(), &["x", "y", "z"]);
        assert_eq!(t.lookup("y"), Some(VarId(1)));
        assert_eq!(t.lookup("w"), None);
        assert_eq!(t.name(VarId(2)), "z");
    }

    #[test]
    fn duplicates_rejected() {
        assert!(VarTable::new(["x", "x"]).is_err());
    }

    #[test]
    fn order_property() {
        // The paper requires x⊢ ≺ ⊣x for every variable.
        let x = VarId(0);
        let y = VarId(1);
        assert!(VarOp::Open(x) < VarOp::Close(x));
        assert!(VarOp::Open(y) < VarOp::Close(y));
        // Our fixed choice: all opens (by var) precede all closes (by var).
        assert!(VarOp::Open(y) < VarOp::Close(x));
        assert!(VarOp::Open(x) < VarOp::Open(y));
        assert!(VarOp::Close(x) < VarOp::Close(y));
    }

    #[test]
    fn merge_and_remap() {
        let a = VarTable::new(["x", "z"]).unwrap();
        let b = VarTable::new(["y", "z"]).unwrap();
        let (m, ma, mb) = a.merge(&b);
        assert_eq!(m.names(), &["x", "y", "z"]);
        assert_eq!(ma.get(VarId(0)), Some(VarId(0))); // x
        assert_eq!(ma.get(VarId(1)), Some(VarId(2))); // z
        assert_eq!(mb.get(VarId(0)), Some(VarId(1))); // y
        assert_eq!(mb.get(VarId(1)), Some(VarId(2))); // z
        assert_eq!(
            mb.map_op(VarOp::Close(VarId(0))),
            Some(VarOp::Close(VarId(1)))
        );
    }

    #[test]
    fn project_drops_vars() {
        let t = VarTable::new(["x", "y", "z"]).unwrap();
        let (p, map) = t.project(&[VarId(0), VarId(2)]);
        assert_eq!(p.names(), &["x", "z"]);
        assert_eq!(map.get(VarId(0)), Some(VarId(0)));
        assert_eq!(map.get(VarId(1)), None);
        assert_eq!(map.get(VarId(2)), Some(VarId(1)));
        assert_eq!(map.map_op(VarOp::Open(VarId(1))), None);
    }

    #[test]
    fn shared_vars() {
        let a = VarTable::new(["x", "y"]).unwrap();
        let b = VarTable::new(["y", "z"]).unwrap();
        let s = a.shared(&b);
        assert_eq!(s, vec![VarId(1)]);
        assert_eq!(a.name(s[0]), "y");
    }

    #[test]
    fn dense_index_layout() {
        assert_eq!(VarOp::Open(VarId(1)).dense_index(3), 1);
        assert_eq!(VarOp::Close(VarId(1)).dense_index(3), 4);
    }
}
