//! Annotated splitters (paper §7.3 and Appendix E).
//!
//! An annotated splitter maps a document to a set of *(key, span)* pairs
//! (key–value pairs in the MapReduce sense); a *key–spanner mapping*
//! assigns a split-spanner `P_S(κ)` to each key, and the composition
//! `P_S ∘ S_K` evaluates `P_S(κ)` on every chunk annotated `κ`.
//!
//! Representation: the paper annotates accepting states with keys
//! (`τ : Q_F → K`); we represent an annotated splitter directly by its
//! *key decomposition* `{S_κ}` — one ordinary splitter per key, where
//! `S_κ(d) = {s | (κ, s) ∈ S_K(d)}` (the paper itself reduces to the
//! `S_κ` in Lemma E.2). The two representations are interconvertible
//! with no blow-up.
//!
//! Implemented results: annotated split-correctness (Theorem E.3,
//! PSPACE), the *highlander* property (disjoint + at most one key per
//! `(d, span)` pair) and the PTIME check for highlander splitters
//! (Theorem E.4), and annotated splittability via per-key canonical
//! split-spanners (Theorem E.7).

use crate::cover::{self, cover_condition_df};
use crate::error::CertError;
use crate::split_correctness::{
    guarded_product_check, split_correct, CounterExample, FastPathError, Verdict,
};
use crate::splittability::canonical_split_spanner;
use splitc_spanner::splitter::{compose, two_run_report, Splitter};
use splitc_spanner::vars::VarTable;
use splitc_spanner::vsa::Vsa;
use std::collections::BTreeMap;

/// An annotated splitter, represented by its key decomposition.
#[derive(Debug, Clone)]
pub struct AnnotatedSplitter {
    keyed: BTreeMap<String, Splitter>,
}

impl AnnotatedSplitter {
    /// Builds an annotated splitter from `(key, splitter)` pairs.
    pub fn new(
        parts: impl IntoIterator<Item = (String, Splitter)>,
    ) -> Result<AnnotatedSplitter, String> {
        let mut keyed = BTreeMap::new();
        for (k, s) in parts {
            if keyed.insert(k.clone(), s).is_some() {
                return Err(format!("duplicate key {k}"));
            }
        }
        if keyed.is_empty() {
            return Err("an annotated splitter needs at least one key".into());
        }
        Ok(AnnotatedSplitter { keyed })
    }

    /// The keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keyed.keys().map(String::as_str)
    }

    /// The splitter `S_κ` of a key.
    pub fn splitter_of(&self, key: &str) -> Option<&Splitter> {
        self.keyed.get(key)
    }

    /// Evaluates: all `(key, span)` pairs on the document.
    pub fn split(&self, doc: &[u8]) -> Vec<(String, splitc_spanner::span::Span)> {
        let mut out = Vec::new();
        for (k, s) in &self.keyed {
            for sp in s.split(doc) {
                out.push((k.clone(), sp));
            }
        }
        out
    }

    /// The unannotated union splitter (forgets keys).
    pub fn union_splitter(&self) -> Splitter {
        let table = VarTable::new(["x"]).expect("single");
        let mut acc: Option<Vsa> = None;
        for s in self.keyed.values() {
            let v = s
                .vsa()
                .replace_var_table(table.clone())
                .expect("splitters are unary");
            acc = Some(match acc {
                None => v,
                Some(a) => a.union(&v).expect("aligned variables"),
            });
        }
        Splitter::new(acc.expect("non-empty")).expect("unary")
    }

    /// The *highlander* property (App. E): the union splitter is
    /// disjoint **and** no `(document, span)` pair carries two different
    /// keys ("there can be only one").
    pub fn is_highlander(&self) -> bool {
        if !self.union_splitter().is_disjoint() {
            return false;
        }
        let compiled: Vec<_> = self.keyed.values().map(|s| s.compile()).collect();
        for i in 0..compiled.len() {
            for j in i + 1..compiled.len() {
                let report = two_run_report(compiled[i].evsa(), compiled[j].evsa());
                if report.equal_spans {
                    return false;
                }
            }
        }
        true
    }
}

/// A key–spanner mapping `P_S : K → spanners` (paper §7.3).
#[derive(Debug, Clone)]
pub struct KeySpannerMapping {
    map: BTreeMap<String, Vsa>,
}

impl KeySpannerMapping {
    /// Builds a mapping; all spanners must share the same variables.
    pub fn new(
        parts: impl IntoIterator<Item = (String, Vsa)>,
    ) -> Result<KeySpannerMapping, String> {
        let map: BTreeMap<String, Vsa> = parts.into_iter().collect();
        if map.is_empty() {
            return Err("a key-spanner mapping needs at least one key".into());
        }
        let names = map.values().next().expect("non-empty").vars().clone();
        for v in map.values() {
            if v.vars().names() != names.names() {
                return Err("all key spanners must share the same variables".into());
            }
        }
        Ok(KeySpannerMapping { map })
    }

    /// The spanner of a key.
    pub fn get(&self, key: &str) -> Option<&Vsa> {
        self.map.get(key)
    }

    /// The keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }
}

/// The composition `P_S ∘ S_K` as a single spanner (Lemma E.2):
/// `⋃_κ π_V ((Σ* · x{P_S(κ)} · Σ*) ⋈ S_κ)` — implemented with the
/// Lemma C.2 composition per key, then union.
pub fn annotated_compose(
    mapping: &KeySpannerMapping,
    sk: &AnnotatedSplitter,
) -> Result<Vsa, String> {
    let mut acc: Option<Vsa> = None;
    for key in sk.keys() {
        let ps = mapping
            .get(key)
            .ok_or_else(|| format!("no spanner for key {key}"))?;
        let s = sk.splitter_of(key).expect("key exists");
        let piece = compose(ps, s);
        acc = Some(match acc {
            None => piece,
            Some(a) => a.union(&piece)?,
        });
    }
    acc.ok_or_else(|| "empty annotated splitter".into())
}

/// Annotated split-correctness (Theorem E.3, PSPACE): is
/// `P = P_S ∘ S_K`?
pub fn annotated_split_correct(
    p: &Vsa,
    mapping: &KeySpannerMapping,
    sk: &AnnotatedSplitter,
) -> Result<Verdict, CertError> {
    let composed = annotated_compose(mapping, sk)?;
    Ok(match splitc_spanner::spanner_equivalent(p, &composed)? {
        splitc_spanner::SpannerCheck::Holds => Verdict::Holds,
        splitc_spanner::SpannerCheck::Counterexample {
            doc,
            tuple,
            left_has_it,
        } => Verdict::Fails(CounterExample {
            doc,
            tuple,
            split: None,
            left_has_it,
            reason: "P and P_S ∘ S_K differ".into(),
        }),
    })
}

/// PTIME annotated split-correctness for deterministic functional
/// automata and a *highlander* annotated splitter (Theorem E.4): the
/// cover condition w.r.t. the union splitter, then one guarded product
/// per key (each `(d, s)` pair has a unique key, so per-key pointwise
/// agreement is the right analogue of Theorem 5.7; the same boundary
/// caveat as [`crate::split_correctness`] applies).
pub fn annotated_split_correct_df(
    p: &Vsa,
    mapping: &KeySpannerMapping,
    sk: &AnnotatedSplitter,
) -> Result<Verdict, CertError> {
    cover::validate_df(p, "P")?;
    for key in sk.keys() {
        let ps = mapping
            .get(key)
            .ok_or_else(|| FastPathError::new(format!("no spanner for key {key}")))?;
        cover::validate_df(ps, "P_S(κ)")?;
        cover::validate_df(sk.splitter_of(key).expect("key").vsa(), "S_κ")?;
    }
    if !sk.is_highlander() {
        return Err(FastPathError::new("annotated splitter is not a highlander splitter").into());
    }
    // Cover condition w.r.t. the (disjoint) union splitter. The union
    // of deterministic splitters is not syntactically deterministic;
    // determinize once (footnote 9 of the paper treats S_K as a plain
    // splitter here).
    let union = sk.union_splitter().determinize();
    match cover_condition_df(p, &union)? {
        Verdict::Holds => {}
        fails => return Ok(fails),
    }
    for key in sk.keys() {
        let ps = mapping.get(key).expect("validated");
        let s = sk.splitter_of(key).expect("key");
        match guarded_product_check(p, ps, s) {
            Verdict::Holds => {}
            fails => return Ok(fails),
        }
    }
    Ok(Verdict::Holds)
}

/// Annotated splittability for highlander splitters (Theorem E.7):
/// builds the canonical key–spanner mapping `κ ↦ P_{S_κ}^can` and checks
/// annotated split-correctness against it.
pub fn annotated_splittable(
    p: &Vsa,
    sk: &AnnotatedSplitter,
) -> Result<AnnotatedSplittability, CertError> {
    if !sk.is_highlander() {
        return Err(CertError::UnsupportedSplitter(
            "annotated splittability requires a highlander splitter".into(),
        ));
    }
    let mut parts = Vec::new();
    for key in sk.keys() {
        let s = sk.splitter_of(key).expect("key");
        parts.push((key.to_string(), canonical_split_spanner(p, s)));
    }
    let mapping = KeySpannerMapping::new(parts)?;
    Ok(match annotated_split_correct(p, &mapping, sk)? {
        Verdict::Holds => AnnotatedSplittability::Splittable { witness: mapping },
        Verdict::Fails(cex) => AnnotatedSplittability::NotSplittable(cex),
    })
}

/// Result of an annotated splittability check.
#[derive(Debug, Clone)]
pub enum AnnotatedSplittability {
    /// Splittable; the canonical key–spanner mapping witnesses it.
    Splittable {
        /// Canonical mapping `κ ↦ P_{S_κ}^can`.
        witness: KeySpannerMapping,
    },
    /// Not splittable.
    NotSplittable(CounterExample),
}

impl AnnotatedSplittability {
    /// Whether splittable.
    pub fn is_splittable(&self) -> bool {
        matches!(self, AnnotatedSplittability::Splittable { .. })
    }
}

/// Convenience check that a plain split-correctness instance embeds into
/// the annotated framework with a single key (sanity bridge used by
/// tests).
pub fn single_key(p: &Vsa, ps: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    let sk = AnnotatedSplitter::new([("only".to_string(), s.clone())])?;
    let mapping = KeySpannerMapping::new([("only".to_string(), ps.clone())])?;
    let annotated = annotated_split_correct(p, &mapping, &sk)?;
    let plain = split_correct(p, ps, s)?;
    debug_assert_eq!(annotated.holds(), plain.holds());
    Ok(annotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    /// GET/POST request log: messages split by blank lines, annotated by
    /// their method (the paper's §7.3 example).
    fn get_post_splitter() -> AnnotatedSplitter {
        // GET messages: start with "g "; POST messages: start with "p ".
        let get = Splitter::parse("(.*\\n\\n|)x{g [a-z]+}(\\n\\n.*|)").unwrap();
        let post = Splitter::parse("(.*\\n\\n|)x{p [a-z]+}(\\n\\n.*|)").unwrap();
        AnnotatedSplitter::new([("get".to_string(), get), ("post".to_string(), post)]).unwrap()
    }

    #[test]
    fn split_produces_keyed_spans() {
        let sk = get_post_splitter();
        let doc = b"g alpha\n\np beta";
        let pairs = sk.split(doc);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "get");
        assert_eq!(pairs[0].1.slice(doc), b"g alpha");
        assert_eq!(pairs[1].0, "post");
        assert_eq!(pairs[1].1.slice(doc), b"p beta");
    }

    #[test]
    fn highlander_detection() {
        let sk = get_post_splitter();
        assert!(sk.is_highlander());
        // Same span reachable under two keys -> not highlander.
        let a = Splitter::parse("x{[a-z]+}").unwrap();
        let b = Splitter::parse("x{[a-m]+}").unwrap();
        let sk2 = AnnotatedSplitter::new([("k1".to_string(), a), ("k2".to_string(), b)]).unwrap();
        assert!(!sk2.is_highlander());
        // Disjoint keys but overlapping union -> not highlander either.
        let c = Splitter::parse("x{ab}b").unwrap();
        let d = Splitter::parse("a(x{bb})").unwrap();
        let sk3 = AnnotatedSplitter::new([("k1".to_string(), c), ("k2".to_string(), d)]).unwrap();
        assert!(!sk3.is_highlander());
    }

    #[test]
    fn annotated_composition_routes_by_key() {
        let sk = get_post_splitter();
        // Different extraction per method: GET -> capture the path word,
        // POST -> capture the method letter.
        let mapping = KeySpannerMapping::new([
            ("get".to_string(), vsa("g y{[a-z]+}")),
            ("post".to_string(), vsa("y{p} [a-z]+")),
        ])
        .unwrap();
        let composed = annotated_compose(&mapping, &sk).unwrap();
        let doc = b"g alpha\n\np beta";
        let rel = eval(&composed, doc);
        let spans: Vec<_> = rel
            .iter()
            .map(|t| t.get(composed.vars().lookup("y").unwrap()))
            .collect();
        // GET chunk: y = "alpha"; POST chunk: y = "p".
        assert!(spans.contains(&splitc_spanner::span::Span::new(2, 7)));
        assert!(spans.contains(&splitc_spanner::span::Span::new(9, 10)));
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn annotated_split_correctness_positive_and_negative() {
        let sk = get_post_splitter();
        let mapping = KeySpannerMapping::new([
            ("get".to_string(), vsa("g y{[a-z]+}")),
            ("post".to_string(), vsa("p y{[a-z]+}")),
        ])
        .unwrap();
        // P extracts the argument word of every message, method-blind.
        let p = vsa("(.*\\n\\n|)[gp] y{[a-z]+}(\\n\\n.*|)");
        assert!(annotated_split_correct(&p, &mapping, &sk).unwrap().holds());
        // Routing the wrong spanner to "post" breaks it.
        let bad = KeySpannerMapping::new([
            ("get".to_string(), vsa("g y{[a-z]+}")),
            ("post".to_string(), vsa("y{p} [a-z]+")),
        ])
        .unwrap();
        assert!(!annotated_split_correct(&p, &bad, &sk).unwrap().holds());
    }

    #[test]
    fn fast_path_agrees() {
        let raw = get_post_splitter();
        let sk = AnnotatedSplitter::new(
            raw.keys()
                .map(|k| (k.to_string(), raw.splitter_of(k).unwrap().determinize())),
        )
        .unwrap();
        let mapping = KeySpannerMapping::new([
            ("get".to_string(), vsa("g y{[a-z]+}").determinize()),
            ("post".to_string(), vsa("p y{[a-z]+}").determinize()),
        ])
        .unwrap();
        let p = vsa("(.*\\n\\n|)[gp] y{[a-z]+}(\\n\\n.*|)").determinize();
        let slow = annotated_split_correct(&p, &mapping, &sk).unwrap().holds();
        let fast = annotated_split_correct_df(&p, &mapping, &sk)
            .unwrap()
            .holds();
        assert_eq!(slow, fast);
    }

    #[test]
    fn annotated_splittability_builds_canonical_mapping() {
        let sk = get_post_splitter();
        let p = vsa("(.*\\n\\n|)[gp] y{[a-z]+}(\\n\\n.*|)");
        match annotated_splittable(&p, &sk).unwrap() {
            AnnotatedSplittability::Splittable { witness } => {
                // The canonical mapping reproduces P.
                assert!(annotated_split_correct(&p, &witness, &sk).unwrap().holds());
            }
            AnnotatedSplittability::NotSplittable(cex) => {
                panic!("should be annotated-splittable: {cex}")
            }
        }
    }

    #[test]
    fn single_key_bridges_to_plain() {
        let p = vsa(".*y{a+}.*");
        let s = splitter::sentences();
        assert!(single_key(&p, &p, &s).unwrap().holds());
    }
}
