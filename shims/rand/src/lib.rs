//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements exactly the surface this workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], SplitMix64-based) and the
//! [`Rng`] extension methods `gen` / `gen_range` / `gen_bool`. Sequences
//! are deterministic per seed but do **not** match the real `rand`
//! crate's output; everything in this workspace that consumes
//! randomness only relies on determinism, not on specific streams.

/// A source of raw 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from raw bits (the real crate's
/// `Standard` distribution, restricted to the types used in-tree).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Integer types uniformly samplable by [`Rng::gen_range`] (the real
/// crate's `SampleUniform`, restricted to a u64-offset representation).
pub trait SampleUniform: Copy + PartialOrd {
    /// The value as raw bits (sign-extended for signed types, so
    /// subtraction of bit patterns yields the unsigned span).
    fn to_bits(self) -> u64;
    /// `base + offset` within a range already known to be in bounds.
    fn from_offset(base: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_bits(self) -> u64 {
                self as u64
            }
            fn from_offset(base: Self, offset: u64) -> Self {
                base.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end.to_bits().wrapping_sub(self.start.to_bits());
        T::from_offset(self.start, rng.next_u64() % span)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi.to_bits().wrapping_sub(lo.to_bits()).wrapping_add(1);
        if span == 0 {
            // Full-width range: every offset is valid.
            return T::from_offset(lo, rng.next_u64());
        }
        T::from_offset(lo, rng.next_u64() % span)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` (the real crate's `Standard`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(100..1_000_000);
            assert!((100..1_000_000).contains(&w));
            let x: u8 = rng.gen_range(0..=255);
            let _ = x;
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05, "roughly uniform");
    }
}
