//! A small hand-rolled JSON codec.
//!
//! The container this repository builds in has no crates.io access, so
//! the wire format is implemented here rather than pulled from `serde`:
//! a dynamically-typed [`Json`] value, a recursive-descent parser, and
//! a deterministic serializer. Objects preserve insertion order (they
//! are association vectors, not hash maps), so serialization is stable
//! — the differential harness in `scripts/server_smoke.sh` compares
//! server output byte-for-byte against an offline run.
//!
//! Numbers are `f64`. That is exact for every integer the protocol
//! carries (span offsets, counters up to 2^53); the 64-bit content
//! hashes used as registry ids are therefore transported as 16-digit
//! hex *strings*, never as numbers.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (serialized via the `Display` impl; integers print
    /// without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number from anything that widens to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects
    /// fractional and negative numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The ordered key/value pairs, if this is an object. The request
    /// validator walks these to reject unknown fields with a typed 400.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Serializes compactly (no whitespace), with strings escaped per
    /// RFC 8259 and integral numbers printed without a fraction.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: the protocol needs 5 levels; 64 rejects
/// pathological inputs before they overflow the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn parses_and_serializes_the_protocol_shapes() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip(" true "), "true");
        assert_eq!(roundtrip("[1, 2.5, -3]"), "[1,2.5,-3]");
        assert_eq!(
            roundtrip(r#"{"pattern": ".*x{a+}.*", "docs": ["a b", ""]}"#),
            r#"{"pattern":".*x{a+}.*","docs":["a b",""]}"#
        );
        // Key order is preserved, not sorted.
        assert_eq!(roundtrip(r#"{"b":1,"a":2}"#), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        // Serializer re-escapes the mandatory set.
        assert_eq!(v.to_string(), "\"a\\\"b\\\\c\\nd\u{41}é\"");
        // Surrogate pair.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        // Control characters serialize as \u escapes and reparse.
        let s = Json::Str("\u{1}".into()).to_string();
        assert_eq!(s, r#""\u0001""#);
        assert_eq!(Json::parse(&s).unwrap().as_str().unwrap(), "\u{1}");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "[1] x",
            "\"\\q\"",
            "\"",
            "{",
            "nulll",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1], "f": 1.5}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None, "fractional");
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.as_obj().unwrap().len(), 5, "ordered pairs");
        assert!(v.get("a").unwrap().as_obj().is_none(), "array is not obj");
        assert!(v.get("missing").is_none());
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None, "negative");
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::num(1234u32).to_string(), "1234");
        assert_eq!(Json::num(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(1e18).to_string(), "1000000000000000000");
    }
}
