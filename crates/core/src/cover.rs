//! The cover condition (paper §5.1.2).
//!
//! `P` and `S` satisfy the *cover condition* when every output tuple of
//! `P` on any document is covered by (contained in) some split of `S` on
//! that document (Definition 5.2). It is necessary for splittability
//! (Lemma 5.3).
//!
//! * [`cover_condition`] — the general check (Lemma 5.4): the condition
//!   holds iff `P ⊆ P_V ∘ S` where `P_V` is the universal spanner over
//!   `SVars(P)`. PSPACE-complete; implemented via the spanner-containment
//!   engine.
//! * [`cover_condition_df`] — the polynomial-time check for deterministic
//!   functional automata with a disjoint splitter (Lemma 5.6): reduces to
//!   containment of *unambiguous* automata `A_P ⊆ A_S` over a bit-marked
//!   alphabet, decided by accepting-path counting (Stearns–Hunt).

use crate::error::CertError;
use crate::split_correctness::{CounterExample, FastPathError, Verdict};
use splitc_automata::nfa::{Nfa, StateId, Sym};
use splitc_automata::ops::{self, Containment};
use splitc_automata::unambiguous;
use splitc_spanner::byteset::ByteSet;
use splitc_spanner::equiv::SpannerCheck;
use splitc_spanner::ext::{ExtAlphabet, ExtSym};
use splitc_spanner::splitter::{compose, Splitter};
use splitc_spanner::tuple::SpanTuple;
use splitc_spanner::vars::{VarId, VarOp};
use splitc_spanner::vsa::{Label, VarStatus, Vsa};

/// The universal spanner `P_V`: on every document it outputs **every**
/// possible `(V, d)`-tuple (used in the Lemma 5.4 reduction).
pub fn universal_spanner(vars: &splitc_spanner::vars::VarTable) -> Vsa {
    let mut v = Vsa::new(vars.clone());
    v.set_final(0, true);
    v.add_transition(0, Label::Bytes(ByteSet::FULL), 0);
    for var in vars.iter() {
        v.add_transition(0, Label::Op(VarOp::Open(var)), 0);
        v.add_transition(0, Label::Op(VarOp::Close(var)), 0);
    }
    v
}

/// General cover-condition check (Lemma 5.4): `P ⊆ P_V ∘ S`.
/// PSPACE-complete for the general spanner classes.
pub fn cover_condition(p: &Vsa, s: &Splitter) -> Verdict {
    let pv = universal_spanner(p.vars());
    let composed = compose(&pv, s);
    match splitc_spanner::spanner_contains(p, &composed)
        .expect("P_V shares P's variables by construction")
    {
        SpannerCheck::Holds => Verdict::Holds,
        SpannerCheck::Counterexample { doc, tuple, .. } => Verdict::Fails(CounterExample {
            doc,
            tuple,
            split: None,
            left_has_it: true,
            reason: "cover condition violated: no split covers this tuple".into(),
        }),
    }
}

/// Polynomial-time cover-condition check for deterministic functional
/// VSet-automata and disjoint splitters (Lemma 5.6).
///
/// Constructs the bit-marked automata `A_P` (ref-words of `P` with the
/// operation region flagged) and `A_S` (the same words whose flagged
/// region fits inside some split of `S`) and decides `L(A_P) ⊆ L(A_S)`
/// by unambiguous-automaton containment. If the construction turns out
/// ambiguous (possible only in boundary corner cases involving empty
/// spans at split borders), falls back to classical containment for
/// exactness.
pub fn cover_condition_df(p: &Vsa, s: &Splitter) -> Result<Verdict, CertError> {
    validate_df(p, "P")?;
    validate_df(s.vsa(), "S")?;
    if !s.is_disjoint() {
        return Err(FastPathError::new("splitter is not disjoint").into());
    }
    Ok(cover_condition_df_prechecked(p, s))
}

/// [`cover_condition_df`] minus the precondition validation — for
/// callers that have already established determinism, functionality,
/// and disjointness (the split-correctness fast path validates the
/// whole triple once; the batch certifier validates per batch).
pub(crate) fn cover_condition_df_prechecked(p: &Vsa, s: &Splitter) -> Verdict {
    let p = p.trim();
    let s_vsa = s.vsa().trim();
    let mut masks = p.byte_masks();
    masks.extend(s_vsa.byte_masks());
    let ext = ExtAlphabet::from_masks(p.vars().clone(), &masks);

    if p.vars().is_empty() {
        // Boolean spanner: the empty tuple is covered by any split, so
        // the condition is "wherever P outputs, S outputs": L_P ⊆ L_{S≠∅}.
        return boolean_cover(&p, &s_vsa, &ext);
    }

    let ap = build_ap(&p, &ext);
    let as_ = build_as(&s_vsa, &ext, p.vars().len());

    let exact = |ap: &Nfa, as_: &Nfa| -> Verdict {
        match ops::contains(ap, as_) {
            Containment::Contained => Verdict::Holds,
            Containment::Counterexample(w) => Verdict::Fails(decode_marked_witness(&ext, &w)),
        }
    };

    if unambiguous::is_unambiguous(&ap) && unambiguous::is_unambiguous(&as_) {
        if unambiguous::ufa_contains_unchecked(&ap, &as_) {
            Verdict::Holds
        } else {
            // Produce a witness via the classical procedure (only on
            // failure; the common case stays polynomial).
            exact(&ap, &as_)
        }
    } else {
        exact(&ap, &as_)
    }
}

pub(crate) fn validate_df(vsa: &Vsa, who: &str) -> Result<(), FastPathError> {
    if !vsa.is_functional() {
        return Err(FastPathError::new(format!("{who} is not functional")));
    }
    if !vsa.is_deterministic() {
        return Err(FastPathError::new(format!(
            "{who} is not deterministic (conditions 1-2)"
        )));
    }
    Ok(())
}

/// Boolean (0-ary) case: `clr(Ref(P)) ⊆ clr(Ref(S))`.
fn boolean_cover(p: &Vsa, s_vsa: &Vsa, ext: &ExtAlphabet) -> Verdict {
    let lp = byte_language(p, ext);
    let ls = byte_language(s_vsa, ext);
    match ops::contains(&lp, &ls) {
        Containment::Contained => Verdict::Holds,
        Containment::Counterexample(w) => {
            let doc: Vec<u8> = w
                .iter()
                .filter_map(|&sym| ext.class_representative(sym))
                .collect();
            Verdict::Fails(CounterExample {
                doc,
                tuple: SpanTuple::unit(),
                split: None,
                left_has_it: true,
                reason: "cover condition violated: P outputs on a document where S \
                         produces no split"
                    .into(),
            })
        }
    }
}

/// The byte language `clr(Ref(A))`: operations become ε.
fn byte_language(vsa: &Vsa, ext: &ExtAlphabet) -> Nfa {
    let f = if vsa.is_functional() {
        vsa.trim()
    } else {
        vsa.functionalize()
    };
    let mut nfa = Nfa::new(ext.alphabet_size());
    for _ in 0..f.num_states() {
        nfa.add_state();
    }
    nfa.add_start(f.start());
    for q in 0..f.num_states() as StateId {
        nfa.set_final(q, f.is_final(q));
        for &(l, r) in f.transitions_from(q) {
            match l {
                Label::Eps | Label::Op(_) => nfa.add_eps(q, r),
                Label::Bytes(m) => {
                    for sym in ext.class_syms(&m) {
                        nfa.add_transition(q, sym, r);
                    }
                }
            }
        }
    }
    nfa
}

/// Pair-alphabet symbol: extended symbol × bit. Layout: `2·e + bit`.
fn pair_sym(ext_sym: Sym, bit: bool) -> Sym {
    Sym(ext_sym.0 * 2 + bit as u32)
}

fn unpair(sym: Sym) -> (Sym, bool) {
    (Sym(sym.0 / 2), sym.0 % 2 == 1)
}

/// Builds `A_P` over the pair alphabet (Lemma 5.6, appendix
/// construction): accepts `(σ₁,i₁)⋯(σₙ,iₙ)` where `σ₁⋯σₙ ∈ Ref(P)` and
/// the bit sequence `0*1+0*` marks the region from the first to the last
/// variable operation.
fn build_ap(p: &Vsa, ext: &ExtAlphabet) -> Nfa {
    let configs = p
        .unique_configs()
        .expect("trimmed deterministic functional automaton has unique configs");
    let nv = p.vars().len();
    let phase = |q: StateId| -> u8 {
        let c = configs[q as usize];
        let mut opened = false;
        let mut all_closed = true;
        for i in 0..nv {
            match c.get(VarId(i as u32)) {
                VarStatus::Waiting => all_closed = false,
                VarStatus::Open => {
                    opened = true;
                    all_closed = false;
                }
                VarStatus::Closed => opened = true,
            }
        }
        if !opened {
            0 // pre
        } else if all_closed {
            2 // post
        } else {
            1 // mid
        }
    };

    let n = p.num_states();
    let mut nfa = Nfa::new(ext.alphabet_size() * 2);
    // Layout: state q in phase k -> NFA state 3q + k.
    for _ in 0..3 * n {
        nfa.add_state();
    }
    let id = |q: StateId, k: u8| -> StateId { 3 * q + k as StateId };
    nfa.add_start(id(p.start(), 0));
    for q in 0..n as StateId {
        if p.is_final(q) {
            // Functional: finals are post states; accept in phase 3
            // (index 2). A final pre state can only happen for V = ∅,
            // excluded by the caller.
            nfa.set_final(id(q, 2), true);
        }
        for &(l, r) in p.transitions_from(q) {
            match l {
                Label::Eps => unreachable!("deterministic automata are ε-free"),
                Label::Bytes(m) => {
                    for cs in ext.class_syms(&m) {
                        match phase(q) {
                            0 => nfa.add_transition(id(q, 0), pair_sym(cs, false), id(r, 0)),
                            1 => nfa.add_transition(id(q, 1), pair_sym(cs, true), id(r, 1)),
                            _ => nfa.add_transition(id(q, 2), pair_sym(cs, false), id(r, 2)),
                        }
                    }
                }
                Label::Op(op) => {
                    let sym = pair_sym(ext.op_sym(op), true);
                    let from_phase = match phase(q) {
                        0 => 0,
                        _ => 1,
                    };
                    let to_phase = match phase(r) {
                        2 => 2,
                        _ => 1,
                    };
                    nfa.add_transition(id(q, from_phase), sym, id(r, to_phase));
                }
            }
        }
    }
    nfa
}

/// Builds `A_S` over the pair alphabet: accepts the words of `A_P` whose
/// 1-marked region lies inside some split of `S` (5-phase simulation,
/// appendix construction).
fn build_as(s_vsa: &Vsa, ext: &ExtAlphabet, nv: usize) -> Nfa {
    let n = s_vsa.num_states();
    let mut nfa = Nfa::new(ext.alphabet_size() * 2);
    // state q in phase k (1..=5) -> 5q + (k-1).
    for _ in 0..5 * n {
        nfa.add_state();
    }
    let id = |q: StateId, k: u8| -> StateId { 5 * q + (k - 1) as StateId };
    nfa.add_start(id(s_vsa.start(), 1));
    // All V operation symbols (the splitter's own variable is *not* in
    // `ext`; its open/close become the ε phase changes).
    let mut open_syms = Vec::new();
    let mut any_op_syms = Vec::new();
    let mut close_syms = Vec::new();
    for i in 0..nv {
        let v = VarId(i as u32);
        open_syms.push(pair_sym(ext.op_sym(VarOp::Open(v)), true));
        close_syms.push(pair_sym(ext.op_sym(VarOp::Close(v)), true));
        any_op_syms.push(pair_sym(ext.op_sym(VarOp::Open(v)), true));
        any_op_syms.push(pair_sym(ext.op_sym(VarOp::Close(v)), true));
    }
    for q in 0..n as StateId {
        if s_vsa.is_final(q) {
            nfa.set_final(id(q, 5), true);
        }
        // Phase-changing op loops (S state stays put).
        for &sym in &open_syms {
            nfa.add_transition(id(q, 2), sym, id(q, 3));
        }
        for &sym in &any_op_syms {
            nfa.add_transition(id(q, 3), sym, id(q, 3));
        }
        for &sym in &close_syms {
            nfa.add_transition(id(q, 3), sym, id(q, 4));
        }
        for &(l, r) in s_vsa.transitions_from(q) {
            match l {
                Label::Eps => {
                    for k in 1..=5u8 {
                        nfa.add_eps(id(q, k), id(r, k));
                    }
                }
                Label::Bytes(m) => {
                    for cs in ext.class_syms(&m) {
                        nfa.add_transition(id(q, 1), pair_sym(cs, false), id(r, 1));
                        nfa.add_transition(id(q, 2), pair_sym(cs, false), id(r, 2));
                        nfa.add_transition(id(q, 3), pair_sym(cs, true), id(r, 3));
                        nfa.add_transition(id(q, 4), pair_sym(cs, false), id(r, 4));
                        nfa.add_transition(id(q, 5), pair_sym(cs, false), id(r, 5));
                    }
                }
                Label::Op(op) => {
                    // S's own variable: x⊢ moves phase 1→2, ⊣x 4→5.
                    if op.is_open() {
                        nfa.add_eps(id(q, 1), id(r, 2));
                    } else {
                        nfa.add_eps(id(q, 4), id(r, 5));
                    }
                }
            }
        }
    }
    nfa
}

/// Decodes a pair-alphabet witness into `(doc, tuple)`.
fn decode_marked_witness(ext: &ExtAlphabet, word: &[Sym]) -> CounterExample {
    let nv = ext.vars().len();
    let mut doc = Vec::new();
    let mut opens = vec![0usize; nv];
    let mut closes = vec![0usize; nv];
    for &sym in word {
        let (e, _) = unpair(sym);
        match ext.decode(e) {
            ExtSym::Class(c) => doc.push(c.first().expect("non-empty class")),
            ExtSym::Op(VarOp::Open(v)) => opens[v.index()] = doc.len(),
            ExtSym::Op(VarOp::Close(v)) => closes[v.index()] = doc.len(),
        }
    }
    let tuple = SpanTuple::new(
        (0..nv)
            .map(|i| splitc_spanner::span::Span::new(opens[i], closes[i]))
            .collect(),
    );
    CounterExample {
        doc,
        tuple,
        split: None,
        left_has_it: true,
        reason: "cover condition violated: no split covers this tuple".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    fn dvsa(p: &str) -> Vsa {
        vsa(p).determinize()
    }

    #[test]
    fn sentence_local_extractor_is_covered() {
        // P finds 'a'-runs not containing '.', S = sentences.
        let p = vsa(".*x{a+}.*");
        let s = splitter::sentences();
        // A tuple of P inside a single sentence is covered... but P can
        // also match across: x{a+} never contains '.', and any a+ run is
        // within one sentence. Cover holds.
        assert!(matches!(cover_condition(&p, &s), Verdict::Holds));
    }

    #[test]
    fn crossing_extractor_violates_cover() {
        // P captures a region containing a period: no sentence covers it.
        let p = vsa(".*x{a\\.a}.*");
        let s = splitter::sentences();
        match cover_condition(&p, &s) {
            Verdict::Fails(cex) => {
                assert!(cex.doc.windows(3).any(|w| w == b"a.a"));
            }
            Verdict::Holds => panic!("cover should fail"),
        }
    }

    #[test]
    fn df_agrees_with_general_on_simple_cases() {
        let cases: &[(&str, Splitter)] = &[
            (".*x{a+}.*", splitter::sentences()),
            (".*x{a\\.a}.*", splitter::sentences()),
            (".*x{ab}.*", splitter::whole_document()),
        ];
        for (pat, s) in cases {
            let p = dvsa(pat);
            let sd = s.determinize();
            let general = matches!(cover_condition(&p, s), Verdict::Holds);
            let fast = matches!(cover_condition_df(&p, &sd).unwrap(), Verdict::Holds);
            assert_eq!(general, fast, "pattern {pat}");
        }
    }

    #[test]
    fn fast_path_rejects_nondisjoint() {
        let p = dvsa(".*x{a}.*");
        let s = splitter::ngrams(2);
        assert!(cover_condition_df(&p, &s).is_err());
    }

    #[test]
    fn fast_path_rejects_nondeterministic() {
        let p = vsa(".*x{a}.*|.*x{aa}.*"); // nondeterministic as given
        let s = splitter::sentences();
        if !p.is_deterministic() {
            assert!(cover_condition_df(&p, &s).is_err());
        }
    }

    #[test]
    fn boolean_cover_checks_language() {
        // P = Boolean "contains ab"; S outputs nothing on documents
        // without 'a'... sentences always output on non-empty docs, but
        // on the empty doc they output nothing — and P doesn't match
        // empty. Use S = x{a+} which outputs only on pure a-docs.
        let p = dvsa("a+");
        let s = Splitter::parse("x{a+}").unwrap().determinize();
        assert!(matches!(
            cover_condition_df(&p, &s).unwrap(),
            Verdict::Holds
        ));
        let p2 = dvsa("b+");
        match cover_condition_df(&p2, &s).unwrap() {
            Verdict::Fails(cex) => assert!(cex.doc.contains(&b'b')),
            Verdict::Holds => panic!("b-docs have no splits"),
        }
    }

    #[test]
    fn paper_lemma_5_4_family() {
        // Paper's reduction shape: P = a·y{Σ*}, S = x{a·A}: cover holds
        // iff every suffix is in A. With A = Σ*, cover holds; with
        // A = b*, it fails (e.g. suffix "a").
        let p = vsa("a(y{.*})");
        let s_all = Splitter::parse("x{a.*}").unwrap();
        assert!(matches!(cover_condition(&p, &s_all), Verdict::Holds));
        let s_b = Splitter::parse("x{ab*}").unwrap();
        assert!(matches!(cover_condition(&p, &s_b), Verdict::Fails(_)));
    }

    #[test]
    fn universal_spanner_outputs_everything() {
        let vars = splitc_spanner::vars::VarTable::new(["x"]).unwrap();
        let pv = universal_spanner(&vars);
        let rel = splitc_spanner::eval::eval(&pv, b"ab");
        // All spans of a 2-byte doc: 6.
        assert_eq!(rel.len(), 6);
    }
}
