//! Property-based differential tests for the streaming execution layer.
//!
//! The two invariants the streaming subsystem promises:
//!
//! 1. [`StreamingSplitter`] over **arbitrary chunk boundaries**
//!    (including 1-byte chunks and cuts inside multi-byte segments)
//!    yields exactly the segments of the batch splitter, in the same
//!    order;
//! 2. [`CorpusRunner`] equals [`evaluate_many_split`] on the same
//!    corpus, for every engine, worker count (including the normalized
//!    `0`), batch size and queue depth.

use crate::corpus::{CorpusRunner, CorpusRunnerConfig};
use crate::engine::{evaluate_many_split, split_fn_of_splitter, Engine, ExecSpanner, SplitFn};
use crate::stream::StreamingSplitter;
use proptest::prelude::*;
use splitc_spanner::rgx::Rgx;
use splitc_spanner::splitter::{self, Splitter};

/// Splitters covering the interesting shapes: disjoint delimiters,
/// overlapping windows, nested candidate spans, empty spans, and a
/// non-universal post-split language (confirmation only at end of
/// stream).
fn splitter_pool() -> Vec<Splitter> {
    vec![
        splitter::sentences(),
        splitter::lines(),
        splitter::paragraphs(),
        splitter::ngrams(2),
        splitter::char_windows(3),
        Splitter::parse("x{abc}|a(x{b})c").unwrap(),
        Splitter::parse("x{ab}b|a(x{bb})").unwrap(), // paper Ex. 5.8
        Splitter::parse("x{aa}|a(x{})a").unwrap(),   // empty spans
        Splitter::parse("x{a*}b*").unwrap(),         // non-universal suffix
    ]
}

const PATTERNS: &[&str] = &[".*x{a+}.*", "x{[ab]+}", ".*x{}.*", ".*x{a.a}.*"];

/// Documents over an alphabet that exercises every pool splitter:
/// letters, the sentence/line delimiters, spaces (token boundaries).
fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'b'),
            Just(b'c'),
            Just(b'.'),
            Just(b'\n'),
            Just(b' '),
        ],
        0..48,
    )
}

/// Chunk sizes the stream is cut into (cycled); 1-byte chunks included.
fn chunking_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 1..8)
}

/// Feeds `doc` to a streaming splitter cut at the given chunk sizes.
fn stream_segments(s: &Splitter, doc: &[u8], sizes: &[usize]) -> Vec<(usize, usize, Vec<u8>)> {
    let compiled = s.compile();
    let mut st = StreamingSplitter::new(&compiled);
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < doc.len() {
        let take = sizes[i % sizes.len()].min(doc.len() - pos);
        i += 1;
        out.extend(st.push(&doc[pos..pos + take]));
        pos += take;
    }
    out.extend(st.finish());
    out.into_iter()
        .map(|seg| (seg.span.start, seg.span.end, seg.bytes))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_splitter_matches_batch_over_random_chunks(
        si in 0..9usize,
        doc in doc_strategy(),
        sizes in chunking_strategy(),
    ) {
        let pool = splitter_pool();
        let s = &pool[si];
        let batch: Vec<(usize, usize, Vec<u8>)> = s
            .compile()
            .split(&doc)
            .into_iter()
            .map(|sp| (sp.start, sp.end, sp.slice(&doc).to_vec()))
            .collect();
        let streamed = stream_segments(s, &doc, &sizes);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn corpus_runner_matches_evaluate_many_split(
        pi in 0..PATTERNS.len(),
        docs in proptest::collection::vec(doc_strategy(), 0..6),
        workers in 0usize..5,
        batch_bytes in 1usize..32,
        chunk_bytes in 1usize..16,
        engine_pick in 0usize..4,
    ) {
        // All four engines, including Prefilter (gate + skip-loop)
        // and the AOT premultiplied tables, over random chunkings down
        // to 1-byte streaming chunks.
        let engine = pick_engine(engine_pick);
        let vsa = Rgx::parse(PATTERNS[pi]).unwrap().to_vsa().unwrap();
        let spanner = ExecSpanner::compile_with(&vsa, engine);
        let s = splitter::sentences();
        let runner = CorpusRunner::new(
            spanner.clone(),
            s.compile(),
            CorpusRunnerConfig {
                workers,
                batch_bytes,
                queue_depth: 2,
                chunk_bytes,
            },
        );
        let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
        let got = runner.run_slices(&refs);
        let split: SplitFn = split_fn_of_splitter(&s);
        let expected = evaluate_many_split(&spanner, &split, &refs, workers);
        prop_assert_eq!(got.relations, expected);
        prop_assert_eq!(got.stats.docs, refs.len());
    }
}

// ---------------------------------------------------------------------------
// Fused fleet evaluation: differential and metamorphic suites.
//
// The fleet engine promises that fusing N spanners into one pass —
// shared splitter, shared byte partition, shared multi-needle scan —
// is *invisible* in the results:
//
// 3. **Differential**: [`FleetRunner`] equals one [`CorpusRunner`] per
//    member, for every engine, down to 1-byte streaming chunks and
//    starved lazy-DFA caches (fallback scans);
// 4. **Metamorphic**: a member's relation depends only on its own
//    automaton — permuting, duplicating, or partitioning the fleet
//    never changes any member's output.

use crate::fleet::{Fleet, FleetRunner};
use splitc_spanner::dense::DenseConfig;
use splitc_spanner::vsa::Vsa;
use splitc_textgen::spangen::{rand_fleet, Mix};
use std::sync::Arc;

fn pick_engine(pick: usize) -> Engine {
    match pick % 4 {
        0 => Engine::Nfa,
        1 => Engine::Dense,
        2 => Engine::Prefilter,
        _ => Engine::Aot,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential: the fused runner is byte-identical to one corpus
    /// runner per member — each independently compiled (own byte
    /// partition, default cache bound), so the shared partition, shared
    /// scan, and starved-cache fallback paths are all cross-checked
    /// against an unfused oracle.
    #[test]
    fn fleet_runner_matches_per_member_corpus_runners(
        seed in 0u64..u64::MAX,
        n in 1usize..33,
        docs in proptest::collection::vec(doc_strategy(), 0..5),
        engine_pick in 0usize..4,
        chunk_bytes in 1usize..16,
        workers in 0usize..4,
        starve_pick in 0usize..2,
    ) {
        let starve = starve_pick == 1;
        let engine = pick_engine(engine_pick);
        let vsas = rand_fleet(seed, n);
        let config = CorpusRunnerConfig {
            workers,
            batch_bytes: 16,
            queue_depth: 2,
            chunk_bytes,
        };
        // A 2-state cache bound starves the lazy DFA into its exact
        // NFA-fallback path mid-corpus; results must not move.
        let dense = DenseConfig {
            max_cache_states: if starve { 2 } else { 8192 },
            skip_loop: false,
        };
        let fleet = Arc::new(Fleet::compile_with(&vsas, engine, dense));
        let runner = FleetRunner::new(fleet, splitter::sentences().compile(), config);
        let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
        let got = runner.run_slices(&refs);
        prop_assert_eq!(got.stats.docs, refs.len());
        for (mi, vsa) in vsas.iter().enumerate() {
            let seq = CorpusRunner::new(
                ExecSpanner::compile_with(vsa, engine),
                splitter::sentences().compile(),
                config,
            );
            let expected = seq.run_slices(&refs);
            for (di, rel) in expected.relations.iter().enumerate() {
                prop_assert_eq!(
                    &got.relations[di][mi],
                    rel,
                    "doc {} member {} under {:?} (starved: {})",
                    di, mi, engine, starve
                );
            }
        }
    }

    /// Metamorphic: permuting the fleet permutes the relations and
    /// nothing else.
    #[test]
    fn fleet_is_permutation_invariant(
        seed in 0u64..u64::MAX,
        n in 1usize..12,
        docs in proptest::collection::vec(doc_strategy(), 1..4),
        engine_pick in 0usize..4,
        perm_seed in 0u64..u64::MAX,
    ) {
        let engine = pick_engine(engine_pick);
        let vsas = rand_fleet(seed, n);
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Mix(perm_seed);
        for i in (1..n).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let permuted: Vec<Vsa> = order.iter().map(|&i| vsas[i].clone()).collect();
        let fleet = Fleet::compile(&vsas, engine);
        let pfleet = Fleet::compile(&permuted, engine);
        for doc in &docs {
            let base = fleet.eval(doc);
            let perm = pfleet.eval(doc);
            for (j, &i) in order.iter().enumerate() {
                prop_assert_eq!(&perm[j], &base[i], "slot {} came from member {}", j, i);
            }
        }
    }

    /// Metamorphic: duplicating a member changes neither the original's
    /// relation nor the copy's (identical automata, identical outputs —
    /// and the duplicate's needles double-enroll in the shared scanner
    /// without perturbing anyone).
    #[test]
    fn fleet_is_duplication_invariant(
        seed in 0u64..u64::MAX,
        n in 1usize..12,
        k_pick in 0u64..u64::MAX,
        docs in proptest::collection::vec(doc_strategy(), 1..4),
        engine_pick in 0usize..4,
    ) {
        let engine = pick_engine(engine_pick);
        let vsas = rand_fleet(seed, n);
        let k = (k_pick % n as u64) as usize;
        let mut dup = vsas.clone();
        dup.push(vsas[k].clone());
        let fleet = Fleet::compile(&vsas, engine);
        let dfleet = Fleet::compile(&dup, engine);
        for doc in &docs {
            let base = fleet.eval(doc);
            let with_dup = dfleet.eval(doc);
            for i in 0..n {
                prop_assert_eq!(&with_dup[i], &base[i], "member {} perturbed by a duplicate", i);
            }
            prop_assert_eq!(&with_dup[n], &base[k], "the copy must equal its original");
        }
    }

    /// Metamorphic: partitioning the fleet into two sub-fleets and
    /// concatenating their results equals the full fused pass — fusion
    /// granularity is unobservable.
    #[test]
    fn fleet_is_partition_invariant(
        seed in 0u64..u64::MAX,
        n in 2usize..12,
        cut_pick in 0u64..u64::MAX,
        docs in proptest::collection::vec(doc_strategy(), 1..4),
        engine_pick in 0usize..4,
    ) {
        let engine = pick_engine(engine_pick);
        let vsas = rand_fleet(seed, n);
        let cut = 1 + (cut_pick % (n as u64 - 1)) as usize;
        let fleet = Fleet::compile(&vsas, engine);
        let left = Fleet::compile(&vsas[..cut], engine);
        let right = Fleet::compile(&vsas[cut..], engine);
        for doc in &docs {
            let full = fleet.eval(doc);
            let mut parts = left.eval(doc);
            parts.extend(right.eval(doc));
            prop_assert_eq!(&parts, &full);
        }
    }
}

// ---------------------------------------------------------------------------
// Incremental maintenance: random edit scripts.
//
// The maintained-corpus subsystem promises:
//
// 5. **Differential**: a [`CorpusHandle`] driven by an arbitrary edit
//    script — point edits, appends, shard replacements, in any order —
//    holds exactly the segmentation a from-scratch split of the edited
//    bytes would produce, and extraction through a *bounded* shared
//    [`SegmentCache`] (capacity 2 here, so eviction churns on every
//    step) equals full re-extraction from scratch, for every engine
//    and both runners, down to 1-byte streaming chunks.

use crate::handle::CorpusHandle;
use crate::segcache::SegmentCache;
use splitc_spanner::span::Span;

/// One step of a random edit script. Picks are raw `u64`s reduced
/// modulo the current corpus shape at application time, so scripts
/// stay valid regardless of how earlier steps resized the shards.
#[derive(Debug, Clone)]
enum EditOp {
    /// Replace `start..end` of a shard with `text`.
    Point {
        shard_pick: u64,
        start_pick: u64,
        len_pick: u64,
        text: Vec<u8>,
    },
    /// Extend a shard at its end.
    Append { shard_pick: u64, text: Vec<u8> },
    /// Swap a shard's bytes wholesale.
    Replace { shard_pick: u64, text: Vec<u8> },
}

fn edit_op_strategy() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            doc_strategy()
        )
            .prop_map(|(shard_pick, start_pick, len_pick, text)| EditOp::Point {
                shard_pick,
                start_pick,
                len_pick,
                text,
            }),
        (0u64..u64::MAX, doc_strategy())
            .prop_map(|(shard_pick, text)| EditOp::Append { shard_pick, text }),
        (0u64..u64::MAX, doc_strategy())
            .prop_map(|(shard_pick, text)| EditOp::Replace { shard_pick, text }),
    ]
}

/// Applies one step to the handle and to the plain-bytes shadow state
/// the differential oracle re-splits from scratch.
fn apply_edit(op: &EditOp, handle: &mut CorpusHandle, shadow: &mut [Vec<u8>]) {
    let n = shadow.len() as u64;
    match op {
        EditOp::Point {
            shard_pick,
            start_pick,
            len_pick,
            text,
        } => {
            let sh = (*shard_pick % n) as usize;
            let len = shadow[sh].len() as u64;
            let start = (*start_pick % (len + 1)) as usize;
            let end = start + (*len_pick % (len + 1 - start as u64)) as usize;
            handle.edit(sh, start..end, text);
            shadow[sh].splice(start..end, text.iter().copied());
        }
        EditOp::Append { shard_pick, text } => {
            let sh = (*shard_pick % n) as usize;
            handle.append(sh, text);
            shadow[sh].extend_from_slice(text);
        }
        EditOp::Replace { shard_pick, text } => {
            let sh = (*shard_pick % n) as usize;
            handle.replace_shard(sh, text.clone());
            shadow[sh] = text.clone();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Edit scripts under every pool splitter and every engine: the
    /// maintained segmentation equals a from-scratch split after every
    /// step, and cached extraction (capacity-2 cache) equals a fresh
    /// uncached run.
    #[test]
    fn corpus_handle_edit_scripts_match_full_reextraction(
        si in 0..9usize,
        pi in 0..PATTERNS.len(),
        engine_pick in 0usize..4,
        chunk_bytes in 1usize..8,
        shards in proptest::collection::vec(doc_strategy(), 1..4),
        script in proptest::collection::vec(edit_op_strategy(), 1..6),
    ) {
        let pool = splitter_pool();
        let compiled = pool[si].compile();
        let engine = pick_engine(engine_pick);
        let vsa = Rgx::parse(PATTERNS[pi]).unwrap().to_vsa().unwrap();
        let spanner = ExecSpanner::compile_with(&vsa, engine);
        let config = CorpusRunnerConfig {
            workers: 2,
            batch_bytes: 16,
            queue_depth: 2,
            chunk_bytes,
        };
        // Capacity 2: far below the working set, so the FIFO evicts on
        // nearly every insertion — results must not move.
        let cache = Arc::new(SegmentCache::new(2));
        let runner = CorpusRunner::new(spanner.clone(), compiled.clone(), config)
            .with_segment_cache(cache);
        let mut handle = CorpusHandle::from_shards(compiled.clone(), shards.clone());
        let mut shadow = shards.clone();
        for (step, op) in script.iter().enumerate() {
            apply_edit(op, &mut handle, &mut shadow);
            for (i, bytes) in shadow.iter().enumerate() {
                let full: Vec<Span> = compiled.split(bytes);
                prop_assert_eq!(
                    handle.segments(i),
                    &full[..],
                    "step {} ({:?}): shard {} segmentation diverged",
                    step, op, i
                );
            }
            let incremental = handle.extract(&runner);
            let refs: Vec<&[u8]> = shadow.iter().map(Vec::as_slice).collect();
            let fresh = CorpusRunner::new(spanner.clone(), compiled.clone(), config);
            let expected = fresh.run_slices(&refs);
            prop_assert_eq!(
                incremental.relations,
                expected.relations,
                "step {} ({:?}): cached incremental extraction diverged",
                step, op
            );
        }
    }

    /// The same contract through the fused fleet runner: an edited,
    /// cache-backed corpus equals a fresh full fleet re-extraction.
    #[test]
    fn corpus_handle_edit_scripts_match_fleet_reextraction(
        seed in 0u64..u64::MAX,
        n in 1usize..6,
        engine_pick in 0usize..4,
        chunk_bytes in 1usize..8,
        shards in proptest::collection::vec(doc_strategy(), 1..3),
        script in proptest::collection::vec(edit_op_strategy(), 1..5),
    ) {
        let compiled = splitter::sentences().compile();
        let engine = pick_engine(engine_pick);
        let vsas = rand_fleet(seed, n);
        let fleet = Arc::new(Fleet::compile(&vsas, engine));
        let config = CorpusRunnerConfig {
            workers: 2,
            batch_bytes: 16,
            queue_depth: 2,
            chunk_bytes,
        };
        let cache = Arc::new(SegmentCache::new(2));
        let runner = FleetRunner::new(fleet.clone(), compiled.clone(), config)
            .with_segment_cache(cache);
        let mut handle = CorpusHandle::from_shards(compiled.clone(), shards.clone());
        let mut shadow = shards.clone();
        for op in &script {
            apply_edit(op, &mut handle, &mut shadow);
            let incremental = handle.extract_fleet(&runner);
            let refs: Vec<&[u8]> = shadow.iter().map(Vec::as_slice).collect();
            let fresh = FleetRunner::new(fleet.clone(), compiled.clone(), config);
            let expected = fresh.run_slices(&refs);
            prop_assert_eq!(
                incremental.relations,
                expected.relations,
                "after {:?}: fleet incremental extraction diverged",
                op
            );
        }
    }
}
