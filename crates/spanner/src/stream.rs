//! Incremental (streaming) splitter simulation.
//!
//! [`crate::dense`] evaluates a splitter *per document*: its backward
//! viability pass reads the whole document before the forward pass can
//! enumerate a single span. That is the right shape for batch corpora,
//! but it forces the caller to materialize every document in memory. This
//! module provides the complementary *forward-only* engine behind
//! streaming execution (`splitc-exec`'s `StreamingSplitter`): a
//! [`SplitterState`] consumes a document **chunk by chunk** and emits
//! split segments incrementally, with memory proportional to the
//! unresolved window of the stream rather than to the document.
//!
//! # Algorithm
//!
//! A splitter is a unary spanner, so every accepting run of its
//! block-normal-form automaton ([`crate::evsa`]) passes through three
//! phases: *before* the split variable opens, *inside* the span, and
//! *after* it closes. The stream state maintains one NFA frontier
//! (set of automaton states) per phase instance:
//!
//! * one **before** frontier (runs that have not opened yet),
//! * one **inside** frontier per candidate open position still alive,
//! * one **after** frontier per closed-but-unconfirmed candidate span.
//!
//! Spanner semantics accept only at document end, so a closed candidate
//! `[i, j⟩` is *confirmed* — proven to be in the output for **every**
//! possible continuation of the stream — as soon as its after-frontier
//! becomes *universal* (all suffixes accepted). Candidates whose
//! after-frontier dies are dropped; the rest resolve when
//! [`SplitterState::finish`] applies the final blocks.
//!
//! [`StreamTables::compile`] **determinizes the three phase automata
//! eagerly** (within a power-set budget), precomputing per-phase DFA
//! transition rows, emptiness, end-of-document acceptance, and
//! universality per DFA state — so the per-byte stepping cost is a
//! handful of array lookups, competitive with the dense engine's lazy
//! DFA. Splitters whose phase power-sets exceed the budget fall back to
//! exact on-line NFA frontier simulation with memoized universality
//! checks; results are identical either way (the test suite runs both
//! paths differentially).
//!
//! Confirmed spans are released in ascending `(start, end)` order — the
//! exact order of [`crate::splitter::CompiledSplitter::split`] — by
//! holding a confirmed span back until no candidate with a smaller start
//! can still appear. For the built-in disjoint splitters (sentences,
//! lines, paragraphs) confirmation happens at the delimiter byte, so the
//! buffered window is a single segment; overlapping splitters (N-grams,
//! character windows) buffer at most their window depth. A splitter
//! whose post-split language is not universal (e.g. `x{a*}b*`) cannot be
//! confirmed before end of stream — such splitters still stream
//! correctly but degenerate to whole-document buffering; see
//! [`SplitterState::low_watermark`] for the contract the execution layer
//! uses to bound its byte buffer.

use crate::evsa::EVsa;
use crate::span::Span;
use splitc_automata::classes::{ByteClassBuilder, ByteClasses};
use splitc_automata::nfa::StateId;
use splitc_automata::scan::ByteFinder;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Default power-set budget of the eager phase-DFA construction, shared
/// across the three phases. Realistic splitters determinize to a few
/// dozen sets; a splitter exceeding the budget streams via the exact
/// set-based fallback instead (same results, slower per byte).
const DEFAULT_DFA_BUDGET: usize = 4096;

/// Upper bound on power-set states explored per universality query in
/// the set-based fallback. Queries that exceed it are conservatively
/// answered "not universal", which only delays emission until
/// [`SplitterState::finish`] — results are unaffected.
const MAX_UNIVERSALITY_SETS: usize = 4096;

/// Flattens per-key vectors into CSR offsets + pool.
fn to_csr(per_key: Vec<Vec<StateId>>) -> (Vec<u32>, Vec<StateId>) {
    let mut off = Vec::with_capacity(per_key.len() + 1);
    let mut pool = Vec::new();
    off.push(0u32);
    for v in per_key {
        pool.extend_from_slice(&v);
        off.push(pool.len() as u32);
    }
    (off, pool)
}

/// One successor table per `(state, class)` pair: CSR target lists for
/// arbitrary automata, plus a per-entry `u64` successor bitmask fast
/// path when the automaton fits in one bitset word.
#[derive(Debug)]
struct PhaseTable {
    off: Vec<u32>,
    pool: Vec<StateId>,
    /// `mask[q * nc + c]` = bitmask of successors; empty when the
    /// automaton has more than 64 states.
    mask: Vec<u64>,
}

impl PhaseTable {
    #[inline]
    fn targets(&self, base: usize) -> &[StateId] {
        &self.pool[self.off[base] as usize..self.off[base + 1] as usize]
    }
}

/// The three determinized phase automata (see the [module docs](self)).
/// DFA state id 0 is always the empty (dead) frontier.
#[derive(Debug)]
struct PhaseDfas {
    /// `before_next[id * nc + c]` → before-DFA successor.
    before_next: Vec<u32>,
    /// Inside-DFA state entered by opening at this byte (0 = no open).
    before_open: Vec<u32>,
    /// After-DFA state entered by an open+close block (empty span).
    before_oc: Vec<u32>,
    inside_next: Vec<u32>,
    /// After-DFA state entered by closing before this byte (0 = none).
    inside_close: Vec<u32>,
    after_next: Vec<u32>,
    /// Whether the before frontier accepts via an `x⊢ ⊣x` final block.
    before_oc_at_end: Vec<bool>,
    /// Whether the inside frontier accepts via a `⊣x` final block.
    inside_close_at_end: Vec<bool>,
    /// Whether the after frontier accepts via an empty final block.
    after_accepting: Vec<bool>,
    /// Whether every continuation is accepted from this after frontier.
    after_universal: Vec<bool>,
    /// The before-DFA state of the automaton's start frontier.
    before_start: u32,
    /// Skip-loop table: per before state, a SWAR finder for the bytes
    /// that change anything (leave the state, open a span, or emit an
    /// empty span). When the stream has no pending or unreleased
    /// candidates, runs of non-escape bytes are jumped by the scanner
    /// instead of stepped — the streaming counterpart of the dense
    /// engine's skip-loop. `None` = the state escapes on too much of the
    /// alphabet for skipping to pay.
    before_skip: Vec<Option<ByteFinder>>,
    /// Whether the before state is Moore-equivalent to `before_start`:
    /// identical `(open, oc)` outputs on every class, identical
    /// end-of-input acceptance, and equivalent successors. From such a
    /// state the continuation segmentation is the same function of the
    /// remaining bytes as a fresh stream's — the relaxed quiescence
    /// test of [`SplitterState::is_quiescent`]. (Checking `id ==
    /// before_start` alone is too strict: the subset construction
    /// routinely lands in start-equivalent states with different ids
    /// after consuming bytes.)
    before_like_start: Vec<bool>,
}

/// Precompiled stepping structures of a unary splitter: byte classes,
/// per-`(state, class)` phase tables (NFA-level), and — when the budget
/// allows — the eager phase DFAs. Built once per compiled splitter
/// ([`crate::splitter::CompiledSplitter::stream`] hands out
/// [`SplitterState`]s sharing one table).
#[derive(Debug)]
pub struct StreamTables {
    classes: ByteClasses,
    /// Number of byte classes.
    nc: usize,
    /// Bitset words per frontier.
    words: usize,
    start: StateId,
    /// Successors on transitions whose block performs no operation.
    plain: PhaseTable,
    /// Successors on blocks performing `x⊢` (the byte starts the span).
    open: PhaseTable,
    /// Successors on blocks performing `⊣x` (the byte follows the span).
    close: PhaseTable,
    /// Successors on blocks performing both (empty span before the byte).
    open_close: PhaseTable,
    /// States accepting at document end with an empty final block.
    final_plain: Box<[u64]>,
    /// States accepting at document end with a `⊣x` final block.
    final_close: Box<[u64]>,
    /// States accepting at document end with an `x⊢ ⊣x` final block.
    final_open_close: Box<[u64]>,
    /// Eager phase DFAs; `None` when the power-set budget was exceeded
    /// (streams then use the set-based fallback).
    dfas: Option<PhaseDfas>,
}

impl StreamTables {
    /// Compiles stepping tables for a **unary** block-normal-form
    /// automaton with the default phase-DFA budget. Panics when the
    /// automaton is not unary (splitters are validated at
    /// [`crate::splitter::Splitter::new`]).
    pub fn compile(evsa: &EVsa) -> StreamTables {
        Self::compile_with_budget(evsa, DEFAULT_DFA_BUDGET)
    }

    /// [`StreamTables::compile`] with an explicit power-set budget for
    /// the eager phase-DFA construction. A budget of 0 disables the
    /// DFAs entirely, forcing the exact set-based fallback — useful for
    /// differential testing; results are identical on both paths.
    pub fn compile_with_budget(evsa: &EVsa, budget: usize) -> StreamTables {
        assert_eq!(
            evsa.vars().len(),
            1,
            "streaming simulation is defined for unary splitters"
        );
        let ns = evsa.num_states();
        let mut builder = ByteClassBuilder::new();
        for m in evsa.byte_masks() {
            builder.add_set(|b| m.contains(b));
        }
        let classes = builder.build();
        let nc = classes.num_classes();
        let reps = classes.representatives();
        let words = ns.div_ceil(64).max(1);

        let mut plain: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        let mut open: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        let mut close: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        let mut open_close: Vec<Vec<StateId>> = vec![Vec::new(); ns * nc];
        for q in 0..ns {
            for (block, mask, r) in evsa.transitions_from(q as StateId) {
                let opens = block.iter().any(|op| op.is_open());
                let closes = block.iter().any(|op| !op.is_open());
                let table = match (opens, closes) {
                    (false, false) => &mut plain,
                    (true, false) => &mut open,
                    (false, true) => &mut close,
                    (true, true) => &mut open_close,
                };
                for (c, &rep) in reps.iter().enumerate() {
                    if mask.contains(rep) {
                        table[q * nc + c].push(*r);
                    }
                }
            }
        }
        for t in [&mut plain, &mut open, &mut close, &mut open_close] {
            for v in t.iter_mut() {
                v.sort_unstable();
                v.dedup();
            }
        }

        let mut final_plain = vec![0u64; words].into_boxed_slice();
        let mut final_close = vec![0u64; words].into_boxed_slice();
        let mut final_open_close = vec![0u64; words].into_boxed_slice();
        for q in 0..ns {
            for block in evsa.final_blocks(q as StateId) {
                let opens = block.iter().any(|op| op.is_open());
                let closes = block.iter().any(|op| !op.is_open());
                let set = match (opens, closes) {
                    (false, false) => &mut final_plain,
                    (false, true) => &mut final_close,
                    (true, true) => &mut final_open_close,
                    // An open without a close at document end cannot
                    // belong to a valid run of a functional automaton.
                    (true, false) => continue,
                };
                set[q >> 6] |= 1u64 << (q & 63);
            }
        }

        let mk = |t: Vec<Vec<StateId>>| {
            let mask = if ns <= 64 {
                t.iter()
                    .map(|v| v.iter().fold(0u64, |m, &q| m | (1u64 << q)))
                    .collect()
            } else {
                Vec::new()
            };
            let (off, pool) = to_csr(t);
            PhaseTable { off, pool, mask }
        };
        let mut tables = StreamTables {
            classes,
            nc,
            words,
            start: evsa.start(),
            plain: mk(plain),
            open: mk(open),
            close: mk(close),
            open_close: mk(open_close),
            final_plain,
            final_close,
            final_open_close,
            dfas: None,
        };
        tables.dfas = tables.build_dfas(budget);
        tables
    }

    /// The byte-class partition the tables are indexed by.
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// Whether streams use the eager phase DFAs (`false`: the set-based
    /// fallback, either because the budget was exceeded or explicitly 0).
    pub fn uses_phase_dfas(&self) -> bool {
        self.dfas.is_some()
    }

    /// ORs the successors of every state in `set` under `table` on byte
    /// class `c` into `out`.
    fn step_into(&self, table: &PhaseTable, set: &[u64], c: usize, out: &mut [u64]) {
        if !table.mask.is_empty() {
            // Single-word fast path: one precomputed OR per frontier bit.
            let mut bits = set[0];
            let mut acc = out[0];
            while bits != 0 {
                let q = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc |= table.mask[q * self.nc + c];
            }
            out[0] = acc;
            return;
        }
        for (w, &bits) in set.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let q = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for &t in table.targets(q * self.nc + c) {
                    out[t as usize >> 6] |= 1u64 << (t & 63);
                }
            }
        }
    }

    /// Eagerly determinizes the three phase automata within `budget`
    /// total interned power-set states. Returns `None` when the budget
    /// does not suffice.
    fn build_dfas(&self, budget: usize) -> Option<PhaseDfas> {
        if budget == 0 {
            // The documented off-switch: never build DFAs, not even for
            // automata whose reachable frontier sets all pre-exist.
            return None;
        }
        /// One growing phase DFA during construction.
        struct Dfa {
            ids: HashMap<Vec<u64>, u32>,
            sets: Vec<Vec<u64>>,
        }
        impl Dfa {
            fn new(words: usize) -> Dfa {
                let empty = vec![0u64; words];
                let mut ids = HashMap::new();
                ids.insert(empty.clone(), 0);
                Dfa {
                    ids,
                    sets: vec![empty],
                }
            }
        }
        let mut before = Dfa::new(self.words);
        let mut inside = Dfa::new(self.words);
        let mut after = Dfa::new(self.words);
        let total = |b: &Dfa, i: &Dfa, a: &Dfa| b.sets.len() + i.sets.len() + a.sets.len();

        // Intern helper: returns the id, or None past the budget.
        fn intern(dfa: &mut Dfa, set: Vec<u64>, room: bool) -> Option<u32> {
            if let Some(&id) = dfa.ids.get(&set) {
                return Some(id);
            }
            if !room {
                return None;
            }
            let id = dfa.sets.len() as u32;
            dfa.ids.insert(set.clone(), id);
            dfa.sets.push(set);
            Some(id)
        }

        let mut start_set = vec![0u64; self.words];
        let s = self.start as usize;
        start_set[s >> 6] |= 1u64 << (s & 63);
        let before_start = intern(&mut before, start_set, true)?;

        // Explore the three worklists to fixpoint; rows are filled per
        // discovered id for every class.
        let mut before_next = vec![0u32; before.sets.len() * self.nc];
        let mut before_open = vec![0u32; before.sets.len() * self.nc];
        let mut before_oc = vec![0u32; before.sets.len() * self.nc];
        let mut inside_next = vec![0u32; inside.sets.len() * self.nc];
        let mut inside_close = vec![0u32; inside.sets.len() * self.nc];
        let mut after_next = vec![0u32; after.sets.len() * self.nc];
        let (mut done_b, mut done_i, mut done_a) = (0usize, 0usize, 0usize);
        loop {
            let progressed = done_b < before.sets.len()
                || done_i < inside.sets.len()
                || done_a < after.sets.len();
            if !progressed {
                break;
            }
            while done_b < before.sets.len() {
                let id = done_b;
                done_b += 1;
                before_next.resize(before.sets.len() * self.nc, 0);
                before_open.resize(before.sets.len() * self.nc, 0);
                before_oc.resize(before.sets.len() * self.nc, 0);
                let set = before.sets[id].clone();
                for c in 0..self.nc {
                    let mut nb = vec![0u64; self.words];
                    self.step_into(&self.plain, &set, c, &mut nb);
                    let mut op = vec![0u64; self.words];
                    self.step_into(&self.open, &set, c, &mut op);
                    let mut oc = vec![0u64; self.words];
                    self.step_into(&self.open_close, &set, c, &mut oc);
                    let room = total(&before, &inside, &after) < budget;
                    before_next[id * self.nc + c] = intern(&mut before, nb, room)?;
                    let room = total(&before, &inside, &after) < budget;
                    before_open[id * self.nc + c] = intern(&mut inside, op, room)?;
                    let room = total(&before, &inside, &after) < budget;
                    before_oc[id * self.nc + c] = intern(&mut after, oc, room)?;
                }
            }
            while done_i < inside.sets.len() {
                let id = done_i;
                done_i += 1;
                inside_next.resize(inside.sets.len() * self.nc, 0);
                inside_close.resize(inside.sets.len() * self.nc, 0);
                let set = inside.sets[id].clone();
                for c in 0..self.nc {
                    let mut ni = vec![0u64; self.words];
                    self.step_into(&self.plain, &set, c, &mut ni);
                    let mut cl = vec![0u64; self.words];
                    self.step_into(&self.close, &set, c, &mut cl);
                    let room = total(&before, &inside, &after) < budget;
                    inside_next[id * self.nc + c] = intern(&mut inside, ni, room)?;
                    let room = total(&before, &inside, &after) < budget;
                    inside_close[id * self.nc + c] = intern(&mut after, cl, room)?;
                }
            }
            while done_a < after.sets.len() {
                let id = done_a;
                done_a += 1;
                after_next.resize(after.sets.len() * self.nc, 0);
                let set = after.sets[id].clone();
                for c in 0..self.nc {
                    let mut na = vec![0u64; self.words];
                    self.step_into(&self.plain, &set, c, &mut na);
                    let room = total(&before, &inside, &after) < budget;
                    after_next[id * self.nc + c] = intern(&mut after, na, room)?;
                }
            }
        }
        // Rows may have been resized past the final set counts; trim.
        before_next.truncate(before.sets.len() * self.nc);
        before_open.truncate(before.sets.len() * self.nc);
        before_oc.truncate(before.sets.len() * self.nc);
        inside_next.truncate(inside.sets.len() * self.nc);
        inside_close.truncate(inside.sets.len() * self.nc);
        after_next.truncate(after.sets.len() * self.nc);

        let flag = |sets: &[Vec<u64>], finals: &[u64]| -> Vec<bool> {
            sets.iter().map(|s| intersects(s, finals)).collect()
        };
        let before_oc_at_end = flag(&before.sets, &self.final_open_close);
        let inside_close_at_end = flag(&inside.sets, &self.final_close);
        let after_accepting = flag(&after.sets, &self.final_plain);

        // Universality per after id: an id is non-universal iff it can
        // reach a non-accepting id (including itself). Reverse BFS from
        // the non-accepting ids over the after-DFA edges.
        let n_after = after.sets.len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n_after];
        for id in 0..n_after {
            for c in 0..self.nc {
                rev[after_next[id * self.nc + c] as usize].push(id as u32);
            }
        }
        let mut non_universal = vec![false; n_after];
        let mut queue: Vec<u32> = (0..n_after as u32)
            .filter(|&id| !after_accepting[id as usize])
            .collect();
        for &id in &queue {
            non_universal[id as usize] = true;
        }
        while let Some(id) = queue.pop() {
            for &p in &rev[id as usize] {
                if !non_universal[p as usize] {
                    non_universal[p as usize] = true;
                    queue.push(p);
                }
            }
        }
        let after_universal = non_universal.iter().map(|&b| !b).collect();

        // Skip-loop table (see the field docs on [`PhaseDfas`]). A byte
        // class is *inert* for a before state when it neither leaves the
        // state nor opens a span nor emits an empty span; only the
        // complement — the escape bytes — needs scanning for. The dead
        // state 0 is inert on everything: once the before frontier dies
        // with nothing unresolved, whole chunks are skipped.
        let n_before = before.sets.len();
        let mut before_skip: Vec<Option<ByteFinder>> = Vec::with_capacity(n_before);
        for id in 0..n_before {
            let mut escape = [false; 256];
            for c in 0..self.nc {
                let at = id * self.nc + c;
                let inert =
                    before_next[at] == id as u32 && before_open[at] == 0 && before_oc[at] == 0;
                if !inert {
                    for b in self.classes.bytes_of(c) {
                        escape[b as usize] = true;
                    }
                }
            }
            let escapes = escape.iter().filter(|&&e| e).count();
            before_skip.push(if escapes <= 128 {
                Some(ByteFinder::from_predicate(|b| escape[b as usize]))
            } else {
                None
            });
        }

        // Start-equivalence for the quiescence probe: partition the
        // before-DFA by Moore refinement, where a state's output is its
        // `(open, oc)` action pair on every class plus its end-of-input
        // acceptance, and two states stay merged only if their
        // successors stay merged. Bisimilar states yield identical
        // segmentations on every suffix, so any state in the start
        // state's block is a sound resplit frontier.
        let mut block = vec![0u32; n_before];
        {
            let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
            for q in 0..n_before {
                let mut sig: Vec<u32> = Vec::with_capacity(2 * self.nc + 1);
                sig.push(before_oc_at_end[q] as u32);
                for c in 0..self.nc {
                    sig.push(before_open[q * self.nc + c]);
                    sig.push(before_oc[q * self.nc + c]);
                }
                let fresh = ids.len() as u32;
                block[q] = *ids.entry(sig).or_insert(fresh);
            }
            loop {
                let mut ids: HashMap<Vec<u32>, u32> = HashMap::new();
                let mut next_block = vec![0u32; n_before];
                for q in 0..n_before {
                    let mut sig: Vec<u32> = Vec::with_capacity(self.nc + 1);
                    sig.push(block[q]);
                    for c in 0..self.nc {
                        sig.push(block[before_next[q * self.nc + c] as usize]);
                    }
                    let fresh = ids.len() as u32;
                    next_block[q] = *ids.entry(sig).or_insert(fresh);
                }
                if next_block == block {
                    break;
                }
                block = next_block;
            }
        }
        let start_block = block[before_start as usize];
        let before_like_start: Vec<bool> = block.iter().map(|&b| b == start_block).collect();

        Some(PhaseDfas {
            before_next,
            before_open,
            before_oc,
            inside_next,
            inside_close,
            after_next,
            before_oc_at_end,
            inside_close_at_end,
            after_accepting,
            after_universal,
            before_start,
            before_skip,
            before_like_start,
        })
    }
}

#[inline]
fn is_zero(set: &[u64]) -> bool {
    set.iter().all(|&w| w == 0)
}

#[inline]
fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b.iter()).any(|(x, y)| x & y != 0)
}

/// A closed-but-unreleased candidate span in DFA mode.
#[derive(Debug, Clone)]
struct DfaCandidate {
    span: Span,
    /// After-DFA state; meaningless once `confirmed`.
    after: u32,
    confirmed: bool,
}

/// A closed-but-unreleased candidate span in set mode.
#[derive(Debug, Clone)]
struct SetCandidate {
    span: Span,
    /// After-phase frontier; meaningless once `confirmed`.
    states: Vec<u64>,
    confirmed: bool,
}

/// DFA-mode runtime state: everything is a `u32` phase-DFA id.
#[derive(Debug, Clone)]
struct DfaState {
    before: u32,
    /// `(open position, inside-DFA id)`, ascending positions.
    pending: Vec<(usize, u32)>,
    /// Sorted by `(start, end)`.
    candidates: Vec<DfaCandidate>,
}

/// Set-mode (fallback) runtime state: exact NFA frontiers.
#[derive(Debug, Clone)]
struct SetState {
    before: Vec<u64>,
    pending: Vec<(usize, Vec<u64>)>,
    candidates: Vec<SetCandidate>,
    /// Memoized universality verdicts per after-phase frontier.
    universal: HashMap<Vec<u64>, bool>,
    /// Scratch frontiers reused across steps.
    scratch: Vec<u64>,
    open_buf: Vec<u64>,
    close_buf: Vec<u64>,
}

#[derive(Debug, Clone)]
enum Mode {
    Dfa(DfaState),
    Sets(SetState),
}

/// Incremental splitter execution state: feed document bytes with
/// [`SplitterState::push`], collect emitted split spans (ascending
/// `(start, end)`, exactly the spans of the batch splitter), and call
/// [`SplitterState::finish`] at end of stream. Obtain one per stream via
/// [`crate::splitter::CompiledSplitter::stream`]; the precompiled
/// [`StreamTables`] are shared, the per-stream state is not.
#[derive(Debug, Clone)]
pub struct SplitterState {
    t: Arc<StreamTables>,
    /// Bytes consumed so far (= the stream offset of the next byte).
    pos: usize,
    /// Bytes consumed by the skip-loop scanner instead of DFA steps.
    skipped: u64,
    /// Largest position observed quiescent so far (see
    /// [`SplitterState::last_quiescent`]). 0 — the fresh start — is
    /// trivially quiescent.
    quiet: usize,
    /// Emitted spans not yet drained by the caller.
    out: Vec<Span>,
    mode: Mode,
}

impl SplitterState {
    /// Starts a stream at offset 0.
    pub fn new(tables: Arc<StreamTables>) -> SplitterState {
        let words = tables.words;
        let mode = match &tables.dfas {
            Some(d) => Mode::Dfa(DfaState {
                before: d.before_start,
                pending: Vec::new(),
                candidates: Vec::new(),
            }),
            None => {
                let mut before = vec![0u64; words];
                let s = tables.start as usize;
                before[s >> 6] |= 1u64 << (s & 63);
                Mode::Sets(SetState {
                    before,
                    pending: Vec::new(),
                    candidates: Vec::new(),
                    universal: HashMap::new(),
                    scratch: vec![0u64; words],
                    open_buf: vec![0u64; words],
                    close_buf: vec![0u64; words],
                })
            }
        };
        SplitterState {
            t: tables,
            pos: 0,
            skipped: 0,
            quiet: 0,
            out: Vec::new(),
            mode,
        }
    }

    /// Number of bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes consumed by the skip-loop scanner instead of phase-DFA
    /// steps (0 in set-fallback mode, which always steps exactly).
    pub fn bytes_skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of unresolved candidate segments (open or closed but not
    /// yet released).
    pub fn pending_segments(&self) -> usize {
        match &self.mode {
            Mode::Dfa(d) => d.pending.len() + d.candidates.len(),
            Mode::Sets(s) => s.pending.len() + s.candidates.len(),
        }
    }

    /// The smallest stream offset any unresolved candidate still refers
    /// to (`pos()` when nothing is unresolved). Bytes before the low
    /// watermark can never appear in a future emitted span, so a
    /// streaming caller may discard them — this is what bounds the byte
    /// buffer of the execution layer's `StreamingSplitter`.
    pub fn low_watermark(&self) -> usize {
        let (p, c) = match &self.mode {
            Mode::Dfa(d) => (
                d.pending.first().map(|(i, _)| *i),
                d.candidates.first().map(|c| c.span.start),
            ),
            Mode::Sets(s) => (
                s.pending.first().map(|(i, _)| *i),
                s.candidates.first().map(|c| c.span.start),
            ),
        };
        self.pos
            .min(p.unwrap_or(usize::MAX))
            .min(c.unwrap_or(usize::MAX))
    }

    /// True when the stream state is **quiescent**: every emitted span
    /// has been drained, nothing is pending or unresolved, and the
    /// before-phase simulation sits in exactly its start configuration.
    /// From a quiescent position the continuation is the same function
    /// of the remaining bytes as a fresh stream's (shifted by the
    /// offset) — which makes quiescent positions the *stable resplit
    /// frontiers* of the incremental corpus-maintenance layer: an edit
    /// strictly between two quiescent positions can only change the
    /// segments between them.
    pub fn is_quiescent(&self) -> bool {
        if !self.out.is_empty() {
            return false;
        }
        match &self.mode {
            Mode::Dfa(d) => {
                let dfas = self.t.dfas.as_ref().expect("DFA mode has tables");
                d.pending.is_empty()
                    && d.candidates.is_empty()
                    && dfas.before_like_start[d.before as usize]
            }
            Mode::Sets(s) => {
                if !s.pending.is_empty() || !s.candidates.is_empty() {
                    return false;
                }
                let start = self.t.start as usize;
                s.before.iter().enumerate().all(|(w, &bits)| {
                    let expect = if w == start >> 6 {
                        1u64 << (start & 63)
                    } else {
                        0
                    };
                    bits == expect
                })
            }
        }
    }

    /// The largest stream position observed quiescent so far (0 — the
    /// fresh start — counts). Unlike [`SplitterState::is_quiescent`],
    /// which answers only for the *current* position, this is tracked
    /// byte by byte while stepping, so quiescent positions strictly
    /// inside a pushed chunk are found too — for delimiter-based
    /// splitters those are exactly the just-past-a-delimiter positions,
    /// which almost never coincide with chunk boundaries. The
    /// incremental corpus layer records these as its stable resplit
    /// frontiers.
    pub fn last_quiescent(&self) -> usize {
        self.quiet
    }

    /// Consumes a chunk of the document and returns the split spans
    /// (absolute stream offsets) that became releasable, in ascending
    /// `(start, end)` order across the whole stream.
    ///
    /// In DFA mode, whenever nothing is unresolved (no pending opens, no
    /// unreleased candidates) and the before state is inert on most
    /// bytes, the scanner jumps straight to the next escape byte —
    /// skipped positions provably change nothing, so emitted spans and
    /// [`SplitterState::low_watermark`] stay exactly as in the stepped
    /// simulation (skipped bytes fall below the watermark immediately,
    /// composing with the execution layer's chunk-boundary buffering).
    pub fn push(&mut self, chunk: &[u8]) -> Vec<Span> {
        if matches!(self.mode, Mode::Sets(_)) {
            for &b in chunk {
                self.step_sets(b);
            }
            return std::mem::take(&mut self.out);
        }
        let mut i = 0;
        while i < chunk.len() {
            let jump = match (&self.mode, self.t.dfas.as_ref()) {
                (Mode::Dfa(d), Some(dfas)) if d.pending.is_empty() && d.candidates.is_empty() => {
                    let like = dfas.before_like_start[d.before as usize];
                    dfas.before_skip[d.before as usize]
                        .as_ref()
                        .map(|f| (f.find(&chunk[i..]), like))
                }
                _ => None,
            };
            if let Some((hit, like)) = jump {
                // Jump over the inert run (possibly the whole chunk).
                let j = hit.unwrap_or(chunk.len() - i);
                self.pos += j;
                self.skipped += j as u64;
                i += j;
                if like {
                    // Inert run from a start-like state with nothing
                    // unresolved: every position in it is quiescent.
                    self.quiet = self.pos;
                }
                if i >= chunk.len() {
                    break;
                }
            }
            self.step_dfa(chunk[i]);
            i += 1;
        }
        std::mem::take(&mut self.out)
    }

    /// Ends the stream: applies the automaton's final blocks, resolving
    /// every remaining candidate, and returns the last spans.
    pub fn finish(mut self) -> Vec<Span> {
        let n = self.pos;
        let t = Arc::clone(&self.t);
        let mut spans: Vec<Span> = Vec::new();
        match &mut self.mode {
            Mode::Dfa(d) => {
                let dfas = t.dfas.as_ref().expect("DFA mode has tables");
                for (i, id) in d.pending.drain(..) {
                    if dfas.inside_close_at_end[id as usize] {
                        spans.push(Span::new(i, n));
                    }
                }
                if dfas.before_oc_at_end[d.before as usize] {
                    spans.push(Span::new(n, n));
                }
                for c in d.candidates.drain(..) {
                    if c.confirmed || dfas.after_accepting[c.after as usize] {
                        spans.push(c.span);
                    }
                }
            }
            Mode::Sets(s) => {
                for (i, set) in s.pending.drain(..) {
                    if intersects(&set, &t.final_close) {
                        spans.push(Span::new(i, n));
                    }
                }
                if intersects(&s.before, &t.final_open_close) {
                    spans.push(Span::new(n, n));
                }
                for c in s.candidates.drain(..) {
                    if c.confirmed || intersects(&c.states, &t.final_plain) {
                        spans.push(c.span);
                    }
                }
            }
        }
        spans.sort_unstable();
        spans.dedup();
        let mut out = std::mem::take(&mut self.out);
        out.extend(spans);
        out
    }

    /// One byte in DFA mode: array lookups only.
    fn step_dfa(&mut self, b: u8) {
        let t = &self.t;
        let dfas = t.dfas.as_ref().expect("DFA mode has tables");
        let nc = t.nc;
        let c = t.classes.class_of(b);
        let p = self.pos;
        let Mode::Dfa(d) = &mut self.mode else {
            unreachable!("mode checked by caller");
        };

        // After-phase candidates.
        let mut i = 0;
        while i < d.candidates.len() {
            let cand = &mut d.candidates[i];
            if !cand.confirmed {
                let next = dfas.after_next[cand.after as usize * nc + c];
                if next == 0 {
                    d.candidates.remove(i);
                    continue;
                }
                cand.after = next;
                cand.confirmed = dfas.after_universal[next as usize];
            }
            i += 1;
        }

        // Inside-phase frontiers: close into candidates `[i, p⟩`, stay
        // inside on plain transitions.
        let mut new_candidates: Vec<(Span, u32)> = Vec::new();
        let mut k = 0;
        while k < d.pending.len() {
            let (start, id) = d.pending[k];
            let closed = dfas.inside_close[id as usize * nc + c];
            if closed != 0 {
                new_candidates.push((Span::new(start, p), closed));
            }
            let next = dfas.inside_next[id as usize * nc + c];
            if next == 0 {
                d.pending.remove(k);
            } else {
                d.pending[k].1 = next;
                k += 1;
            }
        }

        // Before-phase frontier: open at p / empty span at p / stay.
        let opened = dfas.before_open[d.before as usize * nc + c];
        let oc = dfas.before_oc[d.before as usize * nc + c];
        if oc != 0 {
            new_candidates.push((Span::new(p, p), oc));
        }
        d.before = dfas.before_next[d.before as usize * nc + c];
        if opened != 0 {
            d.pending.push((p, opened));
        }

        for (span, after) in new_candidates {
            let confirmed = dfas.after_universal[after as usize];
            let at = d
                .candidates
                .binary_search_by_key(&(span.start, span.end), |c| (c.span.start, c.span.end))
                .unwrap_err();
            d.candidates.insert(
                at,
                DfaCandidate {
                    span,
                    after,
                    confirmed,
                },
            );
        }

        self.pos = p + 1;
        // Release confirmed candidates in sorted order while no pending
        // open with a smaller start can still produce an earlier span.
        while let Some(front) = d.candidates.first() {
            if !front.confirmed {
                break;
            }
            if d.pending
                .first()
                .is_some_and(|(i, _)| *i < front.span.start)
            {
                break;
            }
            self.out.push(d.candidates.remove(0).span);
        }
        if d.pending.is_empty()
            && d.candidates.is_empty()
            && dfas.before_like_start[d.before as usize]
        {
            self.quiet = self.pos;
        }
    }

    /// One byte in set mode: exact NFA frontier stepping. Allocation-free
    /// except when a new candidate span is created.
    fn step_sets(&mut self, b: u8) {
        let t = Arc::clone(&self.t);
        let c = t.classes.class_of(b);
        let p = self.pos;
        let Mode::Sets(s) = &mut self.mode else {
            unreachable!("mode checked by caller");
        };

        // After-phase candidates advance on operation-free transitions.
        let mut any_unconfirmed = false;
        for cand in &mut s.candidates {
            if cand.confirmed {
                continue;
            }
            any_unconfirmed = true;
            s.scratch.iter_mut().for_each(|w| *w = 0);
            t.step_into(&t.plain, &cand.states, c, &mut s.scratch);
            std::mem::swap(&mut cand.states, &mut s.scratch);
        }
        if any_unconfirmed {
            s.candidates.retain(|c| c.confirmed || !is_zero(&c.states));
        }

        // Inside-phase frontiers stay inside on plain transitions and
        // close into new candidates [i, p⟩ (the close op precedes the
        // byte, so byte `p` is outside the span).
        let mut new_candidates: Vec<(Span, Vec<u64>)> = Vec::new();
        for idx in 0..s.pending.len() {
            let (i, ref set) = s.pending[idx];
            s.close_buf.iter_mut().for_each(|w| *w = 0);
            t.step_into(&t.close, set, c, &mut s.close_buf);
            if !is_zero(&s.close_buf) {
                new_candidates.push((Span::new(i, p), s.close_buf.clone()));
            }
            s.scratch.iter_mut().for_each(|w| *w = 0);
            t.step_into(&t.plain, set, c, &mut s.scratch);
            std::mem::swap(&mut s.pending[idx].1, &mut s.scratch);
        }
        s.pending.retain(|(_, set)| !is_zero(set));

        // Before-phase frontier: stay before, open at p, or emit the
        // empty span [p, p⟩ via an open+close block.
        s.open_buf.iter_mut().for_each(|w| *w = 0);
        t.step_into(&t.open, &s.before, c, &mut s.open_buf);
        s.close_buf.iter_mut().for_each(|w| *w = 0);
        t.step_into(&t.open_close, &s.before, c, &mut s.close_buf);
        if !is_zero(&s.close_buf) {
            new_candidates.push((Span::new(p, p), s.close_buf.clone()));
        }
        s.scratch.iter_mut().for_each(|w| *w = 0);
        t.step_into(&t.plain, &s.before, c, &mut s.scratch);
        std::mem::swap(&mut s.before, &mut s.scratch);
        if !is_zero(&s.open_buf) {
            s.pending.push((p, s.open_buf.clone()));
        }

        for (span, states) in new_candidates {
            let confirmed = check_universal(&t, &mut s.universal, &states);
            insert_set_candidate(&t, s, span, states, confirmed);
        }
        // Unconfirmed survivors may have stepped into a universal
        // frontier; re-check (memoized, so this is a hash lookup in the
        // common case).
        if any_unconfirmed {
            for idx in 0..s.candidates.len() {
                if !s.candidates[idx].confirmed {
                    s.candidates[idx].confirmed =
                        check_universal(&t, &mut s.universal, &s.candidates[idx].states);
                }
            }
        }

        self.pos = p + 1;
        while let Some(front) = s.candidates.first() {
            if !front.confirmed {
                break;
            }
            if s.pending
                .first()
                .is_some_and(|(i, _)| *i < front.span.start)
            {
                break;
            }
            self.out.push(s.candidates.remove(0).span);
        }
        if s.pending.is_empty() && s.candidates.is_empty() {
            let start = t.start as usize;
            let at_start = s.before.iter().enumerate().all(|(w, &bits)| {
                let expect = if w == start >> 6 {
                    1u64 << (start & 63)
                } else {
                    0
                };
                bits == expect
            });
            if at_start {
                self.quiet = self.pos;
            }
        }
    }
}

/// Inserts a set-mode candidate keeping `(start, end)` order, merging
/// frontiers when the same span is produced by several runs.
fn insert_set_candidate(
    t: &StreamTables,
    s: &mut SetState,
    span: Span,
    states: Vec<u64>,
    confirmed: bool,
) {
    match s
        .candidates
        .binary_search_by_key(&(span.start, span.end), |c| (c.span.start, c.span.end))
    {
        Ok(i) => {
            let c = &mut s.candidates[i];
            c.confirmed = c.confirmed || confirmed;
            if !c.confirmed {
                for (w, x) in c.states.iter_mut().zip(states.iter()) {
                    *w |= x;
                }
                let merged = c.states.clone();
                s.candidates[i].confirmed = check_universal(t, &mut s.universal, &merged);
            }
        }
        Err(i) => s.candidates.insert(
            i,
            SetCandidate {
                span,
                states,
                confirmed,
            },
        ),
    }
}

/// Whether every continuation of the stream is accepted from the
/// after-phase frontier `set`: BFS over the power-set automaton
/// restricted to operation-free transitions, requiring every reachable
/// frontier (including `set`) to intersect the empty-block finals.
/// Memoized; exploration is capped at [`MAX_UNIVERSALITY_SETS`] (cap hit
/// ⇒ conservative `false`).
fn check_universal(t: &StreamTables, memo: &mut HashMap<Vec<u64>, bool>, set: &[u64]) -> bool {
    if let Some(&v) = memo.get(set) {
        return v;
    }
    let mut visited: Vec<Vec<u64>> = vec![set.to_vec()];
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    seen.insert(set.to_vec());
    let mut i = 0;
    let mut verdict = true;
    'bfs: while i < visited.len() {
        let cur = visited[i].clone();
        i += 1;
        if !intersects(&cur, &t.final_plain) || memo.get(&cur) == Some(&false) {
            verdict = false;
            break 'bfs;
        }
        if memo.get(&cur) == Some(&true) {
            continue;
        }
        for c in 0..t.nc {
            let mut next = vec![0u64; t.words];
            t.step_into(&t.plain, &cur, c, &mut next);
            if !seen.contains(&next) {
                if visited.len() >= MAX_UNIVERSALITY_SETS {
                    verdict = false;
                    break 'bfs;
                }
                seen.insert(next.clone());
                visited.push(next);
            }
        }
    }
    if verdict {
        // Everything reachable from a universal frontier is itself
        // universal (its reachable sets are a subset).
        for v in visited {
            memo.insert(v, true);
        }
    } else {
        // Only the query frontier is known non-universal; reached
        // frontiers need not be able to reach the failing one.
        memo.insert(set.to_vec(), false);
    }
    memo[set]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitter::{self, Splitter};
    use crate::vars::VarId;

    /// Splits `doc` through a streaming state with the given chunking
    /// and phase-DFA budget.
    fn stream_split_budget(s: &Splitter, doc: &[u8], chunk: usize, budget: usize) -> Vec<Span> {
        let evsa = {
            let f = if s.vsa().is_functional() {
                s.vsa().trim()
            } else {
                s.vsa().functionalize()
            };
            crate::evsa::EVsa::from_functional(&f)
        };
        let tables = Arc::new(StreamTables::compile_with_budget(&evsa, budget));
        let mut st = SplitterState::new(tables);
        let mut out = Vec::new();
        for piece in doc.chunks(chunk.max(1)) {
            out.extend(st.push(piece));
        }
        out.extend(st.finish());
        out
    }

    /// Splits `doc` through the compiled splitter's streaming state.
    fn stream_split(s: &Splitter, doc: &[u8], chunk: usize) -> Vec<Span> {
        let compiled = s.compile();
        let mut st = compiled.stream();
        let mut out = Vec::new();
        for piece in doc.chunks(chunk.max(1)) {
            out.extend(st.push(piece));
        }
        out.extend(st.finish());
        out
    }

    fn check(s: &Splitter, doc: &[u8]) {
        let batch = s.compile().split(doc);
        for chunk in [1, 2, 3, 5, doc.len().max(1)] {
            assert_eq!(
                stream_split(s, doc, chunk),
                batch,
                "doc {:?} chunk {chunk} (dfa mode)",
                String::from_utf8_lossy(doc)
            );
            // Budget 0 forces the set-based fallback; results must be
            // identical.
            assert_eq!(
                stream_split_budget(s, doc, chunk, 0),
                batch,
                "doc {:?} chunk {chunk} (set mode)",
                String::from_utf8_lossy(doc)
            );
        }
    }

    #[test]
    fn sentences_stream_equals_batch() {
        let s = splitter::sentences();
        for doc in [
            b"Hello world. How are you. Fine".as_slice(),
            b"",
            b"...",
            b"no delimiter at all",
            b"trailing.",
            b".leading",
        ] {
            check(&s, doc);
        }
    }

    #[test]
    fn lines_and_paragraphs_stream() {
        check(&splitter::lines(), b"a b\nc\n\nd\n");
        check(&splitter::paragraphs(), b"p one\nstill one\n\np two");
        check(&splitter::paragraphs(), b"a\n\n\nb\n");
    }

    #[test]
    fn overlapping_splitters_stream() {
        check(&splitter::ngrams(2), b"one two three four");
        check(&splitter::char_windows(3), b"abcdef");
        check(&splitter::ngram_windows(2), b"aa.bb cc");
    }

    #[test]
    fn nested_spans_released_in_sorted_order() {
        // x{abc} | a(x{b})c produces the nested spans [0,3⟩ and [1,2⟩;
        // sorted order requires the outer span first even though the
        // inner one closes earlier.
        let s = Splitter::parse("x{abc}|a(x{b})c").unwrap();
        check(&s, b"abc");
        check(&s, b"abd");
    }

    #[test]
    fn paper_example_5_8_streams() {
        let s = Splitter::parse("x{ab}b|a(x{bb})").unwrap();
        check(&s, b"abb");
        check(&s, b"abab");
    }

    #[test]
    fn empty_spans_stream() {
        check(&Splitter::parse("x{aa}|a(x{})a").unwrap(), b"aa");
        check(&Splitter::parse("x{.*}").unwrap(), b"");
        check(&Splitter::parse("x{.*}").unwrap(), b"abc");
    }

    #[test]
    fn non_universal_suffix_resolves_at_finish() {
        // After the close, `b*` does not accept every continuation, so
        // candidates stay buffered until finish — results still match.
        let s = Splitter::parse("x{a*}b*").unwrap();
        check(&s, b"aabb");
        check(&s, b"aaba"); // dies: 'a' after 'b'
        check(&s, b"");
    }

    #[test]
    fn default_budget_compiles_builtins_to_dfas() {
        for s in [
            splitter::sentences(),
            splitter::lines(),
            splitter::paragraphs(),
            splitter::ngrams(2),
        ] {
            let evsa = crate::evsa::EVsa::from_functional(&s.vsa().trim());
            let t = StreamTables::compile(&evsa);
            assert!(t.uses_phase_dfas(), "builtin splitter within budget");
            let off = StreamTables::compile_with_budget(&evsa, 0);
            assert!(!off.uses_phase_dfas(), "budget 0 must disable DFAs");
        }
    }

    #[test]
    fn skip_loop_streams_sparse_splitters_exactly() {
        // Spans open only after a 'q'; everything before is inert, so
        // the scanner jumps it. Results must match batch splitting for
        // every chunking, and skipped bytes must be substantial.
        let s = Splitter::parse(".*q(x{a+})(q.*)?").unwrap();
        let mut doc = vec![b'b'; 512];
        doc.extend_from_slice(b"qaaa");
        doc.extend(vec![b'b'; 17]);
        check(&s, &doc);
        let compiled = s.compile();
        for chunk in [1usize, 7, 64, doc.len()] {
            let mut st = compiled.stream();
            let mut got = Vec::new();
            for piece in doc.chunks(chunk) {
                got.extend(st.push(piece));
            }
            let skipped = st.bytes_skipped();
            got.extend(st.finish());
            assert_eq!(got, compiled.split(&doc), "chunk {chunk}");
            assert!(
                skipped > 400,
                "scanner should cross the inert prefix (chunk {chunk}): {skipped}"
            );
        }
        // Dense splitters never skip incorrectly either (sentences open
        // everywhere, so pending keeps the loop stepping).
        let mut st = splitter::sentences().compile().stream();
        let _ = st.push(b"aa.bb.cc");
        let _ = st.finish();
    }

    #[test]
    fn dead_before_frontier_skips_whole_chunks() {
        // x{a}b: after a non-matching prefix the before frontier dies
        // with nothing pending; the rest of the stream is jumped.
        let s = Splitter::parse("x{a}b").unwrap();
        let compiled = s.compile();
        let mut st = compiled.stream();
        let mut doc = vec![b'c'];
        doc.extend(vec![b'z'; 100]);
        let mut got = st.push(&doc);
        assert!(st.bytes_skipped() >= 100, "{}", st.bytes_skipped());
        got.extend(st.finish());
        assert_eq!(got, compiled.split(&doc));
    }

    #[test]
    fn low_watermark_bounds_buffering_for_disjoint_splitters() {
        let s = splitter::sentences().compile();
        let mut st = s.stream();
        let doc = b"one one. two two. three three.";
        for (i, &b) in doc.iter().enumerate() {
            let _ = st.push(std::slice::from_ref(&b));
            // The watermark never lags more than the current segment.
            let lag = st.pos() - st.low_watermark();
            assert!(lag <= 12, "lag {lag} at byte {i}");
        }
        assert_eq!(st.pending_segments(), 0);
        assert_eq!(st.finish(), Vec::new());
    }

    #[test]
    fn spans_are_absolute_across_chunks() {
        let s = splitter::sentences().compile();
        let mut st = s.stream();
        let mut got = st.push(b"aa.b");
        got.extend(st.push(b"b.cc"));
        got.extend(st.finish());
        assert_eq!(got, vec![Span::new(0, 2), Span::new(3, 5), Span::new(6, 8)]);
    }

    #[test]
    fn stream_matches_dense_eval_directly() {
        // Belt and braces: the emitted spans equal the dense engine's
        // tuple enumeration, not just the batch splitter wrapper.
        let s = splitter::sentences();
        let c = s.compile();
        let doc = b"aa.bb cc.dd";
        let spans: Vec<Span> = c
            .dense()
            .eval(doc)
            .iter()
            .map(|t| t.get(VarId(0)))
            .collect();
        assert_eq!(stream_split(&s, doc, 4), spans);
    }
}
