//! Unambiguous finite automata: ambiguity testing and polynomial-time
//! containment (Stearns & Hunt 1985).
//!
//! An NFA is *unambiguous* if every word has at most one accepting run.
//! Containment `L(A) ⊆ L(B)` for unambiguous `A` and `B` is decidable in
//! polynomial time: because runs and words are in bijection,
//! `L(A) ⊆ L(B)` iff for every length `n` the number of accepting paths of
//! `A` equals the number of accepting paths of the product `A × B` (which
//! is again unambiguous). Both count sequences satisfy linear recurrences
//! of order ≤ their state counts, so agreement on lengths
//! `0 ..= |Q_A| + |Q_{A×B}|` implies agreement everywhere.
//!
//! This is the engine behind the paper's polynomial-time cover-condition
//! check for deterministic functional VSet-automata with disjoint splitters
//! (Lemma 5.6).

use crate::counting::{path_counts_mod, COUNT_PRIMES};
use crate::nfa::{Nfa, StateId};
use std::collections::{HashSet, VecDeque};

/// Tests whether the automaton is unambiguous (at most one accepting run
/// per word). ε-transitions are eliminated and the automaton trimmed first;
/// ambiguity is judged on the normalized automaton.
///
/// Pair-product criterion with a "diverged" flag: the (ε-eliminated,
/// trimmed) automaton is ambiguous iff the self-product can reach, on the
/// same word, a pair of final states after the two runs have differed in at
/// least one state. The flag is necessary because two distinct runs may
/// re-converge to the same final state.
pub fn is_unambiguous(nfa: &Nfa) -> bool {
    let n = nfa.remove_eps().trim();
    if n.num_states() == 0 {
        return true;
    }
    !has_two_accepting_runs(&n)
}

/// Detects two distinct runs on the same word that end in (possibly equal)
/// final states: the pair product with a "diverged" flag.
fn has_two_accepting_runs(n: &Nfa) -> bool {
    let mut seen: HashSet<(StateId, StateId, bool)> = HashSet::new();
    let mut queue: VecDeque<(StateId, StateId, bool)> = VecDeque::new();
    for &s1 in n.starts() {
        for &s2 in n.starts() {
            let (a, b) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            let diverged = a != b;
            if seen.insert((a, b, diverged)) {
                queue.push_back((a, b, diverged));
            }
        }
    }
    while let Some((p, q, diverged)) = queue.pop_front() {
        if diverged && n.is_final(p) && n.is_final(q) {
            return true;
        }
        for &(s1, r1) in n.transitions_from(p) {
            for &(s2, r2) in n.transitions_from(q) {
                if s1 != s2 {
                    continue;
                }
                // remove_eps deduplicates parallel edges, so from p == q a
                // pair (r1, r2) with r1 == r2 is the same edge taken twice
                // (the same run), and r1 != r2 is a genuine divergence.
                let d2 = diverged || r1 != r2;
                let (a, b) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
                if seen.insert((a, b, d2)) {
                    queue.push_back((a, b, d2));
                }
            }
        }
    }
    false
}

/// Error raised by [`ufa_contains`] when an input is ambiguous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmbiguousInput {
    /// Which side was ambiguous: `"left"` or `"right"`.
    pub side: &'static str,
}

impl std::fmt::Display for AmbiguousInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} automaton is ambiguous", self.side)
    }
}

impl std::error::Error for AmbiguousInput {}

/// Polynomial-time containment for unambiguous automata, verifying
/// unambiguity of both inputs first.
pub fn ufa_contains(a: &Nfa, b: &Nfa) -> Result<bool, AmbiguousInput> {
    if !is_unambiguous(a) {
        return Err(AmbiguousInput { side: "left" });
    }
    if !is_unambiguous(b) {
        return Err(AmbiguousInput { side: "right" });
    }
    Ok(ufa_contains_unchecked(a, b))
}

/// Polynomial-time containment for automata the caller guarantees to be
/// unambiguous (e.g. by construction, as in Lemma 5.6 of the paper).
///
/// Compares accepting-path counts of `a` and of the product `a × b` for all
/// word lengths up to the Cayley–Hamilton bound, modulo several large
/// primes (see [`COUNT_PRIMES`]).
pub fn ufa_contains_unchecked(a: &Nfa, b: &Nfa) -> bool {
    debug_assert_eq!(a.alphabet_size(), b.alphabet_size());
    let an = a.remove_eps().trim();
    let bn = b.remove_eps().trim();
    if an.num_states() == 0 {
        return true; // empty language contained in anything
    }
    let prod = an.intersect(&bn).trim();
    let bound = an.num_states() + prod.num_states() + 1;
    for &p in COUNT_PRIMES.iter() {
        let ca = path_counts_mod(&an, bound, p);
        let cp = path_counts_mod(&prod, bound, p);
        if ca != cp {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Sym;
    use crate::ops::contains;

    fn sigma_star(asize: u32) -> Nfa {
        let mut n = Nfa::new(asize);
        let q = n.add_state();
        n.add_start(q);
        n.set_final(q, true);
        for s in 0..asize {
            n.add_transition(q, Sym(s), q);
        }
        n
    }

    fn word_nfa(asize: u32, w: &[u32]) -> Nfa {
        let mut n = Nfa::new(asize);
        let mut q = n.add_state();
        n.add_start(q);
        for &c in w {
            let r = n.add_state();
            n.add_transition(q, Sym(c), r);
            q = r;
        }
        n.set_final(q, true);
        n
    }

    #[test]
    fn dfa_is_unambiguous() {
        assert!(is_unambiguous(&sigma_star(2)));
        assert!(is_unambiguous(&word_nfa(2, &[0, 1])));
    }

    #[test]
    fn parallel_paths_are_ambiguous() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), q1);
        n.add_transition(q0, Sym(0), q2);
        n.add_transition(q1, Sym(0), f);
        n.add_transition(q2, Sym(0), f);
        n.set_final(f, true);
        assert!(!is_unambiguous(&n)); // two runs for "aa", re-converging
    }

    #[test]
    fn diverge_without_accept_is_fine() {
        // Nondeterministic but unambiguous: (a a) | (a b), sharing prefix
        // via two branches — each word has one accepting run.
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        let f1 = n.add_state();
        let f2 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), q1);
        n.add_transition(q0, Sym(0), q2);
        n.add_transition(q1, Sym(0), f1);
        n.add_transition(q2, Sym(1), f2);
        n.set_final(f1, true);
        n.set_final(f2, true);
        assert!(is_unambiguous(&n));
    }

    #[test]
    fn ufa_containment_agrees_with_general() {
        // a* ⊆ Σ*, Σ* ⊄ a*
        let mut astar = Nfa::new(2);
        let q = astar.add_state();
        astar.add_start(q);
        astar.set_final(q, true);
        astar.add_transition(q, Sym(0), q);
        let ss = sigma_star(2);
        assert!(ufa_contains(&astar, &ss).unwrap());
        assert!(!ufa_contains(&ss, &astar).unwrap());
        assert_eq!(
            contains(&astar, &ss).holds(),
            ufa_contains(&astar, &ss).unwrap()
        );
    }

    #[test]
    fn ambiguous_input_is_rejected() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let f1 = n.add_state();
        let f2 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), f1);
        n.add_transition(q0, Sym(0), f2);
        n.set_final(f1, true);
        n.set_final(f2, true);
        assert_eq!(ufa_contains(&n, &sigma_star(1)).unwrap_err().side, "left");
    }

    #[test]
    fn equal_languages_contained_both_ways() {
        // Two different unambiguous automata for a+: chain-based and loop.
        let mut a = Nfa::new(1);
        let q0 = a.add_state();
        let q1 = a.add_state();
        a.add_start(q0);
        a.add_transition(q0, Sym(0), q1);
        a.add_transition(q1, Sym(0), q1);
        a.set_final(q1, true);
        let mut b = Nfa::new(1);
        let p0 = b.add_state();
        let p1 = b.add_state();
        b.add_start(p0);
        b.add_transition(p0, Sym(0), p0);
        b.add_transition(p0, Sym(0), p1);
        b.set_final(p1, true);
        // b is ambiguous? For word a^n there is exactly one run: loop p0
        // n-1 times then move to p1. Unambiguous.
        assert!(is_unambiguous(&b));
        assert!(ufa_contains(&a, &b).unwrap());
        assert!(ufa_contains(&b, &a).unwrap());
    }
}
