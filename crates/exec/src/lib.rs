#![warn(missing_docs)]
//! Parallel and incremental execution of split spanner evaluation.
//!
//! The paper's Introduction motivates split-correctness with three
//! operational payoffs, all implemented here:
//!
//! * **Parallel evaluation** ([`engine`]): once `P = P_S ∘ S` is
//!   certified, a document is split by `S` and `P_S` is evaluated on the
//!   chunks by a worker pool, with results shifted (`≫`) and unioned —
//!   semantically identical to evaluating `P` on the whole document
//!   (guaranteed by the decision procedures of `splitc-core`).
//! * **Fine-grained scheduling** ([`engine::evaluate_many_split`]): even
//!   for pre-parallel collections of small documents, splitting yields
//!   more, smaller tasks and measurably better pool utilization — the
//!   paper's Spark observation (§1 "Further motivation").
//! * **Incremental maintenance** ([`incremental`]): per-segment result
//!   caching keyed by segment content, so re-evaluating an edited
//!   document only recomputes the touched segments (the paper's
//!   Wikipedia-edit scenario).
//! * **Streaming sharded corpus execution** ([`stream`], [`corpus`]):
//!   documents are split *while being read* (chunk by chunk, constant
//!   memory via [`stream::StreamingSplitter`]) and the resulting
//!   segments are batched and fanned out to a worker pool over a
//!   bounded queue with per-worker dense-engine caches
//!   ([`corpus::CorpusRunner`]) — the shape that scales split-correct
//!   evaluation to corpora larger than memory.
//! * **Fused fleet evaluation** ([`fleet`]): many spanners over the
//!   same corpus in *one* streamed pass — one splitter, one shared byte
//!   partition, one merged multi-needle literal scan dispatching each
//!   segment only to the members with evidence in it
//!   ([`fleet::FleetRunner`]).
//! * **Batch certification** ([`certify`]): the step *before* any of
//!   the above — a fleet of `(P, P_S)` pairs sharing one splitter is
//!   certified split-correct on a worker pool, with the composed
//!   spanners memoized across pairs and the antichain containment
//!   engine on the general route ([`certify::certify_many`]).
//! * **Long-lived worker pools** ([`pool`]): [`pool::EvalPool`] is a
//!   reusable self-draining thread pool the runners share via
//!   [`corpus::CorpusRunner::with_pool`] /
//!   [`fleet::FleetRunner::with_pool`] — a service handling many
//!   requests pays thread spawn/teardown once per process instead of
//!   once per call (the default constructors still spawn per-call
//!   workers, so one-shot uses are unchanged).
//!
//! The repository's top-level `ARCHITECTURE.md` shows where this crate
//! sits in the full pipeline (regex → VSA/eVSA → engines → execution).

pub mod annotated;
pub mod certify;
pub mod corpus;
pub mod engine;
pub mod fleet;
pub mod handle;
pub mod incremental;
pub mod options;
pub mod pool;
pub mod segcache;
pub mod simulate;
pub mod stream;

pub use annotated::{AnnotatedPlan, AnnotatedSplitFn};
pub use certify::{
    certify_many, CertPath, Certification, CertifyConfig, CertifyResult, CertifyStats,
};
pub use corpus::{CorpusResult, CorpusRunner, CorpusRunnerConfig, CorpusStats};
pub use engine::{
    evaluate_many, evaluate_many_split, evaluate_sequential, evaluate_split, Engine, ExecSpanner,
    SplitFn,
};
pub use fleet::{Fleet, FleetResult, FleetRunner, FleetStats};
pub use handle::{CorpusHandle, DeltaStats};
pub use incremental::IncrementalRunner;
pub use options::{CompileOptions, RunnerOptions};
pub use pool::{EvalPool, EvalPoolStats};
pub use segcache::{SegCacheStats, SegmentCache};
pub use simulate::{simulate_collection, simulate_split, SimReport};
pub use stream::{Segment, StreamingSplitter};

#[cfg(test)]
mod proptests;
