//! Incremental maintenance under edits — the paper's Wikipedia-model
//! motivation (§1): after certifying `P = P ∘ S`, a small edit to the
//! document only requires re-processing the touched segments.
//!
//! ```sh
//! cargo run --release --example incremental_wiki
//! ```

use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};
use splitc_textgen::spanners;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Entity extraction, certified sentence-splittable.
    let p = spanners::entity_extractor();
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());
    println!("entity extractor certified self-splittable by sentences ✓");

    let cfg = CorpusConfig {
        target_bytes: 2 << 20,
        ..Default::default()
    };
    let mut doc = textgen::wiki_corpus(&cfg);

    let runner = IncrementalRunner::new(
        ExecSpanner::compile(&p),
        Arc::new(native_splitters::sentences) as SplitFn,
    );

    // Cold run: every segment is a miss.
    let t0 = Instant::now();
    let before = runner.eval(&doc);
    let cold = t0.elapsed();
    let s0 = runner.stats();
    println!(
        "cold run: {} entities, {} segments evaluated in {:?}",
        before.len(),
        s0.misses,
        cold
    );

    // Simulate a Wikipedia-style edit: overwrite a few bytes in the
    // middle of one sentence.
    let mid = doc.len() / 2;
    for (i, b) in b"Newname".iter().enumerate() {
        doc[mid + i] = *b;
    }

    let t0 = Instant::now();
    let after = runner.eval(&doc);
    let warm = t0.elapsed();
    let s1 = runner.stats();
    println!(
        "after edit: {} entities; recomputed {} segment(s), {} from cache, in {:?} \
         ({:.1}x faster than cold)",
        after.len(),
        s1.misses - s0.misses,
        s1.hits - s0.hits,
        warm,
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9),
    );
    assert!(
        s1.misses - s0.misses <= 2,
        "an in-sentence edit touches at most the edited segment(s)"
    );

    // The incremental result equals from-scratch evaluation.
    let direct = evaluate_sequential(&ExecSpanner::compile(&p), &doc);
    assert_eq!(after, direct);
    println!("incremental result equals from-scratch evaluation ✓");
}
