//! Antichain-pruned on-the-fly containment.
//!
//! The certification procedures reduce to language containment
//! `L(A) ⊆ L(B)` with a nondeterministic `B` — the PSPACE case. The
//! classical options are (a) determinize `B` up front (exponential in
//! `|B|` regardless of the instance) or (b) a plain lazy subset search
//! over pairs `(q, T)` of an `A`-state and a `B`-subset. This module
//! implements the stronger *antichain* algorithm (De Wulf, Doyen,
//! Henzinger, Raskin, CAV 2006): the lazy search additionally prunes
//! every macro-state `(q, T)` for which a previously discovered
//! `(q, T′)` with `T′ ⊆ T` exists.
//!
//! Pruning is sound by monotonicity of the subset transformer: if a
//! violating pair (accepting `q`, non-accepting `T`) is reachable from
//! `(q, T)`, the same suffix reaches a violation from every `(q, T′)`
//! with `T′ ⊆ T`, because `post(T′, w) ⊆ post(T, w)` and smaller
//! subsets accept less. Hence only the ⊆-minimal subsets per `A`-state
//! ever need to be explored; on the hard instances (e.g. the classic
//! `Σ*aΣ^k` family) the antichain frontier stays polynomial while full
//! determinization — and the unpruned lazy search — build `2^k` subsets.
//!
//! Two further properties matter to the callers:
//!
//! * **Shortest witnesses.** The search is breadth-first and a pruned
//!   pair is always subsumed by one discovered at the same depth or
//!   shallower, so the first violation found is still a shortest
//!   counterexample — the decision procedures decode it into a minimal
//!   witness document.
//! * **Alphabet collapse.** Before searching, the symbols of both
//!   automata are partitioned with [`crate::classes::ByteClasses`]
//!   machinery ([`ByteClassBuilder`]): two symbols that label exactly
//!   the same edges everywhere are explored once, through a
//!   representative. Extended spanner alphabets routinely collapse by
//!   an integer factor here.
//!
//! [`contains_determinize_first`] keeps the determinize-`B`-up-front
//! procedure as a differential reference and as the baseline of the
//! `t3_certification_scaling` benchmark.

use crate::classes::ByteClassBuilder;
use crate::dfa::{Dfa, DEAD};
use crate::nfa::{Nfa, StateId, Sym};
use crate::ops::Containment;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Search statistics of one antichain containment run (exposed for the
/// benchmark binaries and for tests asserting that pruning happens).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntichainStats {
    /// Macro-states `(q, T)` expanded by the search.
    pub explored: usize,
    /// Candidate macro-states pruned because a subset-smaller `T′` was
    /// already discovered for the same `A`-state.
    pub pruned: usize,
    /// Distinct `B`-subsets interned (the unpruned lazy search and full
    /// determinization intern at least as many).
    pub subsets: usize,
    /// Symbol classes actually explored per expansion.
    pub classes: usize,
    /// Raw alphabet size, for reporting the collapse factor.
    pub alphabet: usize,
}

/// Process-lifetime totals across every antichain containment run, for
/// long-running services that want to report aggregate search effort
/// (e.g. a certification server's `/stats` endpoint). Individual runs
/// report their own [`AntichainStats`]; these counters simply sum them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CumulativeAntichainStats {
    /// Containment runs completed since process start.
    pub runs: u64,
    /// Total macro-states expanded across all runs.
    pub explored: u64,
    /// Total candidates pruned by subsumption across all runs.
    pub pruned: u64,
    /// Total `B`-subsets interned across all runs.
    pub subsets: u64,
}

static CUM_RUNS: AtomicU64 = AtomicU64::new(0);
static CUM_EXPLORED: AtomicU64 = AtomicU64::new(0);
static CUM_PRUNED: AtomicU64 = AtomicU64::new(0);
static CUM_SUBSETS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-lifetime antichain counters. Monotone
/// non-decreasing; concurrent runs are each counted exactly once, on
/// completion.
pub fn cumulative_stats() -> CumulativeAntichainStats {
    CumulativeAntichainStats {
        runs: CUM_RUNS.load(Ordering::Relaxed),
        explored: CUM_EXPLORED.load(Ordering::Relaxed),
        pruned: CUM_PRUNED.load(Ordering::Relaxed),
        subsets: CUM_SUBSETS.load(Ordering::Relaxed),
    }
}

fn record_run(stats: &AntichainStats) {
    CUM_RUNS.fetch_add(1, Ordering::Relaxed);
    CUM_EXPLORED.fetch_add(stats.explored as u64, Ordering::Relaxed);
    CUM_PRUNED.fetch_add(stats.pruned as u64, Ordering::Relaxed);
    CUM_SUBSETS.fetch_add(stats.subsets as u64, Ordering::Relaxed);
}

/// Decides `L(a) ⊆ L(b)` by the antichain-pruned lazy subset search,
/// returning a shortest counterexample on failure.
pub fn contains(a: &Nfa, b: &Nfa) -> Containment {
    contains_with_stats(a, b).0
}

/// [`contains`] plus search statistics.
///
/// The search proceeds layer by layer (breadth-first). Each layer of
/// candidate macro-states is **minimized before expansion**: a candidate
/// `(q, T)` is dropped when a previous layer or the same layer already
/// holds `(q, T′)` with `T′ ⊆ T`. Same-depth pruning is what keeps hard
/// frontiers small — the subsuming sparse subset of a layer is typically
/// discovered *after* its rich siblings — and it preserves shortest
/// witnesses, because pruner and pruned sit at equal BFS depth.
pub fn contains_with_stats(a: &Nfa, b: &Nfa) -> (Containment, AntichainStats) {
    debug_assert_eq!(a.alphabet_size(), b.alphabet_size());
    let a = a.remove_eps();
    let b = b.remove_eps();
    let classes = SymClasses::build(a.alphabet_size(), [&a, &b]);
    let mut stats = AntichainStats {
        classes: classes.reps.len(),
        alphabet: a.alphabet_size() as usize,
        ..AntichainStats::default()
    };

    // Interned B-subsets (sorted, deduplicated state vectors).
    let mut subsets: Subsets = Subsets::default();
    let mut b_start: Vec<StateId> = b.starts().to_vec();
    b_start.sort_unstable();
    b_start.dedup();
    let t0 = subsets.intern(b_start, &b);

    // Per-A-state antichain of ⊆-minimal surviving subset ids.
    let mut minimal: Vec<Vec<u32>> = vec![Vec::new(); a.num_states()];
    // Exact pairs already generated — an O(1) prune for the common
    // deterministic-B case (singleton subsets, where the chain scan
    // degenerates into a linear search).
    let mut seen: HashSet<(StateId, u32)> = HashSet::new();

    // Survivor nodes with parent pointers for witness reconstruction,
    // and candidate discoveries awaiting the next layer's minimization.
    type Parent = (Option<(usize, Sym)>, StateId, u32);
    type Candidate = (StateId, u32, Option<(usize, Sym)>);
    let mut parents: Vec<Parent> = Vec::new();

    let reconstruct = |parents: &Vec<Parent>, mut node: usize| {
        let mut word: Vec<Sym> = Vec::new();
        while let (Some((p, s)), _, _) = parents[node] {
            word.push(s);
            node = p;
        }
        word.reverse();
        word
    };

    // Seed layer: one candidate per distinct A-start state.
    let mut a_starts: Vec<StateId> = a.starts().to_vec();
    a_starts.sort_unstable();
    a_starts.dedup();
    let mut candidates: Vec<Candidate> = a_starts.iter().map(|&qa| (qa, t0, None)).collect();

    let mut frontier: Vec<usize> = Vec::new();
    loop {
        // Minimize the candidate layer into the next frontier. Sorting
        // by subset size lets sparse candidates prune their same-layer
        // rich siblings in one pass.
        frontier.clear();
        candidates.sort_by_key(|&(qa, tid, _)| (qa, subsets.get(tid).len(), tid));
        candidates.dedup_by_key(|&mut (qa, tid, _)| (qa, tid));
        for (qa, tid, from) in candidates.drain(..) {
            if !seen.insert((qa, tid)) {
                stats.pruned += 1;
                continue;
            }
            let t = subsets.get(tid);
            let chain = &mut minimal[qa as usize];
            if chain.iter().any(|&prev| is_subset(subsets.get(prev), t)) {
                stats.pruned += 1;
                continue;
            }
            chain.retain(|&prev| !is_subset(t, subsets.get(prev)));
            chain.push(tid);
            parents.push((from, qa, tid));
            frontier.push(parents.len() - 1);
        }
        if frontier.is_empty() {
            break;
        }

        // Violation check across the layer (all nodes share one depth,
        // so any violating node yields a shortest counterexample).
        for &node in &frontier {
            let (_, qa, tid) = parents[node];
            if a.is_final(qa) && !subsets.is_final(tid) {
                stats.subsets = subsets.len();
                record_run(&stats);
                return (
                    Containment::Counterexample(reconstruct(&parents, node)),
                    stats,
                );
            }
        }

        // Expand the layer.
        for &node in &frontier {
            let (_, qa, tid) = parents[node];
            stats.explored += 1;
            // A-successors grouped by symbol class (deterministic order
            // so witness choice does not depend on hash randomization).
            let mut by_class: BTreeMap<usize, Vec<StateId>> = BTreeMap::new();
            for &(s, ra) in a.transitions_from(qa) {
                by_class.entry(classes.class_of(s)).or_default().push(ra);
            }
            for (class, mut ra_list) in by_class {
                ra_list.sort_unstable();
                ra_list.dedup();
                let rep = classes.reps[class];
                let mut succ: Vec<StateId> = Vec::new();
                for &qb in subsets.get(tid) {
                    for &(s2, rb) in b.transitions_from(qb) {
                        if s2 == rep {
                            succ.push(rb);
                        }
                    }
                }
                succ.sort_unstable();
                succ.dedup();
                let t2 = subsets.intern(succ, &b);
                for &ra in &ra_list {
                    candidates.push((ra, t2, Some((node, rep))));
                }
            }
        }
    }
    stats.subsets = subsets.len();
    record_run(&stats);
    (Containment::Contained, stats)
}

/// The determinize-first reference: builds the full subset automaton of
/// `b` up front ([`Dfa::determinize`], exponential regardless of the
/// instance), then BFS over the `a × DFA` product for a shortest
/// counterexample. Kept for differential testing and as the baseline the
/// antichain engine is benchmarked against.
pub fn contains_determinize_first(a: &Nfa, b: &Nfa) -> Containment {
    debug_assert_eq!(a.alphabet_size(), b.alphabet_size());
    let a = a.remove_eps();
    let bd = Dfa::determinize(b);

    // BFS over (A-state, DFA-state) pairs; `DEAD` is the rejecting sink.
    type Parent = (Option<(usize, Sym)>, StateId, StateId);
    let mut seen: HashSet<(StateId, StateId)> = HashSet::new();
    let mut parents: Vec<Parent> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let mut a_starts: Vec<StateId> = a.starts().to_vec();
    a_starts.sort_unstable();
    a_starts.dedup();
    let d0 = if bd.num_states() == 0 {
        DEAD
    } else {
        bd.start()
    };
    for &qa in &a_starts {
        if seen.insert((qa, d0)) {
            parents.push((None, qa, d0));
            queue.push_back(parents.len() - 1);
        }
    }

    let reconstruct = |parents: &Vec<Parent>, mut node: usize| {
        let mut word: Vec<Sym> = Vec::new();
        while let (Some((p, s)), _, _) = parents[node] {
            word.push(s);
            node = p;
        }
        word.reverse();
        word
    };

    while let Some(node) = queue.pop_front() {
        let (_, qa, qd) = parents[node];
        let accepts = qd != DEAD && bd.is_final(qd);
        if a.is_final(qa) && !accepts {
            return Containment::Counterexample(reconstruct(&parents, node));
        }
        let mut by_sym: BTreeMap<Sym, Vec<StateId>> = BTreeMap::new();
        for &(s, ra) in a.transitions_from(qa) {
            by_sym.entry(s).or_default().push(ra);
        }
        for (s, mut ra_list) in by_sym {
            ra_list.sort_unstable();
            ra_list.dedup();
            let rd = if qd == DEAD { DEAD } else { bd.step(qd, s) };
            for &ra in &ra_list {
                if seen.insert((ra, rd)) {
                    parents.push((Some((node, s)), ra, rd));
                    queue.push_back(parents.len() - 1);
                }
            }
        }
    }
    Containment::Contained
}

/// Interned, sorted `B`-subsets with cached acceptance.
#[derive(Default)]
struct Subsets {
    ids: HashMap<Vec<StateId>, u32>,
    sets: Vec<Vec<StateId>>,
    finals: Vec<bool>,
}

impl Subsets {
    fn intern(&mut self, set: Vec<StateId>, b: &Nfa) -> u32 {
        if let Some(&id) = self.ids.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.finals.push(set.iter().any(|&q| b.is_final(q)));
        self.ids.insert(set.clone(), id);
        self.sets.push(set);
        id
    }

    fn get(&self, id: u32) -> &[StateId] {
        &self.sets[id as usize]
    }

    fn is_final(&self, id: u32) -> bool {
        self.finals[id as usize]
    }

    fn len(&self) -> usize {
        self.sets.len()
    }
}

/// `small ⊆ big` for sorted, deduplicated state vectors (two-pointer).
fn is_subset(small: &[StateId], big: &[StateId]) -> bool {
    if small.len() > big.len() {
        return false;
    }
    let mut bi = 0usize;
    for &s in small {
        loop {
            match big.get(bi) {
                None => return false,
                Some(&v) if v == s => {
                    bi += 1;
                    break;
                }
                Some(&v) if v > s => return false,
                _ => bi += 1,
            }
        }
    }
    true
}

/// A partition of the symbol alphabet such that two symbols in one class
/// label exactly the same edges in every registered automaton; built by
/// partition refinement through [`ByteClassBuilder`] when the alphabet
/// fits its 256-value domain, with an identity fallback otherwise.
struct SymClasses {
    class_of_sym: Vec<usize>,
    /// One representative (smallest) symbol per class.
    reps: Vec<Sym>,
}

impl SymClasses {
    fn class_of(&self, s: Sym) -> usize {
        self.class_of_sym[s.index()]
    }

    fn build<'a>(alphabet_size: u32, automata: impl IntoIterator<Item = &'a Nfa>) -> SymClasses {
        let asize = alphabet_size as usize;
        if asize == 0 {
            return SymClasses {
                class_of_sym: Vec::new(),
                reps: Vec::new(),
            };
        }
        if asize > 256 {
            // Outside the ByteClasses domain: identity partition.
            return SymClasses {
                class_of_sym: (0..asize).collect(),
                reps: (0..asize as u32).map(Sym).collect(),
            };
        }
        // The symbol set of every (state, target) edge bundle is a
        // refinement constraint: classes must not straddle it. Bundles
        // repeat heavily across states, so dedup before registration —
        // the builder pays a 256-wide pass per registered set.
        let mut constraints: std::collections::BTreeSet<[u64; 4]> =
            std::collections::BTreeSet::new();
        for nfa in automata {
            for q in 0..nfa.num_states() as StateId {
                let mut per_target: BTreeMap<StateId, [u64; 4]> = BTreeMap::new();
                for &(s, r) in nfa.transitions_from(q) {
                    let mask = per_target.entry(r).or_default();
                    mask[s.index() / 64] |= 1u64 << (s.index() % 64);
                }
                constraints.extend(per_target.into_values());
            }
        }
        let mut builder = ByteClassBuilder::new();
        // Everything at or beyond the alphabet bound forms its own
        // region so it can never merge with live symbols.
        builder.add_set(|byte| (byte as usize) < asize);
        for mask in constraints {
            builder.add_set(move |byte| {
                mask[byte as usize / 64] & (1u64 << (byte as usize % 64)) != 0
            });
        }
        let classes = builder.build();
        // Compact to classes that contain live symbols, keeping the
        // smallest member symbol as representative.
        let mut remap: Vec<Option<usize>> = vec![None; classes.num_classes()];
        let mut class_of_sym = vec![0usize; asize];
        let mut reps: Vec<Sym> = Vec::new();
        for (s, slot) in class_of_sym.iter_mut().enumerate() {
            let raw = classes.class_of(s as u8);
            let id = *remap[raw].get_or_insert_with(|| {
                reps.push(Sym(s as u32));
                reps.len() - 1
            });
            *slot = id;
        }
        SymClasses { class_of_sym, reps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn word_nfa(asize: u32, w: &[u32]) -> Nfa {
        let mut n = Nfa::new(asize);
        let mut q = n.add_state();
        n.add_start(q);
        for &c in w {
            let r = n.add_state();
            n.add_transition(q, Sym(c), r);
            q = r;
        }
        n.set_final(q, true);
        n
    }

    fn sigma_star(asize: u32) -> Nfa {
        let mut n = Nfa::new(asize);
        let q = n.add_state();
        n.add_start(q);
        n.set_final(q, true);
        for s in 0..asize {
            n.add_transition(q, Sym(s), q);
        }
        n
    }

    /// `Σ* a Σ^k` over {a=0, b=1}: the canonical antichain showcase —
    /// full determinization needs `2^k` subsets.
    fn needle(k: usize) -> Nfa {
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), q0);
        n.add_transition(q0, Sym(1), q0);
        let mut prev = n.add_state();
        n.add_transition(q0, Sym(0), prev);
        for _ in 0..k {
            let next = n.add_state();
            n.add_transition(prev, Sym(0), next);
            n.add_transition(prev, Sym(1), next);
            prev = next;
        }
        n.set_final(prev, true);
        n
    }

    #[test]
    fn agrees_with_determinize_first_on_basics() {
        let cases: Vec<(Nfa, Nfa)> = vec![
            (word_nfa(2, &[0, 1]), sigma_star(2)),
            (sigma_star(2), word_nfa(2, &[0, 1])),
            (word_nfa(3, &[2]), word_nfa(3, &[2])),
            (needle(3), sigma_star(2)),
            (sigma_star(2), needle(3)),
        ];
        for (a, b) in &cases {
            let lazy = contains(a, b);
            let refr = contains_determinize_first(a, b);
            assert_eq!(lazy.holds(), refr.holds());
            if let (Containment::Counterexample(w1), Containment::Counterexample(w2)) =
                (&lazy, &refr)
            {
                assert_eq!(w1.len(), w2.len(), "both searches are BFS");
                assert!(a.accepts(w1) && !b.accepts(w1));
                assert!(a.accepts(w2) && !b.accepts(w2));
            }
        }
    }

    #[test]
    fn antichain_prunes_the_needle_family() {
        // Self-containment of Σ*aΣ^k: verdict holds, and the antichain
        // search must stay far below the 2^k subsets the determinized
        // automaton needs.
        let k = 10;
        let n = needle(k);
        let (res, stats) = contains_with_stats(&n, &n);
        assert!(res.holds());
        assert!(stats.pruned > 0, "pruning must fire: {stats:?}");
        assert!(
            stats.subsets < (1 << k) / 4,
            "subset count {} should stay well below 2^{k}",
            stats.subsets
        );
        // The reference agrees on the verdict.
        assert!(contains_determinize_first(&n, &n).holds());
    }

    #[test]
    fn symbol_classes_collapse_equivalent_symbols() {
        // 8 symbols, only symbol 0 distinguished anywhere: 2 classes.
        let mut a = Nfa::new(8);
        let q0 = a.add_state();
        let q1 = a.add_state();
        a.add_start(q0);
        a.set_final(q1, true);
        a.add_transition(q0, Sym(0), q1);
        for s in 1..8 {
            a.add_transition(q0, Sym(s), q0);
        }
        let classes = SymClasses::build(8, [&a]);
        assert_eq!(classes.reps.len(), 2);
        assert_eq!(classes.class_of(Sym(3)), classes.class_of(Sym(7)));
        assert_ne!(classes.class_of(Sym(0)), classes.class_of(Sym(1)));
        let (_, stats) = contains_with_stats(&a, &sigma_star(8));
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.alphabet, 8);
    }

    #[test]
    fn wide_alphabets_fall_back_to_identity_classes() {
        let a = word_nfa(300, &[299]);
        let b = sigma_star(300);
        assert!(contains(&a, &b).holds());
        match contains(&b, &a) {
            Containment::Counterexample(w) => assert!(b.accepts(&w) && !a.accepts(&w)),
            Containment::Contained => panic!("Σ* is not one word"),
        }
    }

    #[test]
    fn empty_automata_edge_cases() {
        let empty = Nfa::new(2);
        assert!(contains(&empty, &sigma_star(2)).holds());
        assert!(contains(&empty, &empty).holds());
        assert_eq!(
            contains(&sigma_star(2), &empty),
            Containment::Counterexample(vec![])
        );
    }

    #[test]
    fn shortest_witness_survives_pruning() {
        // A = {a, aa}, B = {aa}: shortest counterexample has length 1.
        let mut a = word_nfa(1, &[0]);
        let f2 = a.add_state();
        a.add_transition(1, Sym(0), f2);
        a.set_final(f2, true);
        let b = word_nfa(1, &[0, 0]);
        match contains(&a, &b) {
            Containment::Counterexample(w) => assert_eq!(w.len(), 1),
            Containment::Contained => panic!("not contained"),
        }
    }

    #[test]
    fn cumulative_counters_are_monotone() {
        let before = cumulative_stats();
        let n = needle(6);
        let (_, run) = contains_with_stats(&n, &n);
        let after = cumulative_stats();
        // Other tests run concurrently, so assert monotone growth by at
        // least this run's contribution rather than exact deltas.
        assert!(after.runs > before.runs);
        assert!(after.explored >= before.explored + run.explored as u64);
        assert!(after.pruned >= before.pruned + run.pruned as u64);
        assert!(after.subsets >= before.subsets + run.subsets as u64);
    }

    #[test]
    fn universality_through_ops_uses_the_antichain_engine() {
        // ops::universal routes through ops::contains, which delegates
        // here; sanity-check both verdict directions.
        assert!(ops::universal(&sigma_star(2)).holds());
        assert!(!ops::universal(&word_nfa(2, &[0])).holds());
    }
}
