//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the surface this workspace uses — the [`proptest!`] macro,
//! `prop_assert*!`, [`prop_oneof!`], the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`/`prop_flat_map`, range/tuple/[`Just`](strategy::Just)
//! strategies, [`collection::vec`], and
//! [`ProptestConfig`](test_runner::ProptestConfig) — with two deliberate
//! simplifications:
//!
//! * **Deterministic sampling.** Each test derives its RNG seed from the
//!   test name, so runs are reproducible without a persistence file.
//! * **No shrinking.** A failing case panics with the *unshrunk* inputs
//!   (every strategy value in this workspace is `Debug`, so failures are
//!   still actionable).

pub mod test_runner {
    //! Test-runner types: config, RNG, and the case-level error.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 RNG used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (e.g. the test name),
        /// so distinct tests see distinct but reproducible streams.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// A failed property case (produced by the `prop_assert*!` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Generates an intermediate value, then samples from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs >= 1 option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Offsets are applied with wrapping arithmetic: for
                    // signed ranges wider than half the domain, `start +
                    // offset` would overflow even though the result is in
                    // range (bit patterns wrap back into bounds).
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn uniformly from `len` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` sampled inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        let mut inputs = ::std::string::String::new();
                        $(inputs.push_str(&format!("\n  {} = {:?}", stringify!($arg), &$arg));)+
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (2usize..=5).sample(&mut rng);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn wide_signed_ranges_do_not_overflow() {
        let mut rng = TestRng::from_name("wide");
        let (mut low, mut high) = (false, false);
        for _ in 0..500 {
            let v = (-2_000_000_000i32..2_000_000_000).sample(&mut rng);
            assert!((-2_000_000_000..2_000_000_000).contains(&v));
            low |= v < -1_000_000_000;
            high |= v > 1_000_000_000;
            let w = (i64::MIN..=i64::MAX).sample(&mut rng);
            let _ = w;
        }
        assert!(low && high, "covers both halves of the wide range");
    }

    #[test]
    fn map_flat_map_vec() {
        let mut rng = TestRng::from_name("combinators");
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, 0..5).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.sample(&mut rng);
            assert!((1..4).contains(&n));
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_hits_all_arms() {
        let s = prop_oneof![Just(b'a'), Just(b'b'), Just(b'.')];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0u32..50, b in 1u32..50, v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(a < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
            prop_assert!(v.len() < 6, "len was {}", v.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            #[allow(dead_code)]
            fn always_fails(a in 0u32..10) {
                prop_assert!(a > 100, "a = {}", a);
            }
        }
        always_fails();
    }
}
