//! Word-at-a-time byte scanning (SWAR).
//!
//! The evaluation engines spend most of their time asking one question
//! per input byte: *is this byte interesting?* For match-sparse inputs
//! the answer is almost always "no", and answering it through a
//! table-driven automaton step wastes an order of magnitude over what
//! the hardware can do. This module provides the scanning primitives the
//! skip-loops and literal prefilters are built on — `memchr`-family
//! searches implemented **SWAR** (SIMD Within A Register): eight bytes
//! are tested per 64-bit word using the classic zero-byte detector
//! `(w - 0x01…01) & !w & 0x80…80`, with no dependency on `std::arch` or
//! crates.io (the container builds offline, so the `memchr` crate is not
//! available).
//!
//! Correctness notes baked into the implementation:
//!
//! * The zero-byte detector's *least-significant* flagged byte is always
//!   a true match (borrows propagate from low to high bytes only), so
//!   the forward searches use `trailing_zeros` directly.
//! * The *most-significant* flagged byte can be spurious (a borrow out
//!   of a true match can flag the byte above it), so the reverse
//!   searches re-verify the flagged word byte-by-byte.
//! * The range detector reduces `lo ≤ b ≤ hi` to `b - lo < n` via an
//!   exact SWAR per-byte subtraction (`psubb`) followed by the
//!   "byte less than n" detector, which requires `n ≤ 128` — ranges
//!   wider than 128 bytes take the table path instead.
//!
//! Every primitive is differentially tested against the naive
//! byte-by-byte loop over adversarial and random inputs.

/// `0x01` replicated into every byte lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// `0x80` replicated into every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;

/// Zero-byte detector: the high bit of every all-zero byte lane of `w`
/// is set in the result. Lanes *above* a zero lane may be flagged
/// spuriously (borrow propagation); the lowest flagged lane is exact.
#[inline]
fn zero_lanes(w: u64) -> u64 {
    w.wrapping_sub(LO) & !w & HI
}

/// Exact per-byte (lane-wise) subtraction `a - b` without cross-lane
/// borrows — the SWAR emulation of `psubb`.
#[inline]
fn psubb(a: u64, b: u64) -> u64 {
    ((a | HI).wrapping_sub(b & !HI)) ^ ((a ^ !b) & HI)
}

/// "Lane less than `n`" detector for `n <= 128`: the high bit of every
/// lane whose byte value is `< n` is set. Same borrow caveat as
/// [`zero_lanes`]: only the lowest flagged lane is exact.
#[inline]
fn lanes_lt(w: u64, n: u8) -> u64 {
    debug_assert!(n as u32 <= 128);
    w.wrapping_sub(LO.wrapping_mul(n as u64)) & !w & HI
}

#[inline]
fn load(hay: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(hay[i..i + 8].try_into().expect("8-byte window"))
}

/// Position of the first occurrence of `needle` in `hay`.
pub fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    let pat = LO.wrapping_mul(needle as u64);
    let n = hay.len();
    let mut i = 0;
    while i + 8 <= n {
        let m = zero_lanes(load(hay, i) ^ pat);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..].iter().position(|&b| b == needle).map(|p| i + p)
}

/// Position of the first occurrence of `a` or `b` in `hay`.
pub fn memchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let pa = LO.wrapping_mul(a as u64);
    let pb = LO.wrapping_mul(b as u64);
    let n = hay.len();
    let mut i = 0;
    while i + 8 <= n {
        let w = load(hay, i);
        let m = zero_lanes(w ^ pa) | zero_lanes(w ^ pb);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| i + p)
}

/// Position of the first occurrence of `a`, `b` or `c` in `hay`.
pub fn memchr3(a: u8, b: u8, c: u8, hay: &[u8]) -> Option<usize> {
    let pa = LO.wrapping_mul(a as u64);
    let pb = LO.wrapping_mul(b as u64);
    let pc = LO.wrapping_mul(c as u64);
    let n = hay.len();
    let mut i = 0;
    while i + 8 <= n {
        let w = load(hay, i);
        let m = zero_lanes(w ^ pa) | zero_lanes(w ^ pb) | zero_lanes(w ^ pc);
        if m != 0 {
            return Some(i + (m.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    hay[i..]
        .iter()
        .position(|&x| x == a || x == b || x == c)
        .map(|p| i + p)
}

/// Position of the last occurrence of `needle` in `hay`.
pub fn memrchr(needle: u8, hay: &[u8]) -> Option<usize> {
    let pat = LO.wrapping_mul(needle as u64);
    rscan(hay, |w| zero_lanes(w ^ pat)).and_then(|cand| verify_back(hay, cand, |b| b == needle))
}

/// Reverse scan driver: returns the start index of the highest 8-byte
/// window whose detector fired (a *candidate* — lanes may be spurious),
/// or falls back to an exact byte scan over the unaligned tail/short
/// haystack. `None` means no window fired and the exact prefix scan
/// found nothing either — i.e. truly absent.
///
/// The detector caveat (spurious high lanes) means a fired window must
/// be re-verified byte-by-byte; [`verify_back`] does that and continues
/// the scan below on a false alarm.
#[inline]
fn rscan(hay: &[u8], detect: impl Fn(u64) -> u64) -> Option<usize> {
    let n = hay.len();
    let mut i = n;
    while i >= 8 {
        let w = load(hay, i - 8);
        if detect(w) != 0 {
            return Some(i - 8);
        }
        i -= 8;
    }
    // Delegate the short prefix to the caller's exact check by
    // reporting a pseudo-window at 0 covering the remainder.
    if i > 0 {
        return Some(usize::MAX);
    }
    None
}

/// Exact reverse verification: scans `hay[..window_end]` byte-by-byte
/// from the end, where `cand` is the window start reported by
/// [`rscan`] (`usize::MAX` = only the short prefix remains). Returns the
/// highest true match at or below the candidate window.
#[inline]
fn verify_back(hay: &[u8], cand: usize, matches: impl Fn(u8) -> bool) -> Option<usize> {
    let end = if cand == usize::MAX {
        hay.len().min(7)
    } else {
        cand + 8
    };
    hay[..end].iter().rposition(|&b| matches(b))
}

/// Position of the last occurrence of `a` or `b` in `hay`.
pub fn memrchr2(a: u8, b: u8, hay: &[u8]) -> Option<usize> {
    let pa = LO.wrapping_mul(a as u64);
    let pb = LO.wrapping_mul(b as u64);
    rscan(hay, |w| zero_lanes(w ^ pa) | zero_lanes(w ^ pb))
        .and_then(|cand| verify_back(hay, cand, |x| x == a || x == b))
}

/// Position of the last occurrence of `a`, `b` or `c` in `hay`.
pub fn memrchr3(a: u8, b: u8, c: u8, hay: &[u8]) -> Option<usize> {
    let pa = LO.wrapping_mul(a as u64);
    let pb = LO.wrapping_mul(b as u64);
    let pc = LO.wrapping_mul(c as u64);
    rscan(hay, |w| {
        zero_lanes(w ^ pa) | zero_lanes(w ^ pb) | zero_lanes(w ^ pc)
    })
    .and_then(|cand| verify_back(hay, cand, |x| x == a || x == b || x == c))
}

/// A compiled searcher for an arbitrary byte *set*, selecting the
/// fastest applicable strategy at construction time:
///
/// * up to three distinct bytes → SWAR [`memchr`]/[`memchr2`]/[`memchr3`];
/// * a contiguous range narrower than 128 bytes → SWAR range detector;
/// * anything else → a 256-entry membership table, scanned byte-by-byte
///   (still branch-predictable and table-lookup cheap — the point of the
///   skip-loop is avoiding the automaton step, not this lookup).
///
/// An **empty** set is a valid finder that never matches — callers use
/// it for "no escape bytes exist, skip to the end of the input".
#[derive(Debug, Clone)]
pub enum ByteFinder {
    /// The empty set: never matches.
    Empty,
    /// One byte.
    One(u8),
    /// Two distinct bytes.
    Two(u8, u8),
    /// Three distinct bytes.
    Three(u8, u8, u8),
    /// A contiguous inclusive range `lo..=hi` with `hi - lo < 128`.
    Range(u8, u8),
    /// General membership table.
    Table(Box<[bool; 256]>),
}

impl ByteFinder {
    /// Compiles a finder from a membership predicate over all 256 byte
    /// values.
    pub fn from_predicate(contains: impl Fn(u8) -> bool) -> ByteFinder {
        let bytes: Vec<u8> = (0u16..256)
            .map(|b| b as u8)
            .filter(|&b| contains(b))
            .collect();
        match bytes.as_slice() {
            [] => ByteFinder::Empty,
            [a] => ByteFinder::One(*a),
            [a, b] => ByteFinder::Two(*a, *b),
            [a, b, c] => ByteFinder::Three(*a, *b, *c),
            all => {
                let (lo, hi) = (all[0], all[all.len() - 1]);
                if (hi - lo) as usize + 1 == all.len() && hi - lo < 128 {
                    ByteFinder::Range(lo, hi)
                } else {
                    let mut table = Box::new([false; 256]);
                    for &b in all {
                        table[b as usize] = true;
                    }
                    ByteFinder::Table(table)
                }
            }
        }
    }

    /// Number of bytes in the compiled set.
    pub fn set_len(&self) -> usize {
        match self {
            ByteFinder::Empty => 0,
            ByteFinder::One(_) => 1,
            ByteFinder::Two(..) => 2,
            ByteFinder::Three(..) => 3,
            ByteFinder::Range(lo, hi) => (*hi - *lo) as usize + 1,
            ByteFinder::Table(t) => t.iter().filter(|&&x| x).count(),
        }
    }

    /// Membership test.
    #[inline]
    pub fn matches(&self, b: u8) -> bool {
        match self {
            ByteFinder::Empty => false,
            ByteFinder::One(a) => b == *a,
            ByteFinder::Two(x, y) => b == *x || b == *y,
            ByteFinder::Three(x, y, z) => b == *x || b == *y || b == *z,
            ByteFinder::Range(lo, hi) => (*lo..=*hi).contains(&b),
            ByteFinder::Table(t) => t[b as usize],
        }
    }

    /// Position of the first byte of `hay` in the set.
    pub fn find(&self, hay: &[u8]) -> Option<usize> {
        match self {
            ByteFinder::Empty => None,
            ByteFinder::One(a) => memchr(*a, hay),
            ByteFinder::Two(a, b) => memchr2(*a, *b, hay),
            ByteFinder::Three(a, b, c) => memchr3(*a, *b, *c, hay),
            ByteFinder::Range(lo, hi) => {
                let lo_vec = LO.wrapping_mul(*lo as u64);
                let span = *hi - *lo + 1; // <= 128 by construction
                let n = hay.len();
                let mut i = 0;
                while i + 8 <= n {
                    let m = lanes_lt(psubb(load(hay, i), lo_vec), span);
                    if m != 0 {
                        return Some(i + (m.trailing_zeros() >> 3) as usize);
                    }
                    i += 8;
                }
                hay[i..]
                    .iter()
                    .position(|b| (*lo..=*hi).contains(b))
                    .map(|p| i + p)
            }
            ByteFinder::Table(t) => hay.iter().position(|&b| t[b as usize]),
        }
    }

    /// Position of the last byte of `hay` in the set.
    pub fn rfind(&self, hay: &[u8]) -> Option<usize> {
        match self {
            ByteFinder::Empty => None,
            ByteFinder::One(a) => memrchr(*a, hay),
            ByteFinder::Two(a, b) => memrchr2(*a, *b, hay),
            ByteFinder::Three(a, b, c) => memrchr3(*a, *b, *c, hay),
            ByteFinder::Range(lo, hi) => {
                let lo_vec = LO.wrapping_mul(*lo as u64);
                let span = *hi - *lo + 1;
                rscan(hay, |w| lanes_lt(psubb(w, lo_vec), span))
                    .and_then(|cand| verify_back(hay, cand, |b| (*lo..=*hi).contains(&b)))
            }
            ByteFinder::Table(t) => hay.iter().rposition(|&b| t[b as usize]),
        }
    }
}

/// Root state of a [`MultiNeedle`] automaton.
const MN_ROOT: u32 = 0;

/// A compiled multi-needle literal scanner: an Aho–Corasick automaton
/// with the failure function folded into a dense per-state goto table,
/// so the scan loop is one table lookup per byte with **no** fail-link
/// chasing. The root state is additionally accelerated by a SWAR
/// [`ByteFinder`] over the bytes that leave the root — on match-sparse
/// input the scanner spends its time in `memchr`-speed skips rather
/// than automaton steps, exactly like the single-pattern skip-loops.
///
/// Matches are reported as `(needle_id, end)` pairs where `end` is the
/// exclusive end offset of the occurrence (`start = end - len(needle)`).
/// All occurrences are reported, including overlapping ones and
/// duplicate needles (two ids with identical bytes each fire at every
/// occurrence) — the fleet engine relies on duplicates mapping to
/// distinct owners. Output sets are *fail-closed*: a state's output
/// list includes every needle ending at that state through the failure
/// chain, so no suffix match is missed.
///
/// The streaming form ([`MultiNeedleScanner`]) carries the automaton
/// state and absolute offset across [`push`](MultiNeedle::push)
/// calls, so needles straddling chunk boundaries are found with the
/// same ends as a whole-input scan.
///
/// Empty needles are rejected at construction (every position would
/// match, which no caller wants); an empty needle *set* is valid and
/// matches nothing.
#[derive(Debug, Clone)]
pub struct MultiNeedle {
    /// Dense transition table: `goto[state * 256 + byte]`, fail links
    /// pre-applied.
    goto_: Vec<u32>,
    /// CSR offsets into `out_pool`: state `s` outputs
    /// `out_pool[out_off[s]..out_off[s + 1]]`.
    out_off: Vec<u32>,
    /// Needle ids, fail-closed per state, sorted ascending.
    out_pool: Vec<u32>,
    /// Number of needles compiled in.
    num: usize,
    /// Total bytes across all needles (trie size bound).
    needle_bytes: usize,
    /// SWAR finder for the bytes with a non-root goto out of the root.
    root_escape: ByteFinder,
}

/// Streaming scan state for a [`MultiNeedle`]: automaton state plus the
/// absolute offset of the next byte, carried across chunks.
#[derive(Debug, Clone)]
pub struct MultiNeedleScanner {
    state: u32,
    offset: usize,
}

impl MultiNeedle {
    /// Compiles the automaton from a set of byte needles.
    ///
    /// # Panics
    ///
    /// Panics if any needle is empty.
    pub fn new<N: AsRef<[u8]>>(needles: &[N]) -> MultiNeedle {
        // Trie construction with sparse child maps, densified below.
        let mut children: Vec<Vec<(u8, u32)>> = vec![Vec::new()];
        let mut out: Vec<Vec<u32>> = vec![Vec::new()];
        let mut needle_bytes = 0;
        for (id, needle) in needles.iter().enumerate() {
            let needle = needle.as_ref();
            assert!(!needle.is_empty(), "MultiNeedle: empty needle {id}");
            needle_bytes += needle.len();
            let mut s = MN_ROOT;
            for &b in needle {
                s = match children[s as usize].iter().find(|&&(cb, _)| cb == b) {
                    Some(&(_, child)) => child,
                    None => {
                        let child = children.len() as u32;
                        children[s as usize].push((b, child));
                        children.push(Vec::new());
                        out.push(Vec::new());
                        child
                    }
                };
            }
            out[s as usize].push(id as u32);
        }
        let states = children.len();

        // BFS failure links, folded straight into the dense goto table.
        // Root misses stay at root; a state's missing transitions copy
        // its fail state's row (already dense by BFS order), and output
        // sets are closed over the failure chain.
        let mut goto_ = vec![MN_ROOT; states * 256];
        let mut fail = vec![MN_ROOT; states];
        let mut queue = std::collections::VecDeque::new();
        for &(b, child) in &children[MN_ROOT as usize] {
            goto_[b as usize] = child;
            queue.push_back(child);
        }
        while let Some(s) = queue.pop_front() {
            let f = fail[s as usize];
            let closure: Vec<u32> = out[f as usize].clone();
            out[s as usize].extend(closure);
            let row = s as usize * 256;
            let frow = f as usize * 256;
            for b in 0..256 {
                goto_[row + b] = goto_[frow + b];
            }
            for &(b, child) in &children[s as usize] {
                fail[child as usize] = goto_[frow + b as usize];
                goto_[row + b as usize] = child;
                queue.push_back(child);
            }
        }

        let mut out_off = Vec::with_capacity(states + 1);
        let mut out_pool = Vec::new();
        out_off.push(0u32);
        for set in &mut out {
            set.sort_unstable();
            out_pool.extend_from_slice(set);
            out_off.push(out_pool.len() as u32);
        }

        let root_escape = ByteFinder::from_predicate(|b| goto_[b as usize] != MN_ROOT);
        MultiNeedle {
            goto_,
            out_off,
            out_pool,
            num: needles.len(),
            needle_bytes,
            root_escape,
        }
    }

    /// Number of needles compiled into the automaton.
    pub fn num_needles(&self) -> usize {
        self.num
    }

    /// Number of automaton states (trie nodes including the root).
    pub fn num_states(&self) -> usize {
        self.out_off.len() - 1
    }

    /// Total bytes across all compiled needles.
    pub fn needle_bytes(&self) -> usize {
        self.needle_bytes
    }

    /// A fresh streaming scanner positioned at absolute offset 0.
    pub fn scanner(&self) -> MultiNeedleScanner {
        MultiNeedleScanner {
            state: MN_ROOT,
            offset: 0,
        }
    }

    /// Scans `chunk`, advancing `sc` and reporting each match as
    /// `(needle_id, absolute_end)` to `visit`. Returning `false` from
    /// `visit` stops the scan early (mid-chunk); the scanner remains
    /// consistent and the return value is the number of bytes of
    /// `chunk` consumed (== `chunk.len()` when not stopped).
    pub fn push(
        &self,
        sc: &mut MultiNeedleScanner,
        chunk: &[u8],
        mut visit: impl FnMut(usize, usize) -> bool,
    ) -> usize {
        let n = chunk.len();
        let mut i = 0;
        let mut state = sc.state;
        while i < n {
            if state == MN_ROOT {
                // SWAR skip: jump to the next byte that leaves the root.
                match self.root_escape.find(&chunk[i..]) {
                    Some(j) => i += j,
                    None => {
                        i = n;
                        break;
                    }
                }
            }
            state = self.goto_[(state as usize) << 8 | chunk[i] as usize];
            i += 1;
            let (lo, hi) = (
                self.out_off[state as usize] as usize,
                self.out_off[state as usize + 1] as usize,
            );
            for &id in &self.out_pool[lo..hi] {
                if !visit(id as usize, sc.offset + i) {
                    sc.state = state;
                    sc.offset += i;
                    return i;
                }
            }
        }
        sc.state = state;
        sc.offset += i;
        i
    }

    /// All matches in `hay` as `(needle_id, end)` pairs, in end order
    /// (ties in needle-id order).
    pub fn find_all(&self, hay: &[u8]) -> Vec<(usize, usize)> {
        let mut hits = Vec::new();
        let mut sc = self.scanner();
        self.push(&mut sc, hay, |id, end| {
            hits.push((id, end));
            true
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic pseudo-random bytes without external
    /// crates (the shimmed `rand` lives in another crate layer).
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    fn naive_find(hay: &[u8], f: impl Fn(u8) -> bool) -> Option<usize> {
        hay.iter().position(|&b| f(b))
    }

    fn naive_rfind(hay: &[u8], f: impl Fn(u8) -> bool) -> Option<usize> {
        hay.iter().rposition(|&b| f(b))
    }

    /// Adversarial fixed vectors: borrow-chain shapes (0x00 under 0x01,
    /// runs crossing word boundaries), every alignment, empty input.
    fn adversarial() -> Vec<Vec<u8>> {
        let mut docs: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1, 0],
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0],
            b"abcdefgh".to_vec(),
            b"aaaaaaaab".to_vec(),
            vec![0xFF; 17],
            vec![0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80],
            (0u16..=255).map(|b| b as u8).collect(),
        ];
        for align in 0..8 {
            let mut d = vec![b'x'; align];
            d.extend_from_slice(b"yyyyyyyyyyyyyyyyz");
            docs.push(d);
        }
        docs
    }

    #[test]
    fn memchr_family_matches_naive() {
        let mut rng = Mix(1);
        let mut docs = adversarial();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 300] {
            docs.push((0..len).map(|_| (rng.next() % 7) as u8).collect());
            docs.push((0..len).map(|_| rng.next() as u8).collect());
        }
        for doc in &docs {
            for probe in [0u8, 1, 2, 0x7F, 0x80, 0xFF, b'z', b'a'] {
                assert_eq!(
                    memchr(probe, doc),
                    naive_find(doc, |b| b == probe),
                    "memchr {probe} in {doc:?}"
                );
                assert_eq!(
                    memrchr(probe, doc),
                    naive_rfind(doc, |b| b == probe),
                    "memrchr {probe} in {doc:?}"
                );
                let (a, b2) = (probe, probe.wrapping_add(3));
                assert_eq!(memchr2(a, b2, doc), naive_find(doc, |b| b == a || b == b2));
                assert_eq!(
                    memrchr2(a, b2, doc),
                    naive_rfind(doc, |b| b == a || b == b2)
                );
                let c = probe.wrapping_add(0x80);
                assert_eq!(
                    memchr3(a, b2, c, doc),
                    naive_find(doc, |b| b == a || b == b2 || b == c)
                );
                assert_eq!(
                    memrchr3(a, b2, c, doc),
                    naive_rfind(doc, |b| b == a || b == b2 || b == c)
                );
            }
        }
    }

    type NamedSet = (&'static str, Box<dyn Fn(u8) -> bool>);

    #[test]
    fn finder_strategies_match_naive() {
        let sets: Vec<NamedSet> = vec![
            ("empty", Box::new(|_| false)),
            ("one", Box::new(|b| b == b'q')),
            ("two", Box::new(|b| b == 0 || b == 0xFF)),
            ("three", Box::new(|b| b == b'a' || b == b'b' || b == 0x80)),
            ("digits", Box::new(|b: u8| b.is_ascii_digit())),
            ("high-range", Box::new(|b| (0x80..=0xC0).contains(&b))),
            ("wide-range", Box::new(|b| b >= 0x20)), // 224 bytes: table path
            ("scattered", Box::new(|b| b % 37 == 0)),
            ("all", Box::new(|_| true)),
        ];
        let mut rng = Mix(7);
        let mut docs = adversarial();
        for len in [0usize, 5, 8, 13, 64, 200] {
            docs.push((0..len).map(|_| rng.next() as u8).collect());
            // Sparse: long runs of one filler byte with rare others.
            docs.push(
                (0..len)
                    .map(|_| {
                        if rng.next() % 29 == 0 {
                            rng.next() as u8
                        } else {
                            b'.'
                        }
                    })
                    .collect(),
            );
        }
        for (name, set) in &sets {
            let f = ByteFinder::from_predicate(set);
            for b in 0u16..256 {
                assert_eq!(f.matches(b as u8), set(b as u8), "{name} matches({b})");
            }
            for doc in &docs {
                assert_eq!(f.find(doc), naive_find(doc, set), "{name} find in {doc:?}");
                assert_eq!(
                    f.rfind(doc),
                    naive_rfind(doc, set),
                    "{name} rfind in {doc:?}"
                );
            }
        }
    }

    /// Oracle for [`MultiNeedle`]: one naive per-needle scan each
    /// (the per-literal `ByteFinder`-style baseline), merged and sorted
    /// into the automaton's (end, id) emission order.
    fn naive_multi(needles: &[&[u8]], hay: &[u8]) -> Vec<(usize, usize)> {
        let mut hits = Vec::new();
        for (id, needle) in needles.iter().enumerate() {
            for start in 0..=hay.len().saturating_sub(needle.len()) {
                if hay.len() >= needle.len() && hay[start..].starts_with(needle) {
                    hits.push((id, start + needle.len()));
                }
            }
        }
        hits.sort_by_key(|&(id, end)| (end, id));
        hits
    }

    /// Adversarial needle sets: overlaps, shared prefixes, suffix
    /// relations (fail-closure coverage), duplicates, non-ASCII bytes.
    fn needle_sets() -> Vec<Vec<&'static [u8]>> {
        vec![
            vec![b"a"],
            vec![b"a", b"b"],
            vec![b"ab", b"abc", b"bc", b"b"],
            vec![b"qa", b"qab", b"qabc", b"qb"],
            vec![b"aa", b"aaa", b"aaaa"],
            vec![b"abab", b"bab", b"ab"],
            vec![b"dup", b"dup", b"du"],
            vec![b"\x00\xff", b"\xff", b"\x80\x80"],
            vec![b"he", b"she", b"his", b"hers"],
        ]
    }

    #[test]
    fn multi_needle_matches_naive_per_literal_scans() {
        let mut rng = Mix(11);
        let mut docs = adversarial();
        docs.push(b"abababababab".to_vec());
        docs.push(b"aaaaaaaaaaaaaaaaa".to_vec());
        docs.push(b"qqaqabqabcqb".to_vec());
        docs.push(b"ushers".to_vec());
        docs.push(b"dupdupdup".to_vec());
        for len in [0usize, 1, 7, 8, 9, 31, 200] {
            // Tiny alphabet: dense partial matches stress fail links.
            docs.push((0..len).map(|_| b"ab"[rng.next() as usize % 2]).collect());
            docs.push((0..len).map(|_| b"qab."[rng.next() as usize % 4]).collect());
            docs.push((0..len).map(|_| rng.next() as u8).collect());
        }
        for needles in &needle_sets() {
            let mn = MultiNeedle::new(needles);
            assert_eq!(mn.num_needles(), needles.len());
            for doc in &docs {
                let expect = naive_multi(needles, doc);
                assert_eq!(mn.find_all(doc), expect, "needles {needles:?} doc {doc:?}");
            }
        }
    }

    #[test]
    fn multi_needle_streaming_matches_whole_input_scan() {
        let mut rng = Mix(23);
        let mut docs = adversarial();
        docs.push(b"ababababab".to_vec());
        docs.push(b"qabcqabcqabc".to_vec());
        for len in [1usize, 9, 64, 157] {
            docs.push((0..len).map(|_| b"qab."[rng.next() as usize % 4]).collect());
        }
        for needles in &needle_sets() {
            let mn = MultiNeedle::new(needles);
            for doc in &docs {
                let expect = mn.find_all(doc);
                // Needles must straddle every chunk boundary shape,
                // down to one byte per push.
                for chunk in [1usize, 2, 3, 5, 8, 13] {
                    let mut sc = mn.scanner();
                    let mut hits = Vec::new();
                    for piece in doc.chunks(chunk) {
                        let used = mn.push(&mut sc, piece, |id, end| {
                            hits.push((id, end));
                            true
                        });
                        assert_eq!(used, piece.len());
                    }
                    assert_eq!(
                        hits, expect,
                        "needles {needles:?} chunk {chunk} doc {doc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_needle_early_exit_stops_mid_chunk() {
        let mn = MultiNeedle::new(&[b"ab".as_slice(), b"cd".as_slice()]);
        let doc = b"..ab..cd..ab";
        let mut first = None;
        let mut sc = mn.scanner();
        let used = mn.push(&mut sc, doc, |id, end| {
            first = Some((id, end));
            false
        });
        assert_eq!(first, Some((0, 4)));
        assert_eq!(used, 4, "stops right after the first match");
        // The scanner stays consistent: resuming finds the rest.
        let mut rest = Vec::new();
        mn.push(&mut sc, &doc[used..], |id, end| {
            rest.push((id, end));
            true
        });
        assert_eq!(rest, vec![(1, 8), (0, 12)]);
    }

    #[test]
    fn multi_needle_duplicate_needles_report_both_ids() {
        let mn = MultiNeedle::new(&[b"xy".as_slice(), b"xy".as_slice()]);
        assert_eq!(mn.find_all(b".xy."), vec![(0, 3), (1, 3)]);
    }

    #[test]
    fn multi_needle_empty_set_is_inert() {
        let mn = MultiNeedle::new(&[] as &[&[u8]]);
        assert_eq!(mn.num_needles(), 0);
        assert_eq!(mn.num_states(), 1);
        let mut sc = mn.scanner();
        let used = mn.push(&mut sc, b"anything at all", |_, _| {
            panic!("no needles, no matches")
        });
        assert_eq!(used, 15);
        assert!(mn.find_all(b"whatever").is_empty());
    }

    #[test]
    #[should_panic(expected = "empty needle")]
    fn multi_needle_rejects_empty_needles() {
        MultiNeedle::new(&[b"ok".as_slice(), b"".as_slice()]);
    }

    #[test]
    fn finder_picks_the_documented_strategy() {
        assert!(matches!(
            ByteFinder::from_predicate(|_| false),
            ByteFinder::Empty
        ));
        assert!(matches!(
            ByteFinder::from_predicate(|b| b == 3),
            ByteFinder::One(3)
        ));
        assert!(matches!(
            ByteFinder::from_predicate(|b: u8| b.is_ascii_digit()),
            ByteFinder::Range(b'0', b'9')
        ));
        // 128-wide range still SWAR; wider falls back to the table.
        assert!(matches!(
            ByteFinder::from_predicate(|b| b < 128),
            ByteFinder::Range(0, 127)
        ));
        assert!(matches!(
            ByteFinder::from_predicate(|b| b < 200),
            ByteFinder::Table(_)
        ));
        assert_eq!(
            ByteFinder::from_predicate(|b: u8| b.is_ascii_digit()).set_len(),
            10
        );
    }
}
