//! Sparse scanning: literal prefilters + skip-loops on a match-sparse
//! corpus.
//!
//! Most documents of a real corpus contain nothing an extractor wants —
//! yet a table-driven engine pays a per-byte cost on all of them. This
//! example shows the `prefilter` engine closing that gap:
//!
//! 1. compile a number extractor and inspect what the prefilter
//!    analysis proved about it (minimum match length, required bytes);
//! 2. certify it split-correct by sentences, as always;
//! 3. run a sparse synthetic corpus through the streaming
//!    `CorpusRunner` with the dense engine and with the prefiltered
//!    engine, compare wall clocks, and read the `PrefilterStats`
//!    surfaced in `CorpusStats`.
//!
//! Run with: `cargo run --release --example sparse_scan`

use split_correctness::prelude::*;
use split_correctness::spanner::dense::DenseConfig;
use split_correctness::spanner::evsa::EVsa;
use split_correctness::textgen::{self, CorpusConfig};
use std::time::Instant;

fn main() {
    // A spanner extracting maximal digit runs, anywhere in a document.
    let pattern = "(.*[^0-9]|)x{[0-9]+}([^0-9].*|)";
    let p = Rgx::parse(pattern).unwrap().to_vsa().unwrap();

    // What the prefilter analysis proves about it, once, at compile
    // time: every match needs at least one byte, and that byte must be
    // a digit — so a document without digits can be answered by one
    // SWAR scan.
    let compiled =
        EVsa::from_functional(&p.functionalize()).compile_prefilter(DenseConfig::default());
    let analysis = compiled.analysis();
    println!("pattern:          {pattern}");
    println!("min match length: {}", analysis.min_len);
    println!("required prefix:  {:?}", analysis.prefix);
    println!("required bytes:   {:?}", analysis.required);
    assert!(!analysis.is_trivial(), "digits are required");

    // Certification is unchanged: the extractor is sentence-local.
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());

    // A sparse corpus: ~1 sentence in 64 carries a number.
    let cfg = CorpusConfig {
        target_bytes: 1 << 20,
        seed: 0x5CA7,
        ..Default::default()
    };
    let shards = 8;
    let docs = textgen::sparse_number_shards(shards, &cfg, 64);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let total: usize = refs.iter().map(|d| d.len()).sum();

    let mut results = Vec::new();
    for engine in [Engine::Dense, Engine::Prefilter] {
        let opts = CompileOptions::new().engine(engine);
        let runner =
            RunnerOptions::new().corpus_runner(opts.compile_spanner(&p), opts.compile_splitter(&s));
        let t0 = Instant::now();
        let out = runner.run_slices(&refs);
        let wall = t0.elapsed();
        println!(
            "\n{:<9} {:>8.2} ms  ({:.1} MiB/s)",
            engine.name(),
            wall.as_secs_f64() * 1e3,
            total as f64 / (1 << 20) as f64 / wall.as_secs_f64(),
        );
        if engine == Engine::Prefilter {
            let pf = out.stats.prefilter;
            println!(
                "          {} of {} segments were candidates ({} false); \
                 {} of {total} bytes skipped ({:.1}%)",
                pf.candidates,
                out.stats.segments,
                pf.false_candidates,
                pf.bytes_skipped,
                100.0 * pf.bytes_skipped as f64 / total as f64,
            );
        }
        results.push(out.relations);
    }
    assert_eq!(results[0], results[1], "engines agree tuple for tuple");
    let tuples: usize = results[0].iter().map(|r| r.len()).sum();
    println!("\nboth engines extracted the same {tuples} tuples");
}
