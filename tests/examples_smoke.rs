//! Smoke tests exercising the main path of each program under
//! `examples/`, so the documented workflows cannot silently rot. Each
//! test is a compact replica of the corresponding example (smaller
//! corpora, assertions instead of prints); the examples themselves are
//! additionally compile-checked by `cargo test` / `cargo build
//! --examples`.

use split_correctness::core::blackbox::{
    infer_join_splittable, Signature, SpannerSymbol, SplitConstraint,
};
use split_correctness::core::filters::{
    lp_language, self_splittable_with_filter, FilterVerdict, FilteredSplitter,
};
use split_correctness::core::reasoning::{commute, subsumes};
use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};
use splitc_spanner::eval::eval;
use splitc_textgen::spanners;
use std::sync::Arc;

/// `examples/quickstart.rs`: certify self-splittability, reject a
/// sentence-crossing extractor, then evaluate split + parallel.
#[test]
fn quickstart_main_path() {
    let p = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
    let s = splitters::sentences();
    assert!(s.is_disjoint());
    assert!(self_splittable(&p, &s).unwrap().holds());

    let crossing = Rgx::parse(".*x{a\\.a}.*").unwrap().to_vsa().unwrap();
    match self_splittable(&crossing, &s).unwrap() {
        Verdict::Fails(cex) => assert!(cex.doc.contains(&b'.'), "witness crosses a sentence"),
        Verdict::Holds => panic!("crossing extractor must be rejected"),
    }

    let spanner = ExecSpanner::compile(&p);
    let split: SplitFn = Arc::new(native_splitters::sentences);
    let doc = b"aa bbb aaa. baab. ab aaaa b".repeat(50);
    let sequential = evaluate_sequential(&spanner, &doc);
    let parallel = evaluate_split(&spanner, &split, &doc, 5);
    assert_eq!(sequential, parallel, "certified: identical semantics");
    assert!(!sequential.is_empty());
}

/// `examples/ngram_pipeline.rs`: N-gram certification, the §3.1
/// adjacent-pair fact, and the measured pipeline.
#[test]
fn ngram_pipeline_main_path() {
    let bigrams = spanners::ngram_extractor(2);
    let sentences = splitters::sentences();
    assert!(self_splittable(&bigrams, &sentences).unwrap().holds());

    let pair = Rgx::parse("(.*[^A-Za-z0-9]|)e{[ab]+} p{[ab]+}([^A-Za-z0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap();
    assert!(self_splittable(&pair, &splitters::ngrams(2))
        .unwrap()
        .holds());
    assert!(!self_splittable(&pair, &splitters::ngrams(1))
        .unwrap()
        .holds());

    let cfg = CorpusConfig {
        target_bytes: 16 << 10,
        ..Default::default()
    };
    let doc = textgen::wiki_corpus(&cfg);
    let spanner = ExecSpanner::compile(&bigrams);
    let split: SplitFn = Arc::new(native_splitters::sentences);
    let seq = evaluate_sequential(&spanner, &doc);
    for workers in [1, 2, 5] {
        assert_eq!(
            seq,
            evaluate_split(&spanner, &split, &doc, workers),
            "semantics preserved at {workers} workers"
        );
    }
    assert!(!seq.is_empty());
}

/// `examples/incremental_wiki.rs`: certified incremental maintenance —
/// an in-sentence edit recomputes at most the touched segments.
#[test]
fn incremental_wiki_main_path() {
    let p = spanners::entity_extractor();
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());

    let cfg = CorpusConfig {
        target_bytes: 32 << 10,
        ..Default::default()
    };
    let mut doc = textgen::wiki_corpus(&cfg);
    let runner = IncrementalRunner::new(
        ExecSpanner::compile(&p),
        Arc::new(native_splitters::sentences) as SplitFn,
    );

    let before = runner.eval(&doc);
    let s0 = runner.stats();
    assert!(s0.misses > 0, "cold run evaluates segments");

    let mid = doc.len() / 2;
    for (i, b) in b"Newname".iter().enumerate() {
        doc[mid + i] = *b;
    }
    let after = runner.eval(&doc);
    let s1 = runner.stats();
    assert!(
        s1.misses - s0.misses <= 2,
        "an in-sentence edit touches at most the edited segment(s)"
    );
    assert!(s1.hits > 0, "untouched segments come from cache");
    let _ = before;

    let direct = evaluate_sequential(&ExecSpanner::compile(&p), &doc);
    assert_eq!(after, direct, "incremental equals from-scratch");
}

/// `examples/http_log_debugging.rs`: the buggy host/date extractor is
/// rejected, the fixed one certified, and request lines parallelize.
#[test]
fn http_log_debugging_main_path() {
    let messages = splitters::http_messages();

    match self_splittable(&spanners::host_date_buggy(), &messages).unwrap() {
        Verdict::Fails(_) => {}
        Verdict::Holds => panic!("buggy extractor must not be splittable by messages"),
    }
    assert!(self_splittable(&spanners::host_date_fixed(), &messages)
        .unwrap()
        .holds());

    let request_lines = spanners::request_line_extractor();
    assert!(self_splittable(&request_lines, &messages).unwrap().holds());
    let log = textgen::http_log(200, 17);
    let spanner = ExecSpanner::compile(&request_lines);
    let split: SplitFn = Arc::new(native_splitters::paragraphs);
    let seq = evaluate_sequential(&spanner, &log);
    assert_eq!(seq, evaluate_split(&spanner, &split, &log, 5));
    assert_eq!(seq.len(), 200, "one request line per message");
}

/// `examples/corpus_stream.rs`: certified streaming corpus execution —
/// the streamed relations equal batch evaluation, and the streaming
/// buffer stays at segment + chunk scale.
#[test]
fn corpus_stream_main_path() {
    let p = Rgx::parse("(.*[^A-Za-z0-9]|)x{[A-Za-z0-9]+}([^A-Za-z0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap();
    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());

    let cfg = CorpusConfig {
        target_bytes: 8 << 10,
        ..Default::default()
    };
    let shards = 4;
    let runner = CorpusRunner::new(
        ExecSpanner::compile(&p),
        s.compile(),
        CorpusRunnerConfig {
            workers: 4,
            ..Default::default()
        },
    );
    let result = runner.run_streams(textgen::wiki_corpus_shards(shards, &cfg));
    assert_eq!(result.stats.docs, shards);
    assert!(result.stats.segments > 0);
    assert!(result.stats.cache.hit_rate() > 0.5, "lazy DFA amortized");
    assert!(
        result.stats.peak_buffered_bytes < 4 << 10,
        "buffer bounded by segment + chunk, got {}",
        result.stats.peak_buffered_bytes
    );

    let owned: Vec<Vec<u8>> = textgen::wiki_corpus_shards(shards, &cfg)
        .into_iter()
        .map(|sh| sh.flatten().collect())
        .collect();
    let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
    let spanner = ExecSpanner::compile(&p);
    let split: SplitFn = Arc::new(native_splitters::sentences);
    assert_eq!(
        result.relations,
        evaluate_many_split(&spanner, &split, &refs, 4),
        "streaming equals batch semantics"
    );
}

/// `examples/fleet_certification.rs`: batch certification of an
/// extractor fleet sharing one splitter, then a corpus run with a
/// certified survivor.
#[test]
fn fleet_certification_main_path() {
    let patterns = [
        ".*x{a+}.*",
        "(.*[^A-Za-z0-9]|)x{[A-Za-z0-9]+}([^A-Za-z0-9].*|)",
        ".*x{a\\.a}.*",
        ".*\\. x{[a-z]+}.*",
    ];
    let fleet: Vec<Vsa> = patterns
        .iter()
        .map(|p| Rgx::parse(p).unwrap().to_vsa().unwrap())
        .collect();
    let s = splitters::sentences();
    let pairs: Vec<(usize, usize)> = (0..fleet.len()).map(|i| (i, i)).collect();
    let result = certify_many(&fleet, &s, &pairs, &CertifyConfig::default());
    assert_eq!(result.stats.pairs, pairs.len());
    assert!(result.outcomes[0].holds(), "a-runs are sentence-local");
    assert!(result.outcomes[1].holds(), "tokens are sentence-local");
    assert!(!result.outcomes[2].holds(), "crossing window must fail");
    assert!(!result.outcomes[3].holds(), "context extractor must fail");
    // Every verdict matches the single-pair procedure.
    for (outcome, &(pi, si)) in result.outcomes.iter().zip(&pairs) {
        let single = split_correct(&fleet[pi], &fleet[si], &s).unwrap();
        assert_eq!(outcome.verdict.as_ref().unwrap().holds(), single.holds());
    }
    // The certified survivor distributes over a streamed corpus.
    let runner = CorpusRunner::new(
        ExecSpanner::compile(&fleet[0]),
        s.compile(),
        CorpusRunnerConfig::default(),
    );
    let cfg = CorpusConfig {
        target_bytes: 8 << 10,
        ..Default::default()
    };
    let out = runner.run_streams(textgen::wiki_corpus_shards(2, &cfg));
    assert_eq!(out.stats.docs, 2);
}

/// `examples/sparse_scan.rs`: the prefiltered engine agrees with dense
/// on a sparse corpus, the analysis finds the required digits, and the
/// gate statistics show most segments never touched a DFA.
#[test]
fn sparse_scan_main_path() {
    use split_correctness::spanner::dense::DenseConfig;
    use split_correctness::spanner::evsa::EVsa;

    let p = Rgx::parse("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap();
    let compiled =
        EVsa::from_functional(&p.functionalize()).compile_prefilter(DenseConfig::default());
    let analysis = compiled.analysis();
    assert_eq!(analysis.min_len, 1);
    assert!(analysis.required.is_some(), "digits must be required");
    assert!(!analysis.is_trivial());

    let s = splitters::sentences();
    assert!(self_splittable(&p, &s).unwrap().holds());

    let cfg = CorpusConfig {
        target_bytes: 16 << 10,
        seed: 0x5CA7,
        ..Default::default()
    };
    let docs = textgen::sparse_number_shards(2, &cfg, 64);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let mut results = Vec::new();
    let mut prefilter_stats = PrefilterStats::default();
    for engine in [Engine::Dense, Engine::Prefilter] {
        let runner = CorpusRunner::new(
            ExecSpanner::compile_with(&p, engine),
            s.compile(),
            CorpusRunnerConfig::default(),
        );
        let out = runner.run_slices(&refs);
        if engine == Engine::Prefilter {
            prefilter_stats = out.stats.prefilter;
        }
        results.push(out.relations);
    }
    assert_eq!(results[0], results[1], "engines agree tuple for tuple");
    assert!(
        prefilter_stats.bytes_skipped > 10_000,
        "most of the corpus is answered without a DFA: {prefilter_stats:?}"
    );
    assert!(prefilter_stats.candidates >= 1);
}

/// `examples/query_planning.rs`: §6 reasoning and §7.1 black-box
/// inference.
#[test]
fn query_planning_main_path() {
    let sentences = splitters::sentences();
    let lines = splitters::lines();
    let paragraphs = splitters::paragraphs();

    assert!(commute(&sentences, &lines, None).unwrap().holds());
    // Sentences may cross paragraph boundaries (a blank line is
    // period-free), so paragraph-first splitting changes the chunks.
    assert!(!subsumes(&sentences, &paragraphs, None).unwrap().holds());
    let whole = splitters::whole_document();
    assert!(subsumes(&whole, &whole, None).unwrap().holds());

    let alpha = Rgx::parse(".*q(x{[ab]+})q.*").unwrap().to_vsa().unwrap();
    let signature = Signature::new(vec![SpannerSymbol {
        name: "coref".into(),
        vars: VarTable::new(["x", "y"]).unwrap(),
    }])
    .unwrap();
    let constraints = vec![SplitConstraint {
        symbol: "coref".into(),
        splitter: sentences.clone(),
    }];
    assert!(
        infer_join_splittable(&alpha, &signature, &constraints, &sentences)
            .unwrap()
            .inferred()
    );

    let windows = splitters::ngrams(2);
    let constraints2 = vec![SplitConstraint {
        symbol: "coref".into(),
        splitter: windows.clone(),
    }];
    assert!(
        !infer_join_splittable(&alpha, &signature, &constraints2, &windows)
            .unwrap()
            .inferred(),
        "non-disjoint splitter must refuse the inference"
    );
}

/// `examples/regular_preconditions.rs`: §7.2 regular filters restore
/// split-correctness; the filtered splitter materializes.
#[test]
fn regular_preconditions_main_path() {
    let p = Rgx::parse("x{[a-z]+}").unwrap().to_vsa().unwrap();
    let s = splitters::sentences();

    assert!(
        matches!(self_splittable(&p, &s).unwrap(), Verdict::Fails(_)),
        "plain self-splittability must fail"
    );

    match self_splittable_with_filter(&p, &s).unwrap() {
        FilterVerdict::HoldsWith { filter } => {
            assert!(!eval(&filter, b"abc").is_empty(), "abc ∈ L_P");
            assert!(eval(&filter, b"ab.cd").is_empty(), "ab.cd ∉ L_P");
            assert!(eval(&filter, b"ab cd").is_empty(), "ab cd ∉ L_P");
        }
        FilterVerdict::Fails(cex) => panic!("filter must exist, got counterexample {cex}"),
    }

    let filtered = FilteredSplitter::new(s, lp_language(&p)).unwrap();
    let mat = filtered.to_splitter();
    assert_eq!(mat.split(b"abc").len(), 1, "single-token doc splits whole");
    assert!(mat.split(b"ab.cd").is_empty(), "filtered out");
}

/// `examples/fleet_extraction.rs`: the fused fleet agrees member for
/// member with sequential per-member corpus runs, the catalog's
/// keywords all enroll in the shared scanner, and the dispatch stats
/// show most (segment, member) pairs never touched an engine.
#[test]
fn fleet_extraction_main_path() {
    let n = 8;
    let catalog = spanners::keyword_fleet(n);
    let s = splitters::sentences();
    assert!(self_splittable(&catalog[0], &s).unwrap().holds());

    let fleet = Arc::new(Fleet::compile(&catalog, Engine::Prefilter));
    assert_eq!(fleet.num_members(), n);
    assert!(
        fleet.num_needles() >= n,
        "every keyword is a required literal and must enroll"
    );

    let cfg = CorpusConfig {
        target_bytes: 16 << 10,
        seed: 0xF1EE7,
        ..Default::default()
    };
    let docs = textgen::keyword_corpus_shards(2, &cfg, n, 8);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let runner = FleetRunner::new(fleet, s.compile(), CorpusRunnerConfig::default());
    let fused = runner.run_slices(&refs);

    let mut tuples = 0;
    for (mi, member) in catalog.iter().enumerate() {
        let seq = CorpusRunner::new(
            ExecSpanner::compile_with(member, Engine::Prefilter),
            s.compile(),
            CorpusRunnerConfig::default(),
        )
        .run_slices(&refs);
        for (di, rel) in seq.relations.iter().enumerate() {
            assert_eq!(&fused.relations[di][mi], rel, "doc {di} member {mi}");
            tuples += rel.len();
        }
    }
    assert!(tuples > 0, "the corpus mentions catalog keywords");

    let st = &fused.stats;
    let pairs = (st.segments * n) as u64;
    assert_eq!(st.dispatches + st.gate_rejected + st.scan_rejected, pairs);
    assert!(
        st.dispatches * 4 < pairs,
        "most pairs are pruned without an engine dispatch: {st:?}"
    );
    assert!(st.fan_out() < n as f64 / 4.0);
}
