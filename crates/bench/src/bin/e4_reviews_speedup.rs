//! E4 — paper §1: extracting negative-sentiment targets from ~570,000
//! Amazon Fine Food reviews; sentence splitting gave a 4.16x speedup at
//! the same parallelism (5 nodes).
//!
//! Reproduction: synthetic review collection (scaled to 40,000 reviews
//! by default; scale with SC_SCALE), per-review vs per-sentence task
//! granularity on a simulated 5-worker pool.

use splitc_bench::{bench_json, engine_arg, ms, scale, time, x, Table};
use splitc_exec::{simulate_collection, ExecSpanner, SplitFn};
use splitc_spanner::splitter::native;
use splitc_textgen::{reviews_corpus, spanners};
use std::sync::Arc;

fn main() {
    let engine = engine_arg();
    let n = (40_000.0 * scale()) as usize;
    println!(
        "E4: negative-sentiment targets over {n} review-like documents (engine: {})",
        engine.name()
    );
    let docs = reviews_corpus(n, 0xF00D);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();

    let p = spanners::negative_sentiment_targets();
    let spanner = ExecSpanner::compile_with(&p, engine);
    let split: SplitFn = Arc::new(native::sentences);

    let (per_doc, per_chunk) = simulate_collection(&spanner, &split, &refs, &[5], 5);

    let (total, seq_wall) = time(|| -> usize { refs.iter().map(|d| spanner.eval(d).len()).sum() });
    bench_json(
        "e4_reviews_speedup",
        engine.name(),
        refs.iter().map(|d| d.len()).sum(),
        n as f64,
        seq_wall,
        total,
    );
    let base = per_doc.makespans[0].1;
    let fine = per_chunk.makespans[0].1;
    let mut table = Table::new(
        "E4 — task granularity on a 5-worker pool (reviews)",
        &[
            "granularity",
            "tasks",
            "makespan ms",
            "speedup vs per-review",
            "paper",
        ],
    );
    table.row(&[
        "per-review".into(),
        per_doc.tasks.to_string(),
        ms(base),
        x(1.0),
        String::new(),
    ]);
    table.row(&[
        "per-sentence".into(),
        per_chunk.tasks.to_string(),
        ms(fine),
        x(base.as_secs_f64() / fine.as_secs_f64().max(1e-12)),
        "4.16x".into(),
    ]);
    table.print();
    println!("{total} negative-sentiment targets extracted");

    // Scheduling-wave view (cf. E3b): a wave of 60 reviews on 5 workers.
    let wave: Vec<&[u8]> = refs.iter().take(60).copied().collect();
    let (per_doc, per_chunk) = simulate_collection(&spanner, &split, &wave, &[5], 5);
    let base = per_doc.makespans[0].1;
    let fine = per_chunk.makespans[0].1;
    let mut table = Table::new(
        "E4b — one scheduling wave (60 reviews) on 5 workers",
        &[
            "granularity",
            "tasks",
            "makespan ms",
            "speedup vs per-review",
            "paper",
        ],
    );
    table.row(&[
        "per-review".into(),
        per_doc.tasks.to_string(),
        ms(base),
        x(1.0),
        String::new(),
    ]);
    table.row(&[
        "per-sentence".into(),
        per_chunk.tasks.to_string(),
        ms(fine),
        x(base.as_secs_f64() / fine.as_secs_f64().max(1e-12)),
        "4.16x".into(),
    ]);
    table.print();
}
