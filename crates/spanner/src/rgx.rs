//! Regex formulas (paper §4.1).
//!
//! A regex formula is a regular expression extended with capture
//! variables `x{…}`. Grammar implemented by [`Rgx::parse`]:
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?')*
//! atom   := '(' alt ')' | ident '{' alt '}' | class | '.' | escape | byte
//! class  := '[' '^'? (byte | byte '-' byte)+ ']'
//! escape := '\' ('d'|'w'|'s'|'n'|'t'|'r'|'0'| punctuation)
//! ```
//!
//! `ident` is `[A-Za-z_][A-Za-z0-9_]*` immediately followed by `{`; a
//! literal `{` must be escaped as `\{`. `.` denotes Σ (any byte). The
//! empty formula denotes ε; `∅` has no surface syntax (build via
//! [`Ast::Empty`]).
//!
//! Following the paper (and Fagin et al.), regex formulas are required to
//! be **functional**: every generated ref-word is valid. [`Rgx::to_vsa`]
//! checks functionality syntactically ([`Rgx::is_functional`]) with the
//! classic rules: variables must appear on every branch of an
//! alternation, at most once on a concatenation path, and not under
//! `*`/`+`/`?`.

use crate::byteset::ByteSet;
use crate::vars::{VarOp, VarTable};
use crate::vsa::{Label, Vsa};
use std::collections::BTreeSet;
use std::fmt;

/// Abstract syntax of regex formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// `∅`: the empty language.
    Empty,
    /// `ε`: the empty string.
    Epsilon,
    /// A byte-set atom (literal byte, class, or `.`).
    Bytes(ByteSet),
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// One-or-more.
    Plus(Box<Ast>),
    /// Zero-or-one.
    Opt(Box<Ast>),
    /// Capture `x{α}`.
    Var(String, Box<Ast>),
}

/// A parsed regex formula together with its variable table.
#[derive(Debug, Clone)]
pub struct Rgx {
    ast: Ast,
    vars: VarTable,
    source: Option<String>,
}

/// Parse or validation error with byte offset into the pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgxError {
    /// Offset into the pattern where the error occurred (pattern length
    /// for end-of-input errors; 0 for semantic errors).
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for RgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex formula error at offset {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for RgxError {}

impl Rgx {
    /// Parses a regex formula.
    pub fn parse(pattern: &str) -> Result<Rgx, RgxError> {
        let mut p = Parser {
            input: pattern.as_bytes(),
            pos: 0,
        };
        let ast = p.parse_alt()?;
        if p.pos != p.input.len() {
            return Err(p.err("unexpected character"));
        }
        let mut names = BTreeSet::new();
        collect_vars(&ast, &mut names);
        let vars = VarTable::new(names).map_err(|m| RgxError {
            offset: 0,
            message: m,
        })?;
        Ok(Rgx {
            ast,
            vars,
            source: Some(pattern.to_string()),
        })
    }

    /// Builds a formula from an AST (for programmatic construction, e.g.
    /// the hardness families in the bench crate).
    pub fn from_ast(ast: Ast) -> Result<Rgx, RgxError> {
        let mut names = BTreeSet::new();
        collect_vars(&ast, &mut names);
        let vars = VarTable::new(names).map_err(|m| RgxError {
            offset: 0,
            message: m,
        })?;
        Ok(Rgx {
            ast,
            vars,
            source: None,
        })
    }

    /// The AST.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// The variables (`SVars(α)`).
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// The original pattern, when parsed from text.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Size `|α|`: number of AST atoms and operators (the paper's symbol
    /// count up to constant factors).
    pub fn size(&self) -> usize {
        fn sz(a: &Ast) -> usize {
            match a {
                Ast::Empty | Ast::Epsilon | Ast::Bytes(_) => 1,
                Ast::Concat(xs) | Ast::Alt(xs) => 1 + xs.iter().map(sz).sum::<usize>(),
                Ast::Star(x) | Ast::Plus(x) | Ast::Opt(x) => 1 + sz(x),
                Ast::Var(_, x) => 1 + sz(x),
            }
        }
        sz(&self.ast)
    }

    /// Syntactic functionality check: `R(α) = Ref(α)`.
    pub fn is_functional(&self) -> bool {
        check_functional(&self.ast).is_ok()
    }

    /// Compiles to a VSet-automaton (Thompson construction with variable
    /// operations). Errors if the formula is not functional.
    pub fn to_vsa(&self) -> Result<Vsa, RgxError> {
        check_functional(&self.ast).map_err(|message| RgxError { offset: 0, message })?;
        let mut vsa = Vsa::new(self.vars.clone());
        let accept = vsa.add_state();
        vsa.set_final(accept, true);
        let start = vsa.start();
        compile(&self.ast, &mut vsa, &self.vars, start, accept);
        Ok(vsa)
    }

    /// Compiles a **variable-free** formula to a plain regular language
    /// automaton (used for filters and preconditions, §7.2).
    pub fn to_lang_vsa(&self) -> Result<Vsa, RgxError> {
        if !self.vars.is_empty() {
            return Err(RgxError {
                offset: 0,
                message: "expected a variable-free regular expression".into(),
            });
        }
        self.to_vsa()
    }
}

fn collect_vars(ast: &Ast, out: &mut BTreeSet<String>) {
    match ast {
        Ast::Empty | Ast::Epsilon | Ast::Bytes(_) => {}
        Ast::Concat(xs) | Ast::Alt(xs) => xs.iter().for_each(|x| collect_vars(x, out)),
        Ast::Star(x) | Ast::Plus(x) | Ast::Opt(x) => collect_vars(x, out),
        Ast::Var(name, x) => {
            out.insert(name.clone());
            collect_vars(x, out);
        }
    }
}

/// Returns the variable set of the subformula if functional, or an error.
fn check_functional(ast: &Ast) -> Result<BTreeSet<String>, String> {
    match ast {
        Ast::Empty | Ast::Epsilon | Ast::Bytes(_) => Ok(BTreeSet::new()),
        Ast::Concat(xs) => {
            let mut all = BTreeSet::new();
            for x in xs {
                let v = check_functional(x)?;
                for name in v {
                    if !all.insert(name.clone()) {
                        return Err(format!("variable {name} bound twice on a path"));
                    }
                }
            }
            Ok(all)
        }
        Ast::Alt(xs) => {
            let mut sets = xs
                .iter()
                .map(check_functional)
                .collect::<Result<Vec<_>, _>>()?;
            let first = sets.pop().unwrap_or_default();
            for s in sets {
                if s != first {
                    return Err("alternation branches bind different variables".to_string());
                }
            }
            Ok(first)
        }
        Ast::Star(x) | Ast::Plus(x) | Ast::Opt(x) => {
            let v = check_functional(x)?;
            if !v.is_empty() {
                return Err(format!(
                    "variables {:?} under repetition/optional are not functional",
                    v
                ));
            }
            Ok(v)
        }
        Ast::Var(name, x) => {
            let mut v = check_functional(x)?;
            if !v.insert(name.clone()) {
                return Err(format!("variable {name} nested within itself"));
            }
            Ok(v)
        }
    }
}

/// Thompson-style compilation of `ast` between `from` and `to`.
fn compile(ast: &Ast, vsa: &mut Vsa, vars: &VarTable, from: u32, to: u32) {
    match ast {
        Ast::Empty => {}
        Ast::Epsilon => vsa.add_transition(from, Label::Eps, to),
        Ast::Bytes(m) => vsa.add_transition(from, Label::Bytes(*m), to),
        Ast::Concat(xs) => {
            if xs.is_empty() {
                vsa.add_transition(from, Label::Eps, to);
                return;
            }
            let mut cur = from;
            for (i, x) in xs.iter().enumerate() {
                let next = if i + 1 == xs.len() {
                    to
                } else {
                    vsa.add_state()
                };
                compile(x, vsa, vars, cur, next);
                cur = next;
            }
        }
        Ast::Alt(xs) => {
            for x in xs {
                compile(x, vsa, vars, from, to);
            }
        }
        Ast::Star(x) => {
            let hub = vsa.add_state();
            vsa.add_transition(from, Label::Eps, hub);
            vsa.add_transition(hub, Label::Eps, to);
            let back = vsa.add_state();
            compile(x, vsa, vars, hub, back);
            vsa.add_transition(back, Label::Eps, hub);
        }
        Ast::Plus(x) => {
            // α+ = α · α*
            let mid = vsa.add_state();
            compile(x, vsa, vars, from, mid);
            compile(&Ast::Star(x.clone()), vsa, vars, mid, to);
        }
        Ast::Opt(x) => {
            vsa.add_transition(from, Label::Eps, to);
            compile(x, vsa, vars, from, to);
        }
        Ast::Var(name, x) => {
            let v = vars.lookup(name).expect("collected variable");
            let inner_start = vsa.add_state();
            let inner_end = vsa.add_state();
            vsa.add_transition(from, Label::Op(VarOp::Open(v)), inner_start);
            compile(x, vsa, vars, inner_start, inner_end);
            vsa.add_transition(inner_end, Label::Op(VarOp::Close(v)), to);
        }
    }
}

impl fmt::Display for Ast {
    /// Renders the formula back to parseable pattern syntax (an inverse
    /// of [`Rgx::parse`] up to grouping).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn byte_atom(f: &mut fmt::Formatter<'_>, set: &ByteSet) -> fmt::Result {
            if *set == ByteSet::FULL {
                return write!(f, ".");
            }
            if set.len() == 1 {
                let b = set.first().unwrap();
                return write_escaped(f, b);
            }
            // Render as a class; prefer the complement when smaller.
            if set.len() > 128 {
                write!(f, "[^")?;
                for b in set.complement().iter() {
                    write_escaped(f, b)?;
                }
                return write!(f, "]");
            }
            write!(f, "[")?;
            for b in set.iter() {
                write_escaped(f, b)?;
            }
            write!(f, "]")
        }
        fn write_escaped(f: &mut fmt::Formatter<'_>, b: u8) -> fmt::Result {
            match b {
                b'\n' => write!(f, "\\n"),
                b'\t' => write!(f, "\\t"),
                b'\r' => write!(f, "\\r"),
                0 => write!(f, "\\0"),
                b if b.is_ascii_alphanumeric() || b == b' ' || b == b'_' => {
                    write!(f, "{}", b as char)
                }
                b if b.is_ascii_graphic() => write!(f, "\\{}", b as char),
                b => write!(f, "\\x{b:02x}"), // note: not re-parseable; rare
            }
        }
        fn grouped(f: &mut fmt::Formatter<'_>, a: &Ast) -> fmt::Result {
            match a {
                Ast::Alt(_) | Ast::Concat(_) => write!(f, "({a})"),
                _ => write!(f, "{a}"),
            }
        }
        match self {
            Ast::Empty => write!(f, "[^\\0-\\xff]"), // unsatisfiable atom
            Ast::Epsilon => Ok(()),
            Ast::Bytes(set) => byte_atom(f, set),
            Ast::Concat(xs) => {
                for x in xs {
                    // Captures are parenthesized so a preceding literal
                    // letter cannot be absorbed into the variable name
                    // on re-parse (maximal-ident rule).
                    if matches!(x, Ast::Alt(_) | Ast::Var(..)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Ast::Alt(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Ast::Star(x) => {
                grouped(f, x)?;
                write!(f, "*")
            }
            Ast::Plus(x) => {
                grouped(f, x)?;
                write!(f, "+")
            }
            Ast::Opt(x) => {
                grouped(f, x)?;
                write!(f, "?")
            }
            Ast::Var(name, x) => write!(f, "{name}{{{x}}}"),
        }
    }
}

impl fmt::Display for Rgx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ast)
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> RgxError {
        RgxError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn parse_alt(&mut self) -> Result<Ast, RgxError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.pos += 1;
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RgxError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == b'|' || c == b')' || c == b'}' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Epsilon,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RgxError> {
        let mut atom = self.parse_atom()?;
        while let Some(c) = self.peek() {
            match c {
                b'*' => {
                    self.pos += 1;
                    atom = Ast::Star(Box::new(atom));
                }
                b'+' => {
                    self.pos += 1;
                    atom = Ast::Plus(Box::new(atom));
                }
                b'?' => {
                    self.pos += 1;
                    atom = Ast::Opt(Box::new(atom));
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Ast, RgxError> {
        let Some(c) = self.peek() else {
            return Err(self.err("unexpected end of pattern"));
        };
        match c {
            b'(' => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            b'[' => self.parse_class(),
            b'.' => {
                self.pos += 1;
                Ok(Ast::Bytes(ByteSet::FULL))
            }
            b'\\' => {
                self.pos += 1;
                let m = self.parse_escape()?;
                Ok(Ast::Bytes(m))
            }
            b'*' | b'+' | b'?' => Err(self.err("repetition with nothing to repeat")),
            b'{' | b'}' | b')' | b'|' => Err(self.err("unexpected metacharacter")),
            _ if is_ident_start(c) && self.lookahead_capture() => {
                let name = self.parse_ident();
                self.pos += 1; // consume '{'
                let inner = self.parse_alt()?;
                if self.peek() != Some(b'}') {
                    return Err(self.err("expected '}' closing capture"));
                }
                self.pos += 1;
                Ok(Ast::Var(name, Box::new(inner)))
            }
            _ => {
                self.pos += 1;
                Ok(Ast::Bytes(ByteSet::single(c)))
            }
        }
    }

    /// Whether an identifier followed directly by `{` starts here.
    fn lookahead_capture(&self) -> bool {
        let mut i = self.pos;
        if !self.input.get(i).copied().is_some_and(is_ident_start) {
            return false;
        }
        while self.input.get(i).copied().is_some_and(is_ident_char) {
            i += 1;
        }
        self.input.get(i) == Some(&b'{')
    }

    fn parse_ident(&mut self) -> String {
        let start = self.pos;
        while self.peek().is_some_and(is_ident_char) {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned()
    }

    fn parse_escape(&mut self) -> Result<ByteSet, RgxError> {
        let Some(c) = self.peek() else {
            return Err(self.err("dangling escape"));
        };
        self.pos += 1;
        Ok(match c {
            b'd' => ByteSet::range(b'0', b'9'),
            b'w' => {
                let mut m = ByteSet::range(b'a', b'z')
                    .or(&ByteSet::range(b'A', b'Z'))
                    .or(&ByteSet::range(b'0', b'9'));
                m.insert(b'_');
                m
            }
            b's' => ByteSet::from_bytes(b" \t\r\n\x0c"),
            b'n' => ByteSet::single(b'\n'),
            b't' => ByteSet::single(b'\t'),
            b'r' => ByteSet::single(b'\r'),
            b'0' => ByteSet::single(0),
            _ => ByteSet::single(c),
        })
    }

    fn parse_class(&mut self) -> Result<Ast, RgxError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let negate = self.peek() == Some(b'^');
        if negate {
            self.pos += 1;
        }
        let mut set = ByteSet::EMPTY;
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated character class"));
            };
            if c == b']' {
                self.pos += 1;
                break;
            }
            let lo = if c == b'\\' {
                self.pos += 1;
                let m = self.parse_escape()?;
                if m.len() != 1 {
                    // Multi-byte escape inside class: union it in.
                    set = set.or(&m);
                    continue;
                }
                m.first().unwrap()
            } else {
                self.pos += 1;
                c
            };
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1) != Some(&b']') {
                self.pos += 1;
                let Some(hi) = self.peek() else {
                    return Err(self.err("unterminated range"));
                };
                let hi = if hi == b'\\' {
                    self.pos += 1;
                    let m = self.parse_escape()?;
                    m.first().ok_or_else(|| self.err("bad range bound"))?
                } else {
                    self.pos += 1;
                    hi
                };
                if lo > hi {
                    return Err(self.err("reversed range"));
                }
                set = set.or(&ByteSet::range(lo, hi));
            } else {
                set.insert(lo);
            }
        }
        if set.is_empty() && !negate {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Bytes(if negate { set.complement() } else { set }))
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::span::Span;
    use crate::vars::VarId;

    #[test]
    fn parse_literals_and_captures() {
        let r = Rgx::parse("a(x{b+})c").unwrap();
        assert_eq!(r.vars().names(), &["x"]);
        assert!(r.is_functional());
        let rel = eval(&r.to_vsa().unwrap(), b"abbc");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(1, 3));
    }

    #[test]
    fn parse_classes_escapes_dot() {
        let r = Rgx::parse(r"[a-c]\d.\n").unwrap();
        let v = r.to_vsa().unwrap();
        assert_eq!(eval(&v, b"b7Z\n").len(), 1);
        assert!(eval(&v, b"d7Z\n").is_empty());
        assert!(eval(&v, b"b7Z.").is_empty());
    }

    #[test]
    fn negated_class() {
        let r = Rgx::parse("[^.]+").unwrap();
        let v = r.to_vsa().unwrap();
        assert_eq!(eval(&v, b"ab c").len(), 1);
        assert!(eval(&v, b"a.c").is_empty());
    }

    #[test]
    fn alternation_and_repetition() {
        let r = Rgx::parse("(ab|cd)*e?").unwrap();
        let v = r.to_vsa().unwrap();
        for doc in [b"".as_slice(), b"ab", b"cdab", b"abe", b"e"] {
            assert_eq!(eval(&v, doc).len(), 1, "doc {doc:?}");
        }
        assert!(eval(&v, b"a").is_empty());
    }

    #[test]
    fn ident_without_brace_is_literal() {
        // "xy" with no '{' is just two literal bytes.
        let r = Rgx::parse("xy").unwrap();
        assert!(r.vars().is_empty());
        assert_eq!(eval(&r.to_vsa().unwrap(), b"xy").len(), 1);
    }

    #[test]
    fn multichar_identifiers() {
        let r = Rgx::parse("name{a}_tail{b}").unwrap();
        assert_eq!(r.vars().names(), &["_tail", "name"]);
    }

    #[test]
    fn escaped_brace_is_literal() {
        let r = Rgx::parse(r"a\{b\}").unwrap();
        assert!(r.vars().is_empty());
        assert_eq!(eval(&r.to_vsa().unwrap(), b"a{b}").len(), 1);
    }

    #[test]
    fn functionality_violations() {
        // Variable under star (paper footnote 5).
        let r = Rgx::parse("(x{a})*").unwrap();
        assert!(!r.is_functional());
        assert!(r.to_vsa().is_err());
        // Branches binding different variables.
        let r = Rgx::parse("x{a}|y{a}").unwrap();
        assert!(!r.is_functional());
        // Variable twice on a path.
        let r = Rgx::parse("x{a}x{b}").unwrap();
        assert!(!r.is_functional());
        // Same variable on both branches is fine.
        let r = Rgx::parse("x{a}|x{b}").unwrap();
        assert!(r.is_functional());
    }

    #[test]
    fn parse_errors_have_offsets() {
        let e = Rgx::parse("a(b").unwrap_err();
        assert_eq!(e.offset, 3);
        let e = Rgx::parse("*a").unwrap_err();
        assert_eq!(e.offset, 0);
        assert!(Rgx::parse("x{a").is_err());
        assert!(Rgx::parse("[z-a]").is_err());
        assert!(Rgx::parse("[]").is_err());
    }

    #[test]
    fn nested_captures() {
        let r = Rgx::parse("outer{a inner{b} c}").unwrap();
        assert!(r.is_functional());
        let v = r.to_vsa().unwrap();
        let rel = eval(&v, b"a b c");
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        let outer = v.vars().lookup("outer").unwrap();
        let inner = v.vars().lookup("inner").unwrap();
        assert_eq!(t.get(outer), Span::new(0, 5));
        assert_eq!(t.get(inner), Span::new(2, 3));
    }

    #[test]
    fn empty_pattern_is_epsilon() {
        let r = Rgx::parse("").unwrap();
        assert_eq!(r.ast(), &Ast::Epsilon);
        let v = r.to_vsa().unwrap();
        assert_eq!(eval(&v, b"").len(), 1);
        assert!(eval(&v, b"a").is_empty());
    }

    #[test]
    fn paper_example_email_phone_proximity() {
        // Paper §3.1: email/phone mentions with at most three tokens in
        // between — simplified shape compiles and runs.
        let r = Rgx::parse(".*e{[a-z]+}( [a-z]+)?( [a-z]+)?( [a-z]+)? p{[0-9]+}.*").unwrap();
        let v = r.to_vsa().unwrap();
        assert!(!eval(&v, b"ab cd 12").is_empty());
        // Too many tokens strictly between the captured pair is rejected
        // when the prefix is anchored away (no leading Σ*).
        let anchored = Rgx::parse("e{[a-z]+}( [a-z]+)?( [a-z]+)?( [a-z]+)? p{[0-9]+}")
            .unwrap()
            .to_vsa()
            .unwrap();
        assert!(!eval(&anchored, b"ab b c d 12").is_empty());
        assert!(eval(&anchored, b"ab b c d e 12").is_empty());
    }

    #[test]
    fn to_lang_vsa_rejects_variables() {
        assert!(Rgx::parse("x{a}").unwrap().to_lang_vsa().is_err());
        assert!(Rgx::parse("a*").unwrap().to_lang_vsa().is_ok());
    }

    #[test]
    fn display_roundtrip() {
        for pat in [
            "a(x{b+})c",
            ".*y{[ab]+}.*",
            "(ab|cd)*e?",
            "x{a}|x{[^c]+}",
            "a\\.b\\nc",
        ] {
            let r = Rgx::parse(pat).unwrap();
            let printed = r.to_string();
            let reparsed = Rgx::parse(&printed)
                .unwrap_or_else(|e| panic!("reprint of {pat:?} -> {printed:?}: {e}"));
            // Semantic roundtrip: the spanners are equivalent.
            let a = r.to_vsa().unwrap();
            let b = reparsed.to_vsa().unwrap();
            assert!(
                crate::equiv::spanner_equivalent(&a, &b).unwrap().holds(),
                "pattern {pat:?} reprinted as {printed:?}"
            );
        }
    }

    #[test]
    fn from_ast_roundtrip() {
        let ast = Ast::Var("v".into(), Box::new(Ast::Bytes(ByteSet::single(b'a'))));
        let r = Rgx::from_ast(ast).unwrap();
        assert_eq!(r.vars().names(), &["v"]);
        assert!(r.source().is_none());
        assert!(r.size() >= 2);
    }
}
