#!/usr/bin/env sh
# End-to-end smoke test for the extraction service: boots
# `splitc-server` on an ephemeral loopback port, drives a full
# register -> certify -> extract -> stats round-trip over real HTTP
# (python3 stdlib http.client — no extra dependencies), compares the
# extraction relations byte-for-byte against `splitc-server --offline`
# (the no-server differential reference), and finally delivers SIGTERM
# and asserts a graceful exit 0 with "shutdown complete" on stdout.
#
# Usage: scripts/server_smoke.sh [server-binary]
#        (default: ./target/release/splitc-server)
set -eu

bin="${1:-./target/release/splitc-server}"
test -x "$bin" || { echo "server binary $bin not found (build with: cargo build --release -p splitc-server)" >&2; exit 1; }

log="$(mktemp)"
trap 'rm -f "$log"; kill "$pid" 2>/dev/null || true' EXIT

"$bin" --port 0 --workers 4 >"$log" 2>&1 &
pid=$!

# Wait for the bound-address line (the server prints and flushes it
# once the listener is up).
addr=""
i=0
while [ "$i" -lt 100 ]; do
  addr="$(sed -n 's/^listening on //p' "$log")"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "server died during startup:" >&2; cat "$log" >&2; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
test -n "$addr" || { echo "server never printed its address:" >&2; cat "$log" >&2; exit 1; }
echo "== server up at $addr (pid $pid)" >&2

python3 - "$addr" "$bin" <<'PY'
import http.client
import json
import subprocess
import sys

addr, bin_path = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)
conn = http.client.HTTPConnection(host, int(port), timeout=60)


def call(method, path, obj=None, expect=200):
    body = None if obj is None else json.dumps(obj)
    conn.request(method, path, body=body)
    resp = conn.getresponse()
    data = resp.read()
    if resp.status != expect:
        sys.exit(f"{method} {path}: expected {expect}, got {resp.status}: {data!r}")
    return data


PATTERN = ".*x{a+}.*"
DOCS = [
    "Alpha aaa bravo. Charlie aa delta.",
    "Echo a foxtrot! Golf aaaa hotel? No runs here.",
]

# Register + certify (cold, then cached).
spanner = json.loads(call("POST", "/spanners", {"pattern": PATTERN}))
splitter = json.loads(call("POST", "/splitters", {"builtin": "sentences"}))
pair = {"spanner": spanner["id"], "splitter": splitter["id"]}
cert = json.loads(call("POST", "/certify", pair))
assert cert["holds"] is True, f"pair must be self-split-correct: {cert}"
assert cert["cached"] is False, f"first certification must run: {cert}"
cert2 = json.loads(call("POST", "/certify", pair))
assert cert2["cached"] is True, f"second certification must hit the cache: {cert2}"

# Extract through the server, then offline; the relations payloads
# must be byte-identical (both sides share one JSON encoder).
body = call("POST", "/extract", {**pair, "docs": DOCS}).decode()
prefix = '{"relations":'
assert body.startswith(prefix), f"unexpected extract shape: {body[:80]}"
server_rel = body[len(prefix):body.index(',"stats":')]

offline_req = json.dumps(
    {"pattern": PATTERN, "splitter_builtin": "sentences", "docs": DOCS})
offline = subprocess.run(
    [bin_path, "--offline"], input=offline_req, capture_output=True,
    text=True, check=True).stdout.strip()
assert offline.startswith(prefix) and offline.endswith("}"), \
    f"unexpected offline shape: {offline[:80]}"
offline_rel = offline[len(prefix):-1]
assert server_rel == offline_rel, (
    "server and offline relations differ:\n"
    f"  server : {server_rel}\n  offline: {offline_rel}")
assert server_rel != "[]", "smoke corpus must produce tuples"

# Stats reflect the session: one certification miss, cache hits from
# the re-certify and the checked extract, all responses 2xx.
stats = json.loads(call("GET", "/stats"))
cc = stats["registry"]["cert_cache"]
assert cc["misses"] == 1, f"exactly one cold certification expected: {cc}"
assert cc["hits"] >= 2, f"re-certify + checked extract must hit: {cc}"
assert stats["responses"]["client_4xx"] == 0 \
    and stats["responses"]["server_5xx"] == 0, \
    f"no error responses expected: {stats['responses']}"
assert stats["latency"]["extract"]["count"] == 1, \
    f"one extract recorded: {stats['latency']['extract']}"
assert stats["pool"]["workers"] == 4

print("== round-trip OK: relations byte-identical to offline reference,"
      f" {len(json.loads(server_rel))} docs extracted")
PY

# Graceful shutdown: SIGTERM -> in-flight work completes, exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
test "$status" -eq 0 || { echo "server exited $status after SIGTERM:" >&2; cat "$log" >&2; exit 1; }
grep -q "shutdown complete" "$log" || { echo "no graceful-shutdown marker:" >&2; cat "$log" >&2; exit 1; }
trap 'rm -f "$log"' EXIT
echo "== graceful shutdown OK (exit 0)" >&2
echo "server smoke: all checks passed" >&2
