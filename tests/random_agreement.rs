//! Randomized cross-crate agreement tests: random functional regex
//! formulas and splitters from a structured generator; every verdict of
//! the decision procedures is validated against brute-force evaluation
//! over bounded document sets.

use proptest::prelude::*;
use split_correctness::prelude::*;
use splitc_spanner::eval::eval;

/// A structured generator for *functional* regex-formula patterns over
/// the alphabet {a, b, c}: a context kind, a captured body, and an
/// optional literal guard. Shrinks nicely via the component indices.
#[derive(Debug, Clone)]
struct RandPattern {
    context: u8, // 0: anchored, 1: Σ*..Σ*, 2: boundary-guarded
    body: u8,    // index into BODIES
    guard: u8,   // index into GUARDS
}

const BODIES: &[&str] = &["a+", "ab", "[ab]+", "a", "b*", "ab?a", "(a|bb)"];
const GUARDS: &[&str] = &["", "a", "b"];

impl RandPattern {
    fn pattern(&self) -> String {
        let body = BODIES[self.body as usize % BODIES.len()];
        let guard = GUARDS[self.guard as usize % GUARDS.len()];
        match self.context % 3 {
            0 => format!("{guard}(y{{{body}}}){guard}"),
            1 => format!(".*{guard}(y{{{body}}}){guard}.*"),
            _ => format!("(.*c|){guard}(y{{{body}}}){guard}(c.*|)"),
        }
    }

    fn build(&self) -> Vsa {
        Rgx::parse(&self.pattern()).unwrap().to_vsa().unwrap()
    }
}

fn rand_pattern() -> impl Strategy<Value = RandPattern> {
    (0u8..3, 0u8..BODIES.len() as u8, 0u8..GUARDS.len() as u8).prop_map(|(context, body, guard)| {
        RandPattern {
            context,
            body,
            guard,
        }
    })
}

const SPLITTERS: &[&str] = &[
    "(.*c)?x{[^c]+}(c.*)?", // sentence-like, disjoint
    "x{.*}",                // whole document
    ".*x{..}.*",            // overlapping windows
    "x{[ab]+}c.*|x{[ab]+}", // prefix chunk
];

fn all_docs(alphabet: &[u8], max_len: usize) -> Vec<Vec<u8>> {
    let mut docs: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier = docs.clone();
    for _ in 0..max_len {
        let mut next = Vec::new();
        for d in &frontier {
            for &b in alphabet {
                let mut d2 = d.clone();
                d2.push(b);
                next.push(d2);
            }
        }
        docs.extend(next.iter().cloned());
        frontier = next;
    }
    docs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// self_splittable's verdict matches brute-force comparison of P and
    /// P ∘ S over every document of length ≤ 5 over {a,b,c}.
    ///
    /// Caveat: brute force over bounded documents can only *refute*; a
    /// mismatch where the procedure says Fails but all short documents
    /// agree is resolved by executing the procedure's own witness.
    #[test]
    fn self_splittability_verdict_vs_bruteforce(
        rp in rand_pattern(),
        si in 0..SPLITTERS.len(),
    ) {
        let p = rp.build();
        let s = Splitter::parse(SPLITTERS[si]).unwrap();
        let verdict = self_splittable(&p, &s).unwrap();
        match verdict {
            Verdict::Holds => {
                for d in all_docs(b"abc", 5) {
                    let direct = eval(&p, &d);
                    let mut composed = Vec::new();
                    for sp in s.split(&d) {
                        for t in eval(&p, sp.slice(&d)).iter() {
                            composed.push(t.shift(sp));
                        }
                    }
                    prop_assert_eq!(
                        direct,
                        SpanRelation::from_tuples(composed),
                        "claimed Holds but doc {:?} disagrees (pattern {})",
                        d, rp.pattern()
                    );
                }
            }
            Verdict::Fails(cex) => {
                // The witness itself must separate the plans.
                let direct = eval(&p, &cex.doc);
                let mut composed = Vec::new();
                for sp in s.split(&cex.doc) {
                    for t in eval(&p, sp.slice(&cex.doc)).iter() {
                        composed.push(t.shift(sp));
                    }
                }
                let composed = SpanRelation::from_tuples(composed);
                prop_assert_ne!(direct, composed, "witness must separate");
            }
        }
    }

    /// The cover condition verdict matches brute force, and the fast
    /// (Lemma 5.6) path agrees with the general one after
    /// determinization whenever the splitter is disjoint.
    #[test]
    fn cover_verdict_vs_bruteforce(rp in rand_pattern(), si in 0..SPLITTERS.len()) {
        let p = rp.build();
        let s = Splitter::parse(SPLITTERS[si]).unwrap();
        let verdict = matches!(cover_condition(&p, &s), Verdict::Holds);
        if verdict {
            for d in all_docs(b"abc", 5) {
                let splits = s.split(&d);
                for t in eval(&p, &d).iter() {
                    prop_assert!(
                        splits.iter().any(|sp| t.covered_by(*sp)),
                        "claimed covered but {:?} is not on {:?} (pattern {})",
                        t, d, rp.pattern()
                    );
                }
            }
        }
        if s.is_disjoint() {
            let fast = matches!(
                cover_condition_df(&p.determinize(), &s.determinize()).unwrap(),
                Verdict::Holds
            );
            prop_assert_eq!(fast, verdict, "fast cover agrees");
        }
    }

    /// For disjoint splitters, a positive splittability verdict comes
    /// with a witness that truly satisfies P = witness ∘ S (validated on
    /// bounded documents); a negative verdict is confirmed by its
    /// counterexample.
    #[test]
    fn splittability_witness_is_sound(rp in rand_pattern()) {
        let p = rp.build();
        let s = Splitter::parse(SPLITTERS[0]).unwrap(); // disjoint
        match splittable(&p, &s).unwrap() {
            SplittabilityVerdict::Splittable { witness } => {
                for d in all_docs(b"abc", 4) {
                    let direct = eval(&p, &d);
                    let mut composed = Vec::new();
                    for sp in s.split(&d) {
                        for t in eval(&witness, sp.slice(&d)).iter() {
                            composed.push(t.shift(sp));
                        }
                    }
                    prop_assert_eq!(direct, SpanRelation::from_tuples(composed));
                }
            }
            SplittabilityVerdict::NotSplittable(cex) => {
                // Lemma 5.12: for disjoint S, P is splittable iff
                // P = Pcan ∘ S; the counterexample separates them.
                let can = canonical_split_spanner(&p, &s);
                let direct = eval(&p, &cex.doc);
                let mut composed = Vec::new();
                for sp in s.split(&cex.doc) {
                    for t in eval(&can, sp.slice(&cex.doc)).iter() {
                        composed.push(t.shift(sp));
                    }
                }
                prop_assert_ne!(direct, SpanRelation::from_tuples(composed));
            }
        }
    }

    /// Determinization commutes with everything downstream: verdicts on
    /// determinized inputs equal verdicts on the originals.
    #[test]
    fn determinization_is_transparent(rp in rand_pattern(), si in 0..SPLITTERS.len()) {
        let p = rp.build();
        let s = Splitter::parse(SPLITTERS[si]).unwrap();
        let v1 = self_splittable(&p, &s).unwrap().holds();
        let v2 = self_splittable(&p.determinize(), &s).unwrap().holds();
        prop_assert_eq!(v1, v2);
    }
}
