//! Property-based tests for the spanner crate: the formalism-level
//! invariants (reference evaluation, determinization/functionalization,
//! composition, disjointness, algebra).
//!
//! Per-engine differential coverage (nfa / dense / prefilter / aot ×
//! batch / streaming / fleet, starved caches, sparse documents) lives in
//! the repository-wide engine-matrix harness (`tests/engine_matrix.rs`
//! at the workspace root), which draws random spanners from the shared
//! generator in `splitc_textgen::spangen` — new engines register there
//! instead of growing a copy-pasted suite here.

use crate::eval::{eval, reference_eval};
use crate::rgx::Rgx;
use crate::splitter::{compose, Splitter};
use crate::tuple::SpanRelation;
use crate::vsa::Vsa;
use proptest::prelude::*;
const PATTERNS: &[&str] = &[
    "x{a+}",
    ".*x{a}.*",
    "x{a*}y{b*}",
    "(a|b)*x{ab}(a|b)*",
    "x{[ab]+}",
    "a?x{b}a?",
    ".*x{}.*",
    "x{a|bb}",
    "(x{a}b)|(a(x{b}))",
    ".*x{a.a}.*",
];

const SPLITTER_PATTERNS: &[&str] = &[
    "(.*\\.)?x{[^.]+}(\\..*)?", // sentences
    "x{.*}",                    // whole document
    ".*x{..}.*",                // 2-byte windows (non-disjoint)
    "x{a*}.*",                  // prefix of a's (incl. empty)
    "x{ab}b|a(x{bb})",          // paper example 5.8
];

fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'.')], 0..8)
}

fn compile(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_agrees_with_reference(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        prop_assert_eq!(eval(&p, &doc), reference_eval(&p, &doc));
    }

    #[test]
    fn determinize_preserves_outputs(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        let d = p.determinize();
        prop_assert!(d.is_deterministic());
        prop_assert!(d.is_functional());
        prop_assert_eq!(eval(&p, &doc), eval(&d, &doc));
    }

    #[test]
    fn functionalize_preserves_outputs(pi in 0..PATTERNS.len(), doc in doc_strategy()) {
        let p = compile(PATTERNS[pi]);
        let f = p.functionalize();
        prop_assert!(f.is_functional());
        prop_assert_eq!(eval(&p, &doc), eval(&f, &doc));
    }

    #[test]
    fn composition_matches_pointwise_definition(
        pi in 0..PATTERNS.len(),
        si in 0..SPLITTER_PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let ps = compile(PATTERNS[pi]);
        let s = Splitter::parse(SPLITTER_PATTERNS[si]).unwrap();
        let composed = compose(&ps, &s);
        let direct = eval(&composed, &doc);
        let mut expected = Vec::new();
        for sp in s.split(&doc) {
            for t in eval(&ps, sp.slice(&doc)).iter() {
                expected.push(t.shift(sp));
            }
        }
        prop_assert_eq!(direct, SpanRelation::from_tuples(expected));
    }

    #[test]
    fn disjointness_agrees_with_bruteforce(si in 0..SPLITTER_PATTERNS.len(), docs in proptest::collection::vec(doc_strategy(), 1..6)) {
        let s = Splitter::parse(SPLITTER_PATTERNS[si]).unwrap();
        let verdict = s.is_disjoint();
        if verdict {
            // No sampled document may produce overlapping spans.
            for doc in &docs {
                let spans = s.split(doc);
                for (i, a) in spans.iter().enumerate() {
                    for b in &spans[i + 1..] {
                        prop_assert!(
                            a.disjoint(*b),
                            "claimed disjoint but {a:?} overlaps {b:?} on {doc:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn union_is_set_union(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let a = compile(PATTERNS[pi]);
        let b = compile(PATTERNS[qi]);
        if a.vars().names() == b.vars().names() {
            let u = a.union(&b).unwrap();
            prop_assert_eq!(eval(&u, &doc), eval(&a, &doc).union(&eval(&b, &doc)));
        }
    }

    #[test]
    fn equivalence_consistent_with_eval(
        pi in 0..PATTERNS.len(),
        qi in 0..PATTERNS.len(),
        doc in doc_strategy(),
    ) {
        let a = compile(PATTERNS[pi]);
        let b = compile(PATTERNS[qi]);
        if a.vars().names() == b.vars().names()
            && crate::equiv::spanner_equivalent(&a, &b).unwrap().holds()
        {
            prop_assert_eq!(eval(&a, &doc), eval(&b, &doc));
        }
    }
}
