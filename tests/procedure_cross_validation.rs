//! Cross-validation of the decision procedures against brute-force
//! checks over bounded document sets, and of the fast (PTIME) paths
//! against the general (PSPACE) procedures.

use split_correctness::prelude::*;
use splitc_core::cover::{cover_condition, cover_condition_df};
use splitc_core::{split_correct, split_correct_df};
use splitc_spanner::eval::eval;

fn vsa(p: &str) -> Vsa {
    Rgx::parse(p).unwrap().to_vsa().unwrap()
}

/// Brute-force split-correctness over all documents up to a length
/// bound: `P(d) = ⋃_{s ∈ S(d)} shift(P_S(d_s), s)`.
fn brute_split_correct(p: &Vsa, ps: &Vsa, s: &Splitter, alphabet: &[u8], max_len: usize) -> bool {
    let mut docs: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier = docs.clone();
    for _ in 0..max_len {
        let mut next = Vec::new();
        for d in &frontier {
            for &b in alphabet {
                let mut d2 = d.clone();
                d2.push(b);
                next.push(d2);
            }
        }
        docs.extend(next.iter().cloned());
        frontier = next;
    }
    for d in &docs {
        let direct = eval(p, d);
        let mut expected = Vec::new();
        for sp in s.split(d) {
            for t in eval(ps, sp.slice(d)).iter() {
                expected.push(t.shift(sp));
            }
        }
        if direct != SpanRelation::from_tuples(expected) {
            return false;
        }
    }
    true
}

/// Brute-force cover condition over bounded documents.
fn brute_cover(p: &Vsa, s: &Splitter, alphabet: &[u8], max_len: usize) -> bool {
    let mut docs: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier = docs.clone();
    for _ in 0..max_len {
        let mut next = Vec::new();
        for d in &frontier {
            for &b in alphabet {
                let mut d2 = d.clone();
                d2.push(b);
                next.push(d2);
            }
        }
        docs.extend(next.iter().cloned());
        frontier = next;
    }
    for d in &docs {
        let splits = s.split(d);
        for t in eval(p, d).iter() {
            if !splits.iter().any(|sp| t.covered_by(*sp)) {
                return false;
            }
        }
    }
    true
}

#[test]
fn split_correctness_agrees_with_bruteforce() {
    let sentence_like = Splitter::parse("(.*c)?x{[^c]+}(c.*)?").unwrap();
    let cases: Vec<(&str, &str, &Splitter, bool)> = vec![
        (".*y{a+}.*", ".*y{a+}.*", &sentence_like, true),
        (".*y{ab}.*", "y{ab}.*", &sentence_like, false),
        (".*y{aca}.*", ".*y{aca}.*", &sentence_like, false),
    ];
    for (ppat, pspat, s, expected) in cases {
        let p = vsa(ppat);
        let ps = vsa(pspat);
        let verdict = split_correct(&p, &ps, s).unwrap().holds();
        assert_eq!(verdict, expected, "procedure on P={ppat} PS={pspat}");
        // Brute force can only *refute*; on these small automata and a
        // 3-letter alphabet, length 6 suffices to catch every mismatch
        // above (the refuting documents are short).
        let brute = brute_split_correct(&p, &ps, s, b"abc", 6);
        assert_eq!(brute, expected, "brute force on P={ppat} PS={pspat}");
    }
}

#[test]
fn cover_condition_agrees_with_bruteforce() {
    let sentence_like = Splitter::parse("(.*c)?x{[^c]+}(c.*)?").unwrap();
    for (pat, expected) in [
        (".*y{a+}.*", true),
        (".*y{aca}.*", false),
        (".*y{[abc]}.*", false), // y can be the delimiter itself
        ("y{[^c]+}", true),      // nonempty: the empty document has no chunk
    ] {
        let p = vsa(pat);
        let verdict = matches!(cover_condition(&p, &sentence_like), Verdict::Holds);
        assert_eq!(verdict, expected, "general cover on {pat}");
        assert_eq!(
            brute_cover(&p, &sentence_like, b"abc", 6),
            expected,
            "brute cover on {pat}"
        );
        // Fast path agrees after determinization.
        let fast = matches!(
            cover_condition_df(&p.determinize(), &sentence_like.determinize()).unwrap(),
            Verdict::Holds
        );
        assert_eq!(fast, verdict, "fast cover on {pat}");
    }
}

#[test]
fn fast_and_general_split_correctness_agree_widely() {
    let s = Splitter::parse("(.*c)?x{[^c]+}(c.*)?").unwrap();
    let sd = s.determinize();
    let patterns = [
        ".*y{a+}.*",
        ".*y{ab}.*",
        "y{[^c]+}",
        ".*y{a}b.*",
        ".*a(y{b}).*",
    ];
    for ppat in patterns {
        for pspat in patterns {
            let p = vsa(ppat);
            let ps = vsa(pspat);
            let general = split_correct(&p, &ps, &s).unwrap().holds();
            let fast = split_correct_df(&p.determinize(), &ps.determinize(), &sd)
                .unwrap()
                .holds();
            assert_eq!(
                general, fast,
                "P={ppat} PS={pspat}: fast path must agree (no empty-span
                 boundary tuples in this family)"
            );
        }
    }
}

#[test]
fn counterexamples_are_always_executable() {
    // Every Fails verdict must come with a witness that actually
    // separates the two sides.
    let s = splitters::sentences();
    let cases = [
        (".*y{a\\.a}.*", ".*y{a\\.a}.*"),
        (".*y{ab}.*", "y{ab}.*"),
        (".*y{a}.*", ".*y{b}.*"),
    ];
    for (ppat, pspat) in cases {
        let p = vsa(ppat);
        let ps = vsa(pspat);
        if let Verdict::Fails(cex) = split_correct(&p, &ps, &s).unwrap() {
            let direct = eval(&p, &cex.doc);
            let mut composed = Vec::new();
            for sp in s.split(&cex.doc) {
                for t in eval(&ps, sp.slice(&cex.doc)).iter() {
                    composed.push(t.shift(sp));
                }
            }
            let composed = SpanRelation::from_tuples(composed);
            assert_ne!(direct, composed, "witness separates: {ppat} / {pspat}");
            assert_eq!(
                direct.contains(&cex.tuple),
                cex.left_has_it,
                "tuple is on the declared side"
            );
            assert_eq!(
                composed.contains(&cex.tuple),
                !cex.left_has_it,
                "and absent from the other"
            );
        } else {
            panic!("expected failure for {ppat} / {pspat}");
        }
    }
}

#[test]
fn splittability_brute_force_on_small_worlds() {
    // splittable(P, S) says "yes" exactly when the canonical witness
    // reproduces P — validated pointwise over bounded documents.
    let s = Splitter::parse("(.*c)?x{[^c]+}(c.*)?").unwrap();
    for (pat, expected) in [
        (".*y{a+}.*", true),
        (".*y{aca}.*", false),
        // Context-dependent P: the chunk "a" arises both from "ca"
        // (where P fires) and from "a" alone (where it does not), and no
        // split-spanner can tell them apart — not splittable.
        ("c(y{a})", false),
    ] {
        let p = vsa(pat);
        match splittable(&p, &s).unwrap() {
            SplittabilityVerdict::Splittable { witness } => {
                assert!(expected, "{pat} should not be splittable");
                assert!(
                    brute_split_correct(&p, &witness, &s, b"abc", 6),
                    "witness must satisfy P = witness ∘ S on bounded docs"
                );
            }
            SplittabilityVerdict::NotSplittable(_) => {
                assert!(!expected, "{pat} should be splittable");
            }
        }
    }
}
