//! Simulated multi-worker execution for single-core hosts.
//!
//! The paper's speedup experiments ran on 5 cores / a 5-node Spark
//! cluster. When the benchmark host has fewer cores than the simulated
//! pool (the CI host for this reproduction has **one**), wall-clock
//! parallel speedups cannot be observed directly. This module measures
//! the *real* single-core duration of every task (chunk or document
//! evaluation) and computes the makespan a `K`-worker pool would achieve
//! under greedy list scheduling — the same dynamic work-queue discipline
//! as [`crate::engine`]'s thread pool and, approximately, Spark's task
//! scheduler. Serial phases (splitting, result merging) are measured for
//! real and charged to the critical path, so simulated speedups honor
//! Amdahl's law.
//!
//! The substitution is documented in the top-level `README.md`
//! ("Experiment binaries"); on a genuinely multi-core host,
//! `engine::evaluate_split` provides the real thing.

use crate::engine::{ExecSpanner, SplitFn};
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use std::time::{Duration, Instant};

/// Outcome of a simulated pool run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured single-core baseline (whole-document / whole-collection
    /// evaluation).
    pub sequential: Duration,
    /// Measured serial overhead of the split plan (splitting + merge).
    pub serial_overhead: Duration,
    /// Measured total task time (sum over tasks).
    pub task_total: Duration,
    /// Number of tasks.
    pub tasks: usize,
    /// Simulated makespan per requested worker count.
    pub makespans: Vec<(usize, Duration)>,
}

impl SimReport {
    /// Speedup of the split plan with `workers` over the sequential
    /// baseline.
    pub fn speedup(&self, workers: usize) -> f64 {
        let m = self
            .makespans
            .iter()
            .find(|(w, _)| *w == workers)
            .map(|(_, d)| *d)
            .expect("workers requested in simulation");
        self.sequential.as_secs_f64() / m.as_secs_f64().max(1e-12)
    }
}

/// Greedy list scheduling: assigns tasks in order to the least-loaded
/// worker; returns the makespan.
pub fn list_schedule_makespan(durations: &[Duration], workers: usize) -> Duration {
    assert!(workers >= 1);
    let mut load = vec![0u128; workers];
    for d in durations {
        let min = load
            .iter_mut()
            .min_by_key(|l| **l)
            .expect("at least one worker");
        *min += d.as_nanos();
    }
    Duration::from_nanos(load.into_iter().max().unwrap_or(0) as u64)
}

/// Measures the split-and-distribute plan for one document: sequential
/// baseline, per-chunk task durations, serial overheads; simulates the
/// pool for each worker count.
pub fn simulate_split(
    spanner: &ExecSpanner,
    split: &SplitFn,
    doc: &[u8],
    worker_counts: &[usize],
) -> SimReport {
    // Sequential baseline (measured for real).
    let t0 = Instant::now();
    let seq = spanner.eval(doc);
    let sequential = t0.elapsed();

    // Split phase (serial).
    let t0 = Instant::now();
    let chunks = split(doc);
    let split_time = t0.elapsed();

    // Per-chunk tasks (measured individually).
    let mut durations = Vec::with_capacity(chunks.len());
    let mut partials: Vec<Vec<SpanTuple>> = Vec::with_capacity(chunks.len());
    let mut task_total = Duration::ZERO;
    for sp in &chunks {
        let t0 = Instant::now();
        let local = spanner.eval(sp.slice(doc));
        let shifted: Vec<SpanTuple> = local.iter().map(|t| t.shift(*sp)).collect();
        let d = t0.elapsed();
        durations.push(d);
        task_total += d;
        partials.push(shifted);
    }

    // Merge phase (serial).
    let t0 = Instant::now();
    let merged = SpanRelation::from_tuples(partials.into_iter().flatten().collect());
    let merge_time = t0.elapsed();
    assert_eq!(
        merged.len(),
        seq.len(),
        "simulation requires a certified split plan (P = P_S ∘ S)"
    );

    let serial_overhead = split_time + merge_time;
    let makespans = worker_counts
        .iter()
        .map(|&w| (w, list_schedule_makespan(&durations, w) + serial_overhead))
        .collect();
    SimReport {
        sequential,
        serial_overhead,
        task_total,
        tasks: durations.len(),
        makespans,
    }
}

/// Measures a collection workload (the paper's Spark experiments):
/// compares per-document tasks against per-chunk tasks on the same
/// simulated pool. Returns `(per_document, per_chunk)` reports; the
/// "sequential" field of both is the per-document-task makespan with
/// `baseline_workers` workers, so `speedup(w)` reads as "splitting
/// speedup at the same parallelism" — exactly the paper's comparison.
pub fn simulate_collection(
    spanner: &ExecSpanner,
    split: &SplitFn,
    docs: &[&[u8]],
    worker_counts: &[usize],
    baseline_workers: usize,
) -> (SimReport, SimReport) {
    // Per-document tasks.
    let mut doc_durations = Vec::with_capacity(docs.len());
    let mut doc_total = Duration::ZERO;
    for d in docs {
        let t0 = Instant::now();
        let _ = spanner.eval(d);
        let dt = t0.elapsed();
        doc_durations.push(dt);
        doc_total += dt;
    }
    let baseline = list_schedule_makespan(&doc_durations, baseline_workers);

    // Per-chunk tasks.
    let t0 = Instant::now();
    let mut chunk_slices: Vec<(usize, splitc_spanner::span::Span)> = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        for sp in split(d) {
            chunk_slices.push((i, sp));
        }
    }
    let split_time = t0.elapsed();
    let mut chunk_durations = Vec::with_capacity(chunk_slices.len());
    let mut chunk_total = Duration::ZERO;
    for (i, sp) in &chunk_slices {
        let t0 = Instant::now();
        let _ = spanner.eval(sp.slice(docs[*i]));
        let dt = t0.elapsed();
        chunk_durations.push(dt);
        chunk_total += dt;
    }

    let per_doc = SimReport {
        sequential: baseline,
        serial_overhead: Duration::ZERO,
        task_total: doc_total,
        tasks: doc_durations.len(),
        makespans: worker_counts
            .iter()
            .map(|&w| (w, list_schedule_makespan(&doc_durations, w)))
            .collect(),
    };
    let per_chunk = SimReport {
        sequential: baseline,
        serial_overhead: split_time,
        task_total: chunk_total,
        tasks: chunk_durations.len(),
        makespans: worker_counts
            .iter()
            .map(|&w| (w, list_schedule_makespan(&chunk_durations, w) + split_time))
            .collect(),
    };
    (per_doc, per_chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter::native;
    use std::sync::Arc;

    #[test]
    fn list_schedule_properties() {
        let ms =
            |v: &[u64]| -> Vec<Duration> { v.iter().map(|&x| Duration::from_millis(x)).collect() };
        // One worker: sum.
        assert_eq!(
            list_schedule_makespan(&ms(&[3, 1, 2]), 1),
            Duration::from_millis(6)
        );
        // Enough workers: max.
        assert_eq!(
            list_schedule_makespan(&ms(&[3, 1, 2]), 3),
            Duration::from_millis(3)
        );
        // Greedy order: [4,4,2,2] on 2 workers -> 4+2 | 4+2 = 6.
        assert_eq!(
            list_schedule_makespan(&ms(&[4, 4, 2, 2]), 2),
            Duration::from_millis(6)
        );
        // Empty task list.
        assert_eq!(list_schedule_makespan(&[], 4), Duration::ZERO);
    }

    #[test]
    fn simulate_split_reports_consistently() {
        let spanner = ExecSpanner::compile(&Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap());
        let split: SplitFn = Arc::new(native::sentences);
        let doc = b"aa b. aaa. c aa. bbb a.".repeat(200);
        let report = simulate_split(&spanner, &split, &doc, &[1, 2, 5]);
        assert_eq!(report.tasks, 800);
        // Makespans decrease (weakly) with more workers.
        let m: Vec<Duration> = report.makespans.iter().map(|(_, d)| *d).collect();
        assert!(m[0] >= m[1] && m[1] >= m[2]);
        // Speedup at 5 workers exceeds speedup at 1.
        assert!(report.speedup(5) >= report.speedup(1));
    }

    #[test]
    fn collection_simulation_prefers_fine_tasks() {
        let spanner = ExecSpanner::compile(&Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap());
        let split: SplitFn = Arc::new(native::sentences);
        // A skewed collection: one big document, many small ones.
        let big = b"aa bb. cc aa. ".repeat(400);
        let mut docs: Vec<Vec<u8>> = vec![big];
        for _ in 0..16 {
            docs.push(b"aa b. c".to_vec());
        }
        let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
        let (per_doc, per_chunk) = simulate_collection(&spanner, &split, &refs, &[5], 5);
        assert!(per_chunk.tasks > per_doc.tasks);
        // Finer tasks can only help the balance on skewed inputs.
        let md = per_doc.makespans[0].1;
        let mc = per_chunk.makespans[0].1;
        assert!(
            mc <= md + md / 4,
            "fine-grained schedule should not be much worse: {mc:?} vs {md:?}"
        );
    }
}
