//! Property-based differential tests for the streaming execution layer.
//!
//! The two invariants the streaming subsystem promises:
//!
//! 1. [`StreamingSplitter`] over **arbitrary chunk boundaries**
//!    (including 1-byte chunks and cuts inside multi-byte segments)
//!    yields exactly the segments of the batch splitter, in the same
//!    order;
//! 2. [`CorpusRunner`] equals [`evaluate_many_split`] on the same
//!    corpus, for every engine, worker count (including the normalized
//!    `0`), batch size and queue depth.

use crate::corpus::{CorpusRunner, CorpusRunnerConfig};
use crate::engine::{evaluate_many_split, split_fn_of_splitter, Engine, ExecSpanner, SplitFn};
use crate::stream::StreamingSplitter;
use proptest::prelude::*;
use splitc_spanner::rgx::Rgx;
use splitc_spanner::splitter::{self, Splitter};

/// Splitters covering the interesting shapes: disjoint delimiters,
/// overlapping windows, nested candidate spans, empty spans, and a
/// non-universal post-split language (confirmation only at end of
/// stream).
fn splitter_pool() -> Vec<Splitter> {
    vec![
        splitter::sentences(),
        splitter::lines(),
        splitter::paragraphs(),
        splitter::ngrams(2),
        splitter::char_windows(3),
        Splitter::parse("x{abc}|a(x{b})c").unwrap(),
        Splitter::parse("x{ab}b|a(x{bb})").unwrap(), // paper Ex. 5.8
        Splitter::parse("x{aa}|a(x{})a").unwrap(),   // empty spans
        Splitter::parse("x{a*}b*").unwrap(),         // non-universal suffix
    ]
}

const PATTERNS: &[&str] = &[".*x{a+}.*", "x{[ab]+}", ".*x{}.*", ".*x{a.a}.*"];

/// Documents over an alphabet that exercises every pool splitter:
/// letters, the sentence/line delimiters, spaces (token boundaries).
fn doc_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![
            Just(b'a'),
            Just(b'b'),
            Just(b'c'),
            Just(b'.'),
            Just(b'\n'),
            Just(b' '),
        ],
        0..48,
    )
}

/// Chunk sizes the stream is cut into (cycled); 1-byte chunks included.
fn chunking_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 1..8)
}

/// Feeds `doc` to a streaming splitter cut at the given chunk sizes.
fn stream_segments(s: &Splitter, doc: &[u8], sizes: &[usize]) -> Vec<(usize, usize, Vec<u8>)> {
    let compiled = s.compile();
    let mut st = StreamingSplitter::new(&compiled);
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < doc.len() {
        let take = sizes[i % sizes.len()].min(doc.len() - pos);
        i += 1;
        out.extend(st.push(&doc[pos..pos + take]));
        pos += take;
    }
    out.extend(st.finish());
    out.into_iter()
        .map(|seg| (seg.span.start, seg.span.end, seg.bytes))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_splitter_matches_batch_over_random_chunks(
        si in 0..9usize,
        doc in doc_strategy(),
        sizes in chunking_strategy(),
    ) {
        let pool = splitter_pool();
        let s = &pool[si];
        let batch: Vec<(usize, usize, Vec<u8>)> = s
            .compile()
            .split(&doc)
            .into_iter()
            .map(|sp| (sp.start, sp.end, sp.slice(&doc).to_vec()))
            .collect();
        let streamed = stream_segments(s, &doc, &sizes);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn corpus_runner_matches_evaluate_many_split(
        pi in 0..PATTERNS.len(),
        docs in proptest::collection::vec(doc_strategy(), 0..6),
        workers in 0usize..5,
        batch_bytes in 1usize..32,
        chunk_bytes in 1usize..16,
        engine_pick in 0usize..3,
    ) {
        // All three engines, including Prefilter (gate + skip-loop),
        // over random chunkings down to 1-byte streaming chunks.
        let engine = match engine_pick {
            0 => Engine::Nfa,
            1 => Engine::Dense,
            _ => Engine::Prefilter,
        };
        let vsa = Rgx::parse(PATTERNS[pi]).unwrap().to_vsa().unwrap();
        let spanner = ExecSpanner::compile_with(&vsa, engine);
        let s = splitter::sentences();
        let runner = CorpusRunner::new(
            spanner.clone(),
            s.compile(),
            CorpusRunnerConfig {
                workers,
                batch_bytes,
                queue_depth: 2,
                chunk_bytes,
            },
        );
        let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
        let got = runner.run_slices(&refs);
        let split: SplitFn = split_fn_of_splitter(&s);
        let expected = evaluate_many_split(&spanner, &split, &refs, workers);
        prop_assert_eq!(got.relations, expected);
        prop_assert_eq!(got.stats.docs, refs.len());
    }
}
