//! T3b — certification engine scaling: the antichain-pruned on-the-fly
//! containment engine vs the determinize-first reference, measured
//! through the batch certifier (`splitc_exec::certify::certify_many`)
//! on growing spanner and alphabet sizes.
//!
//! Two families:
//!
//! * **needle** — `.* a[ab]^k x{b+} .*` self-splittability by
//!   sentences. The `Σ*aΣ^k` byte guard forces determinize-first to
//!   build the `2^k`-subset sliding-window automaton up front; the
//!   antichain frontier stays polynomial (sparse frontier subsets prune
//!   their rich same-depth siblings). This family is the CI gate: at
//!   the largest `k`, the antichain path must beat determinize-first by
//!   the configured floor.
//! * **branch** — `branching_extractor(n)` fleets (one marker letter
//!   per branch, so the byte-class alphabet grows with `n`), certified
//!   as one batch sharing the sentence splitter.
//!
//! Both engines must return identical verdicts — asserted on every
//! point. Rows use the standard `BENCH` schema with engines
//! `antichain` / `determinize`.

use splitc_bench::families::{branching_extractor, needle_extractor};
use splitc_bench::{bench_json, ms, scale, time_best, x, Table};
use splitc_exec::certify::{certify_many, CertifyConfig, CertifyResult};
use splitc_spanner::splitter;
use splitc_spanner::vsa::Vsa;
use splitc_spanner::CheckStrategy;

fn run(
    spanners: &[Vsa],
    s: &splitc_spanner::Splitter,
    pairs: &[(usize, usize)],
    strategy: CheckStrategy,
    iters: usize,
) -> (CertifyResult, std::time::Duration) {
    let config = CertifyConfig {
        workers: 4,
        strategy,
        ..CertifyConfig::default()
    };
    time_best(iters, || certify_many(spanners, s, pairs, &config))
}

fn main() {
    let s = splitter::sentences();
    // SC_SCALE trims the largest (slowest, determinize-dominated)
    // points for CI smoke runs; the gated largest needle point is kept
    // at every scale.
    let full = scale() >= 1.0;
    let iters = if full { 3 } else { 2 };

    // Needle family: one self-splittability pair per point; exponential
    // determinization vs polynomial antichain frontier.
    let needle_ks: &[usize] = if full {
        &[4, 6, 8, 10, 12]
    } else {
        &[4, 6, 8, 10]
    };
    let mut t = Table::new(
        "T3b.1 — needle self-splittability: antichain vs determinize-first",
        &["k", "|Q(P)|", "antichain ms", "determinize ms", "speedup"],
    );
    for &k in needle_ks {
        let spanners = vec![needle_extractor(k)];
        let pairs = vec![(0usize, 0usize)];
        let (ra, da) = run(&spanners, &s, &pairs, CheckStrategy::Antichain, iters);
        let (rd, dd) = run(
            &spanners,
            &s,
            &pairs,
            CheckStrategy::DeterminizeFirst,
            iters,
        );
        assert!(
            ra.all_hold() && rd.all_hold(),
            "needle k={k}: both engines must certify (needle spans never \
             contain a delimiter)"
        );
        bench_json(
            &format!("t3_certification_scaling/needle_k={k}"),
            "antichain",
            0,
            k as f64,
            da,
            0,
        );
        bench_json(
            &format!("t3_certification_scaling/needle_k={k}"),
            "determinize",
            0,
            k as f64,
            dd,
            0,
        );
        t.row(&[
            k.to_string(),
            spanners[0].num_states().to_string(),
            ms(da),
            ms(dd),
            x(dd.as_secs_f64() / da.as_secs_f64()),
        ]);
    }
    t.print();

    // Branch family: an n-extractor fleet certified as one batch; the
    // marker letters grow the byte-class alphabet with n.
    let branch_ns: &[usize] = if full { &[1, 2, 3, 4] } else { &[1, 2, 3] };
    let mut t = Table::new(
        "T3b.2 — branching fleets (batch certification, growing alphabet)",
        &["n", "pairs", "antichain ms", "determinize ms", "speedup"],
    );
    for &n in branch_ns {
        let spanners: Vec<Vsa> = (1..=n).map(branching_extractor).collect();
        let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        let (ra, da) = run(&spanners, &s, &pairs, CheckStrategy::Antichain, iters);
        let (rd, dd) = run(
            &spanners,
            &s,
            &pairs,
            CheckStrategy::DeterminizeFirst,
            iters,
        );
        for (a, d) in ra.outcomes.iter().zip(&rd.outcomes) {
            assert_eq!(
                a.holds(),
                d.holds(),
                "branch n={n}: engines disagree on pair {:?}",
                a.pair
            );
        }
        bench_json(
            &format!("t3_certification_scaling/branch_n={n}"),
            "antichain",
            0,
            n as f64,
            da,
            0,
        );
        bench_json(
            &format!("t3_certification_scaling/branch_n={n}"),
            "determinize",
            0,
            n as f64,
            dd,
            0,
        );
        t.row(&[
            n.to_string(),
            pairs.len().to_string(),
            ms(da),
            ms(dd),
            x(dd.as_secs_f64() / da.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "\nShape check: the determinize-first column grows with 2^k on the\n\
         needle family while the antichain column stays polynomial — the\n\
         pruned frontier is what makes fleet-scale certification viable\n\
         (the CI gate asserts the floor at the largest needle point)."
    );
}
