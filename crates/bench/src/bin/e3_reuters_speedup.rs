//! E3 — paper §1: extracting financial transactions from ~9,000 Reuters
//! articles over Spark; breaking each article into sentences reduced the
//! running time 1.99x on a 5-node cluster *at the same parallelism* —
//! splitting provides the scheduler with more, smaller tasks.
//!
//! Reproduction: synthetic article collection, transaction extractor,
//! per-article vs per-sentence task granularity on a simulated 5-worker
//! pool.

use splitc_bench::{bench_json, engine_arg, ms, scale, time, x, Table};
use splitc_exec::{simulate_collection, ExecSpanner, SplitFn};
use splitc_spanner::splitter::native;
use splitc_textgen::{articles_corpus, skewed_articles_corpus, spanners};
use std::sync::Arc;

fn main() {
    let engine = engine_arg();
    let n = (9000.0 * scale()) as usize;
    println!(
        "E3: transaction extraction over {n} Reuters-like articles (engine: {})",
        engine.name()
    );
    let docs = articles_corpus(n, 0x5EED);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();

    let p = spanners::transaction_extractor();
    let spanner = ExecSpanner::compile_with(&p, engine);
    let split: SplitFn = Arc::new(native::sentences);

    let (per_doc, per_chunk) = simulate_collection(&spanner, &split, &refs, &[5], 5);

    let (total, seq_wall) = time(|| -> usize { refs.iter().map(|d| spanner.eval(d).len()).sum() });
    bench_json(
        "e3_reuters_speedup",
        engine.name(),
        refs.iter().map(|d| d.len()).sum(),
        n as f64,
        seq_wall,
        total,
    );
    let mut table = Table::new(
        "E3 — task granularity on a 5-worker pool (Reuters-like)",
        &[
            "granularity",
            "tasks",
            "makespan ms",
            "speedup vs per-article",
            "paper",
        ],
    );
    let base = per_doc.makespans[0].1;
    table.row(&[
        "per-article".into(),
        per_doc.tasks.to_string(),
        ms(base),
        x(1.0),
        String::new(),
    ]);
    let fine = per_chunk.makespans[0].1;
    table.row(&[
        "per-sentence".into(),
        per_chunk.tasks.to_string(),
        ms(fine),
        x(base.as_secs_f64() / fine.as_secs_f64().max(1e-12)),
        "1.99x".into(),
    ]);
    table.print();
    println!("{total} transactions extracted in total");

    // The paper attributes its 1.99x to Spark gaining "more control over
    // scheduling" from many small tasks. An idealized zero-overhead pool
    // over 9,000 uniform articles is already balanced (table above), so
    // the headline factor is a property of the real system, not of load
    // balance at that scale. The mechanism *is* visible in the idealized
    // model at scheduling-wave granularity: when the number of
    // in-flight coarse tasks is comparable to the pool size (Spark
    // schedules in waves of ~#cores tasks), long-article skew directly
    // hits the makespan and splitting repairs it.
    let docs = skewed_articles_corpus(60, 0x5EED0);
    let refs: Vec<&[u8]> = docs.iter().map(Vec::as_slice).collect();
    let (per_doc, per_chunk) = simulate_collection(&spanner, &split, &refs, &[5], 5);
    let base = per_doc.makespans[0].1;
    let fine = per_chunk.makespans[0].1;
    let mut table = Table::new(
        "E3b — one scheduling wave (60 skewed articles, 2% long) on 5 workers",
        &[
            "granularity",
            "tasks",
            "makespan ms",
            "speedup vs per-article",
            "paper",
        ],
    );
    table.row(&[
        "per-article".into(),
        per_doc.tasks.to_string(),
        ms(base),
        x(1.0),
        String::new(),
    ]);
    table.row(&[
        "per-sentence".into(),
        per_chunk.tasks.to_string(),
        ms(fine),
        x(base.as_secs_f64() / fine.as_secs_f64().max(1e-12)),
        "1.99x".into(),
    ]);
    table.print();
}
