//! Endpoint logic: JSON request → registry/runner calls → JSON response.
//!
//! Routes (all bodies and responses are JSON; every response leads with
//! the protocol version field `"v": 1`):
//!
//! | Route | Request | Response |
//! |---|---|---|
//! | `POST /spanners` | `{"pattern", "engine"?}` | `{"id", "cached", "vars"}` |
//! | `POST /splitters` | `{"pattern"}` or `{"builtin"}` | `{"id", "cached"}` |
//! | `POST /fleets` | `{"members": [ids]}` | `{"id", "cached", "members"}` |
//! | `POST /certify` | `{"spanner"\|"fleet", "splitter"}` | `{"holds", "cached", ...}` |
//! | `POST /extract` | `{"spanner"\|"fleet", "splitter", "docs"\|"corpus", "unchecked"?}` | `{"relations", "stats"}` |
//! | `PUT /corpus/{id}` | `{"splitter", "shards"}` | `{"id", "shards", "segments", ...}` |
//! | `POST /corpus/{id}/delta` | `{"op", "shard", "start"?, "end"?, "text"}` | `{"delta", ...}` |
//! | `GET /corpus/{id}` | — | corpus summary |
//! | `DELETE /corpus/{id}` | — | `{"deleted": true}` |
//! | `GET /stats` | — | full service statistics |
//! | `GET /healthz` | — | `{"ok": true}` |
//!
//! Request bodies are validated against a per-route field list: an
//! unknown field — or a `"v"` other than `1` — is a typed `400` naming
//! the offending key, so a client typo (`"unckecked"`) fails loudly
//! instead of being silently ignored.
//!
//! `/extract` refuses (`409`) when the requested pair is not certified
//! self-split-correct — per-segment evaluation would change the
//! extraction semantics — unless the request opts out with
//! `"unchecked": true`. Certification happens transparently on first
//! use and is cached thereafter (see [`crate::registry::Registry`]).
//!
//! `/extract` with `"corpus"` runs over a server-maintained corpus
//! resource (PUT once, then POST deltas) with the process-wide
//! [`SegmentCache`] attached: after a small delta, re-extraction
//! re-evaluates only the segments the edit actually changed — every
//! untouched segment is a content-addressed cache hit.

use crate::config::ServerConfig;
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::registry::{hex_id, parse_hex_id, valid_corpus_id, CorpusEntry, Registry, SplitterSpec};

use splitc_core::cache::CachedVerdict;
use splitc_core::Verdict;
use splitc_exec::{
    CorpusHandle, CorpusRunner, CorpusRunnerConfig, DeltaStats, Engine, EvalPool, FleetRunner,
    SegmentCache,
};
use splitc_spanner::{SpanRelation, VarTable};

use std::sync::Arc;
use std::time::Instant;

/// The wire protocol version: stamped into every response as the
/// leading `"v"` field; requests may carry `"v"` and are rejected when
/// it differs.
pub const PROTOCOL_VERSION: u64 = 1;

/// Shared state of a running service: registries, the evaluation pool,
/// metrics, and configuration.
#[derive(Debug)]
pub struct ServiceState {
    /// Artifact registries + certification cache.
    pub registry: Registry,
    /// The long-lived evaluation worker pool shared by all requests.
    pub pool: Arc<EvalPool>,
    /// Request/latency/execution metrics.
    pub metrics: Metrics,
    /// Process-wide content-addressed segment cache, attached to every
    /// corpus-resource extraction (bounded, see
    /// [`ServerConfig::segment_cache_capacity`]).
    pub segment_cache: Arc<SegmentCache>,
    /// The validated configuration the server was started with.
    pub config: ServerConfig,
}

impl ServiceState {
    /// Builds the state for a validated config (the pool is started
    /// here, sized to `config.workers`).
    pub fn new(config: ServerConfig) -> ServiceState {
        ServiceState {
            registry: Registry::new(),
            pool: Arc::new(EvalPool::new(config.workers)),
            metrics: Metrics::new(),
            segment_cache: Arc::new(SegmentCache::new(config.segment_cache_capacity)),
            config,
        }
    }

    /// The runner configuration every `/extract` uses: the shared
    /// pool's width, the configured batch size, and default queueing.
    fn runner_config(&self) -> CorpusRunnerConfig {
        CorpusRunnerConfig {
            workers: self.config.workers,
            batch_bytes: self.config.batch_bytes,
            ..CorpusRunnerConfig::default()
        }
    }
}

/// Dispatches one request, recording latency and status metrics.
pub fn handle(state: &ServiceState, req: &Request) -> Response {
    let start = Instant::now();
    let response = route(state, req);
    let histogram = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/spanners" | "/splitters" | "/fleets") => Some(&state.metrics.register_latency),
        ("POST", "/certify") => Some(&state.metrics.certify_latency),
        ("POST", "/extract") => Some(&state.metrics.extract_latency),
        ("GET", "/stats") => Some(&state.metrics.stats_latency),
        (_, p) if p.starts_with("/corpus/") => Some(&state.metrics.corpus_latency),
        _ => None,
    };
    if let Some(h) = histogram {
        h.record(start.elapsed());
    }
    state.metrics.count_status(response.status);
    response
}

fn route(state: &ServiceState, req: &Request) -> Response {
    if let Some(rest) = req.path.strip_prefix("/corpus/") {
        return corpus_route(state, req, rest);
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/spanners") => with_body(req, |body| register_spanner(state, body)),
        ("POST", "/splitters") => with_body(req, |body| register_splitter(state, body)),
        ("POST", "/fleets") => with_body(req, |body| register_fleet(state, body)),
        ("POST", "/certify") => with_body(req, |body| certify(state, body)),
        ("POST", "/extract") => with_body(req, |body| extract(state, body)),
        ("GET", "/stats") => stats(state),
        ("GET", "/healthz") => respond(200, Json::obj(vec![("ok", Json::Bool(true))])),
        ("POST" | "GET", _) => error(404, format!("no route {} {}", req.method, req.path)),
        _ => error(405, format!("method {} not supported", req.method)),
    }
}

/// Dispatches `/corpus/{id}` and `/corpus/{id}/delta` by method.
fn corpus_route(state: &ServiceState, req: &Request, rest: &str) -> Response {
    let (id, sub) = match rest.split_once('/') {
        Some((id, sub)) => (id, Some(sub)),
        None => (rest, None),
    };
    if !valid_corpus_id(id) {
        return error(
            400,
            format!("invalid corpus id {id:?} (want 1-64 chars of [A-Za-z0-9_-])"),
        );
    }
    match (req.method.as_str(), sub) {
        ("PUT", None) => with_body(req, |body| corpus_put(state, id, body)),
        ("POST", Some("delta")) => with_body(req, |body| corpus_delta(state, id, body)),
        ("GET", None) => corpus_get(state, id),
        ("DELETE", None) => corpus_delete(state, id),
        _ => error(404, format!("no route {} {}", req.method, req.path)),
    }
}

/// Wraps a response body with the protocol version: every object
/// response leads with `"v": 1`.
fn respond(status: u16, body: Json) -> Response {
    let body = match body {
        Json::Obj(mut pairs) => {
            pairs.insert(0, ("v".to_string(), Json::num(PROTOCOL_VERSION as u32)));
            Json::Obj(pairs)
        }
        other => other,
    };
    Response::json(status, body)
}

/// Builds a JSON error response (versioned like every other response).
pub fn error(status: u16, message: impl Into<String>) -> Response {
    respond(
        status,
        Json::obj(vec![("error", Json::Str(message.into()))]),
    )
}

/// Validates a request body against the route's field contract: it
/// must be a JSON object, an optional `"v"` must equal
/// [`PROTOCOL_VERSION`], and every other key must be in `allowed`.
/// Returns the typed `400` (naming the offending key) on violation.
fn validate_keys(body: &Json, allowed: &[&str]) -> Option<Response> {
    let Some(pairs) = body.as_obj() else {
        return Some(error(400, "request body must be a JSON object"));
    };
    if let Some(v) = body.get("v") {
        if v.as_u64() != Some(PROTOCOL_VERSION) {
            return Some(error(
                400,
                format!("unsupported protocol version {v} (this server speaks \"v\": 1)"),
            ));
        }
    }
    for (key, _) in pairs {
        if key != "v" && !allowed.contains(&key.as_str()) {
            return Some(error(
                400,
                format!("unknown field {key:?} (allowed: v, {})", allowed.join(", ")),
            ));
        }
    }
    None
}

fn with_body(req: &Request, f: impl FnOnce(&Json) -> Response) -> Response {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return error(400, "body is not valid UTF-8"),
    };
    match Json::parse(text) {
        Ok(body) => f(&body),
        Err(e) => error(400, format!("invalid JSON body: {e}")),
    }
}

fn require_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, Response> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| error(400, format!("missing string field {key:?}")))
}

fn require_id(body: &Json, key: &str) -> Result<u64, Response> {
    let text = require_str(body, key)?;
    parse_hex_id(text).ok_or_else(|| error(400, format!("{key:?} is not a 16-hex-digit id")))
}

fn register_spanner(state: &ServiceState, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["pattern", "engine"]) {
        return r;
    }
    let pattern = match require_str(body, "pattern") {
        Ok(p) => p,
        Err(r) => return r,
    };
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(name) => match name.parse::<Engine>() {
            Ok(e) => e,
            Err(e) => return error(400, e),
        },
    };
    match state.registry.register_spanner(pattern, engine) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => respond(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("engine", Json::str(entry.engine.name())),
                // The tier compile-time tiering actually chose: equals
                // the engine except when an `aot` request exceeded the
                // determinization budget and degraded to `dense`.
                ("tier", Json::str(entry.exec.tier().name())),
                (
                    "vars",
                    Json::Arr(
                        entry
                            .vsa
                            .vars()
                            .names()
                            .iter()
                            .map(|n| Json::str(n.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    }
}

fn register_splitter(state: &ServiceState, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["pattern", "builtin"]) {
        return r;
    }
    let spec = match (
        body.get("pattern").and_then(Json::as_str),
        body.get("builtin").and_then(Json::as_str),
    ) {
        (Some(p), None) => SplitterSpec::Pattern(p.to_string()),
        (None, Some(b)) => SplitterSpec::Builtin(b.to_string()),
        _ => return error(400, "exactly one of \"pattern\" or \"builtin\" is required"),
    };
    match state.registry.register_splitter(&spec) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => respond(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("disjoint", Json::Bool(entry.splitter.is_disjoint())),
            ]),
        ),
    }
}

fn register_fleet(state: &ServiceState, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["members"]) {
        return r;
    }
    let members = match body.get("members").and_then(Json::as_arr) {
        Some(m) => m,
        None => return error(400, "missing array field \"members\""),
    };
    let mut ids = Vec::with_capacity(members.len());
    for m in members {
        match m.as_str().and_then(parse_hex_id) {
            Some(id) => ids.push(id),
            None => return error(400, "fleet members must be 16-hex-digit spanner ids"),
        }
    }
    match state.registry.register_fleet(&ids) {
        Err(e) => error(400, e),
        Ok((entry, cached)) => respond(
            200,
            Json::obj(vec![
                ("id", Json::str(hex_id(entry.id))),
                ("cached", Json::Bool(cached)),
                ("members", Json::num(entry.member_ids.len() as u32)),
                ("engine", Json::str(entry.engine.name())),
            ]),
        ),
    }
}

/// Renders one cached verdict as JSON fields.
fn verdict_json(v: &CachedVerdict) -> Json {
    match v {
        Ok(Verdict::Holds) => Json::obj(vec![("verdict", Json::str("holds"))]),
        Ok(Verdict::Fails(ce)) => Json::obj(vec![
            ("verdict", Json::str("fails")),
            (
                "counterexample",
                Json::str(String::from_utf8_lossy(&ce.doc).into_owned()),
            ),
            ("reason", Json::str(ce.reason.clone())),
        ]),
        Err(e) => Json::obj(vec![
            ("verdict", Json::str("error")),
            ("detail", Json::str(e.to_string())),
        ]),
    }
}

fn certify(state: &ServiceState, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["spanner", "fleet", "splitter"]) {
        return r;
    }
    let splitter_id = match require_id(body, "splitter") {
        Ok(id) => id,
        Err(r) => return r,
    };
    let splitter = match state.registry.splitter(splitter_id) {
        Some(s) => s,
        None => return error(404, format!("unknown splitter {}", hex_id(splitter_id))),
    };
    match (body.get("spanner"), body.get("fleet")) {
        (Some(_), None) => {
            let spanner_id = match require_id(body, "spanner") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let spanner = match state.registry.spanner(spanner_id) {
                Some(s) => s,
                None => return error(404, format!("unknown spanner {}", hex_id(spanner_id))),
            };
            let (verdict, cached) = state.registry.certify_spanner(&spanner, &splitter);
            let mut fields = vec![
                (
                    "holds".to_string(),
                    Json::Bool(matches!(&verdict, Ok(v) if v.holds())),
                ),
                ("cached".to_string(), Json::Bool(cached)),
            ];
            if let Json::Obj(pairs) = verdict_json(&verdict) {
                fields.extend(pairs);
            }
            respond(200, Json::Obj(fields))
        }
        (None, Some(_)) => {
            let fleet_id = match require_id(body, "fleet") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let fleet = match state.registry.fleet(fleet_id) {
                Some(f) => f,
                None => return error(404, format!("unknown fleet {}", hex_id(fleet_id))),
            };
            let (verdicts, cached) = state.registry.certify_fleet(&fleet, &splitter);
            let holds = verdicts.iter().all(|v| matches!(v, Ok(x) if x.holds()));
            let members: Vec<Json> = fleet
                .member_ids
                .iter()
                .zip(&verdicts)
                .map(|(id, v)| {
                    let mut obj = vec![("spanner".to_string(), Json::str(hex_id(*id)))];
                    if let Json::Obj(pairs) = verdict_json(v) {
                        obj.extend(pairs);
                    }
                    Json::Obj(obj)
                })
                .collect();
            respond(
                200,
                Json::obj(vec![
                    ("holds", Json::Bool(holds)),
                    ("cached", Json::Bool(cached)),
                    ("members", Json::Arr(members)),
                ]),
            )
        }
        _ => error(400, "exactly one of \"spanner\" or \"fleet\" is required"),
    }
}

/// Renders a relation as an array of `{var: [start, end]}` tuples.
/// Deterministic: tuples are in the relation's canonical sorted order,
/// variables in [`VarTable`] order.
fn relation_json(relation: &SpanRelation, vars: &VarTable) -> Json {
    Json::Arr(
        relation
            .iter()
            .map(|tuple| {
                Json::Obj(
                    vars.names()
                        .iter()
                        .zip(tuple.spans())
                        .map(|(name, span)| {
                            (
                                name.clone(),
                                Json::Arr(vec![
                                    Json::num(span.start as u32),
                                    Json::num(span.end as u32),
                                ]),
                            )
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Renders the process-wide segment cache counters (reported by
/// corpus-resource extractions, whose incrementality they witness).
fn seg_cache_json(cache: &SegmentCache) -> Json {
    let s = cache.stats();
    Json::obj(vec![
        ("hits", Json::Num(s.hits as f64)),
        ("misses", Json::Num(s.misses as f64)),
        ("evictions", Json::Num(s.evictions as f64)),
        ("entries", Json::num(cache.len() as u32)),
    ])
}

fn extract(state: &ServiceState, body: &Json) -> Response {
    if let Some(r) = validate_keys(
        body,
        &[
            "spanner",
            "fleet",
            "splitter",
            "docs",
            "corpus",
            "unchecked",
        ],
    ) {
        return r;
    }
    // Input source: inline "docs" or a maintained "corpus" resource.
    let corpus: Option<Arc<CorpusEntry>> = match (body.get("corpus"), body.get("docs")) {
        (Some(_), Some(_)) => return error(400, "pass either \"docs\" or \"corpus\", not both"),
        (Some(c), None) => match c.as_str() {
            Some(name) => match state.registry.corpus(name) {
                Some(entry) => Some(entry),
                None => return error(404, format!("unknown corpus {name:?}")),
            },
            None => return error(400, "\"corpus\" must be a string (resource name)"),
        },
        (None, _) => None,
    };
    // The splitter: explicit for inline docs; bound by the corpus for
    // resource extraction (an explicit one must then agree, since the
    // maintained segmentation was produced under it).
    let splitter_id = match &corpus {
        Some(entry) => {
            if body.get("splitter").is_some() {
                let id = match require_id(body, "splitter") {
                    Ok(id) => id,
                    Err(r) => return r,
                };
                if id != entry.splitter_id {
                    return error(
                        409,
                        format!(
                            "corpus {:?} is maintained under splitter {}, not {}",
                            entry.id,
                            hex_id(entry.splitter_id),
                            hex_id(id)
                        ),
                    );
                }
            }
            entry.splitter_id
        }
        None => match require_id(body, "splitter") {
            Ok(id) => id,
            Err(r) => return r,
        },
    };
    let splitter = match state.registry.splitter(splitter_id) {
        Some(s) => s,
        None => return error(404, format!("unknown splitter {}", hex_id(splitter_id))),
    };
    let docs: Vec<&str> = match (&corpus, body.get("docs").and_then(Json::as_arr)) {
        (Some(_), _) => Vec::new(),
        (None, Some(items)) => {
            let mut docs = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => docs.push(s),
                    None => return error(400, "\"docs\" must be an array of strings"),
                }
            }
            docs
        }
        (None, None) => return error(400, "missing field \"docs\" (or \"corpus\")"),
    };
    let doc_bytes: Vec<&[u8]> = docs.iter().map(|d| d.as_bytes()).collect();
    let unchecked = body
        .get("unchecked")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    match (body.get("spanner"), body.get("fleet")) {
        (Some(_), None) => {
            let spanner_id = match require_id(body, "spanner") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let spanner = match state.registry.spanner(spanner_id) {
                Some(s) => s,
                None => return error(404, format!("unknown spanner {}", hex_id(spanner_id))),
            };
            if !unchecked {
                let (verdict, _) = state.registry.certify_spanner(&spanner, &splitter);
                if !matches!(&verdict, Ok(v) if v.holds()) {
                    return not_split_correct(&verdict);
                }
            }
            let mut runner = CorpusRunner::with_pool(
                spanner.exec.clone(),
                splitter.compiled.clone(),
                state.runner_config(),
                state.pool.clone(),
            );
            if corpus.is_some() {
                runner = runner.with_segment_cache(state.segment_cache.clone());
            }
            let result = match &corpus {
                // The entry mutex serializes extraction and mutation of
                // one corpus; the presplit segmentation is reused as-is.
                Some(entry) => entry.handle.lock().extract(&runner),
                None => runner.run_slices(&doc_bytes),
            };
            state.metrics.record_corpus(&result.stats);
            let vars = spanner.vsa.vars();
            let mut stats_pairs = vec![
                ("docs".to_string(), Json::num(result.stats.docs as u32)),
                (
                    "segments".to_string(),
                    Json::num(result.stats.segments as u32),
                ),
                (
                    "segment_bytes".to_string(),
                    Json::Num(result.stats.segment_bytes as f64),
                ),
                (
                    "batches".to_string(),
                    Json::num(result.stats.batches as u32),
                ),
            ];
            if corpus.is_some() {
                stats_pairs.push((
                    "docs_reused".to_string(),
                    Json::num(result.stats.docs_reused as u32),
                ));
                stats_pairs.push((
                    "segment_cache".to_string(),
                    seg_cache_json(&state.segment_cache),
                ));
            }
            respond(
                200,
                Json::Obj(vec![
                    (
                        "relations".to_string(),
                        Json::Arr(
                            result
                                .relations
                                .iter()
                                .map(|r| relation_json(r, vars))
                                .collect(),
                        ),
                    ),
                    ("stats".to_string(), Json::Obj(stats_pairs)),
                ]),
            )
        }
        (None, Some(_)) => {
            let fleet_id = match require_id(body, "fleet") {
                Ok(id) => id,
                Err(r) => return r,
            };
            let fleet = match state.registry.fleet(fleet_id) {
                Some(f) => f,
                None => return error(404, format!("unknown fleet {}", hex_id(fleet_id))),
            };
            if !unchecked {
                let (verdicts, _) = state.registry.certify_fleet(&fleet, &splitter);
                if let Some(bad) = verdicts.iter().find(|v| !matches!(v, Ok(x) if x.holds())) {
                    return not_split_correct(bad);
                }
            }
            let mut runner = FleetRunner::with_pool(
                fleet.fleet.clone(),
                splitter.compiled.clone(),
                state.runner_config(),
                state.pool.clone(),
            );
            if corpus.is_some() {
                runner = runner.with_segment_cache(state.segment_cache.clone());
            }
            let result = match &corpus {
                Some(entry) => entry.handle.lock().extract_fleet(&runner),
                None => runner.run_slices(&doc_bytes),
            };
            state.metrics.record_fleet(&result.stats);
            let mut stats_pairs = vec![
                ("docs".to_string(), Json::num(result.stats.docs as u32)),
                (
                    "segments".to_string(),
                    Json::num(result.stats.segments as u32),
                ),
                (
                    "segment_bytes".to_string(),
                    Json::Num(result.stats.segment_bytes as f64),
                ),
                (
                    "batches".to_string(),
                    Json::num(result.stats.batches as u32),
                ),
                (
                    "dispatches".to_string(),
                    Json::Num(result.stats.dispatches as f64),
                ),
                (
                    "gate_rejected".to_string(),
                    Json::Num(result.stats.gate_rejected as f64),
                ),
                (
                    "scan_rejected".to_string(),
                    Json::Num(result.stats.scan_rejected as f64),
                ),
            ];
            if corpus.is_some() {
                stats_pairs.push((
                    "docs_reused".to_string(),
                    Json::num(result.stats.docs_reused as u32),
                ));
                stats_pairs.push((
                    "segment_cache".to_string(),
                    seg_cache_json(&state.segment_cache),
                ));
            }
            respond(
                200,
                Json::Obj(vec![
                    (
                        "relations".to_string(),
                        Json::Arr(
                            result
                                .relations
                                .iter()
                                .map(|per_doc| {
                                    Json::Arr(
                                        per_doc
                                            .iter()
                                            .enumerate()
                                            .map(|(m, r)| relation_json(r, fleet.vsas[m].vars()))
                                            .collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    ("stats".to_string(), Json::Obj(stats_pairs)),
                ]),
            )
        }
        _ => error(400, "exactly one of \"spanner\" or \"fleet\" is required"),
    }
}

/// Renders a corpus summary (the non-`"v"` part shared by the corpus
/// endpoints' responses).
fn corpus_summary(entry: &CorpusEntry, handle: &CorpusHandle) -> Vec<(String, Json)> {
    vec![
        ("id".to_string(), Json::str(entry.id.clone())),
        ("splitter".to_string(), Json::str(hex_id(entry.splitter_id))),
        ("shards".to_string(), Json::num(handle.num_shards() as u32)),
        (
            "segments".to_string(),
            Json::num(handle.total_segments() as u32),
        ),
        ("bytes".to_string(), Json::Num(handle.total_bytes() as f64)),
    ]
}

/// `PUT /corpus/{id}`: creates or wholesale-replaces a maintained
/// corpus resource, splitting each shard once under the given splitter.
fn corpus_put(state: &ServiceState, id: &str, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["splitter", "shards"]) {
        return r;
    }
    let splitter_id = match require_id(body, "splitter") {
        Ok(id) => id,
        Err(r) => return r,
    };
    let splitter = match state.registry.splitter(splitter_id) {
        Some(s) => s,
        None => return error(404, format!("unknown splitter {}", hex_id(splitter_id))),
    };
    let shards: Vec<Vec<u8>> = match body.get("shards").and_then(Json::as_arr) {
        Some(items) => {
            let mut shards = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => shards.push(s.as_bytes().to_vec()),
                    None => return error(400, "\"shards\" must be an array of strings"),
                }
            }
            shards
        }
        None => return error(400, "missing array field \"shards\""),
    };
    let handle = CorpusHandle::from_shards(splitter.compiled.clone(), shards);
    let (entry, replaced) = state.registry.put_corpus(id, splitter_id, handle);
    let guard = entry.handle.lock();
    let mut fields = corpus_summary(&entry, &guard);
    fields.push(("replaced".to_string(), Json::Bool(replaced)));
    respond(200, Json::Obj(fields))
}

/// Renders the [`DeltaStats`] of one delta application.
fn delta_json(stats: &DeltaStats) -> Json {
    Json::obj(vec![
        ("window_start", Json::Num(stats.window_start as f64)),
        ("window_end", Json::Num(stats.window_end as f64)),
        ("resplit_bytes", Json::Num(stats.resplit_bytes as f64)),
        ("converged", Json::Bool(stats.converged)),
        (
            "segments_reused_prefix",
            Json::num(stats.segments_reused_prefix as u32),
        ),
        (
            "segments_reused_suffix",
            Json::num(stats.segments_reused_suffix as u32),
        ),
        ("segments_resplit", Json::num(stats.segments_resplit as u32)),
    ])
}

/// `POST /corpus/{id}/delta`: applies one edit operation — a point
/// `edit` (replace `start..end` of a shard with `text`), an `append`,
/// or a `replace_shard` — resplitting only the dirty window between the
/// quiescent frontiers (see [`CorpusHandle::edit`]).
fn corpus_delta(state: &ServiceState, id: &str, body: &Json) -> Response {
    if let Some(r) = validate_keys(body, &["op", "shard", "start", "end", "text"]) {
        return r;
    }
    let entry = match state.registry.corpus(id) {
        Some(e) => e,
        None => return error(404, format!("unknown corpus {id:?}")),
    };
    let op = match require_str(body, "op") {
        Ok(o) => o,
        Err(r) => return r,
    };
    let shard = match body.get("shard").and_then(Json::as_u64) {
        Some(s) => s as usize,
        None => return error(400, "missing integer field \"shard\""),
    };
    let text = match require_str(body, "text") {
        Ok(t) => t,
        Err(r) => return r,
    };
    let mut handle = entry.handle.lock();
    if shard >= handle.num_shards() {
        return error(
            404,
            format!(
                "corpus {id:?} has {} shards, no shard {shard}",
                handle.num_shards()
            ),
        );
    }
    let stats = match op {
        "edit" => {
            let (start, end) = match (
                body.get("start").and_then(Json::as_u64),
                body.get("end").and_then(Json::as_u64),
            ) {
                (Some(s), Some(e)) => (s as usize, e as usize),
                _ => return error(400, "\"edit\" needs integer fields \"start\" and \"end\""),
            };
            let len = handle.shard_bytes(shard).len();
            if start > end || end > len {
                return error(
                    400,
                    format!("edit range {start}..{end} out of bounds (shard len {len})"),
                );
            }
            handle.edit(shard, start..end, text.as_bytes())
        }
        "append" => handle.append(shard, text.as_bytes()),
        "replace_shard" => handle.replace_shard(shard, text.as_bytes().to_vec()),
        other => {
            return error(
                400,
                format!("unknown op {other:?} (expected edit|append|replace_shard)"),
            )
        }
    };
    let mut fields = corpus_summary(&entry, &handle);
    fields.push(("op".to_string(), Json::str(op)));
    fields.push(("delta".to_string(), delta_json(&stats)));
    respond(200, Json::Obj(fields))
}

/// `GET /corpus/{id}`: the corpus summary plus per-shard sizes.
fn corpus_get(state: &ServiceState, id: &str) -> Response {
    let entry = match state.registry.corpus(id) {
        Some(e) => e,
        None => return error(404, format!("unknown corpus {id:?}")),
    };
    let handle = entry.handle.lock();
    let mut fields = corpus_summary(&entry, &handle);
    fields.push((
        "shard_sizes".to_string(),
        Json::Arr(
            (0..handle.num_shards())
                .map(|s| {
                    Json::obj(vec![
                        ("bytes", Json::Num(handle.shard_bytes(s).len() as f64)),
                        ("segments", Json::num(handle.segments(s).len() as u32)),
                    ])
                })
                .collect(),
        ),
    ));
    respond(200, Json::Obj(fields))
}

/// `DELETE /corpus/{id}`: drops the resource (its cached segment
/// relations age out of the bounded segment cache naturally).
fn corpus_delete(state: &ServiceState, id: &str) -> Response {
    if state.registry.remove_corpus(id) {
        respond(
            200,
            Json::obj(vec![("id", Json::str(id)), ("deleted", Json::Bool(true))]),
        )
    } else {
        error(404, format!("unknown corpus {id:?}"))
    }
}

/// Runs one extraction completely offline — no server, no shared pool,
/// per-run spawned worker threads — and renders the relations with the
/// *same* JSON encoding as `/extract`. This is the differential
/// reference for the end-to-end harness (`scripts/server_smoke.sh`
/// compares server output byte-for-byte against this).
///
/// Request shape: `{"pattern": ...}` (spanner) or `{"patterns": [...]}`
/// (fleet), plus `"engine"?`, `"splitter"` or `"splitter_builtin"`, and
/// `"docs"`.
pub fn offline_extract(body: &Json) -> Result<Json, String> {
    let spec = match (
        body.get("splitter").and_then(Json::as_str),
        body.get("splitter_builtin").and_then(Json::as_str),
    ) {
        (Some(p), None) => SplitterSpec::Pattern(p.to_string()),
        (None, Some(b)) => SplitterSpec::Builtin(b.to_string()),
        _ => return Err("exactly one of \"splitter\" or \"splitter_builtin\" is required".into()),
    };
    let registry = Registry::new();
    let (splitter, _) = registry.register_splitter(&spec)?;
    let engine = match body.get("engine").and_then(Json::as_str) {
        None => Engine::default(),
        Some(name) => name.parse::<Engine>()?,
    };
    let docs: Vec<Vec<u8>> = body
        .get("docs")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"docs\"")?
        .iter()
        .map(|d| {
            d.as_str()
                .map(|s| s.as_bytes().to_vec())
                .ok_or_else(|| "\"docs\" must be an array of strings".to_string())
        })
        .collect::<Result<_, _>>()?;
    let doc_slices: Vec<&[u8]> = docs.iter().map(|d| d.as_slice()).collect();

    match (body.get("pattern"), body.get("patterns")) {
        (Some(_), None) => {
            let pattern = body
                .get("pattern")
                .and_then(Json::as_str)
                .ok_or("\"pattern\" must be a string")?;
            let (spanner, _) = registry.register_spanner(pattern, engine)?;
            let runner = CorpusRunner::new(
                spanner.exec.clone(),
                splitter.compiled.clone(),
                CorpusRunnerConfig::default(),
            );
            let result = runner.run_slices(&doc_slices);
            Ok(Json::obj(vec![(
                "relations",
                Json::Arr(
                    result
                        .relations
                        .iter()
                        .map(|r| relation_json(r, spanner.vsa.vars()))
                        .collect(),
                ),
            )]))
        }
        (None, Some(_)) => {
            let patterns = body
                .get("patterns")
                .and_then(Json::as_arr)
                .ok_or("\"patterns\" must be an array")?;
            let mut ids = Vec::with_capacity(patterns.len());
            for p in patterns {
                let p = p
                    .as_str()
                    .ok_or("\"patterns\" must be an array of strings")?;
                let (entry, _) = registry.register_spanner(p, engine)?;
                ids.push(entry.id);
            }
            let (fleet, _) = registry.register_fleet(&ids)?;
            let runner = FleetRunner::new(
                fleet.fleet.clone(),
                splitter.compiled.clone(),
                CorpusRunnerConfig::default(),
            );
            let result = runner.run_slices(&doc_slices);
            Ok(Json::obj(vec![(
                "relations",
                Json::Arr(
                    result
                        .relations
                        .iter()
                        .map(|per_doc| {
                            Json::Arr(
                                per_doc
                                    .iter()
                                    .enumerate()
                                    .map(|(m, r)| relation_json(r, fleet.vsas[m].vars()))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            )]))
        }
        _ => Err("exactly one of \"pattern\" or \"patterns\" is required".into()),
    }
}

fn not_split_correct(verdict: &CachedVerdict) -> Response {
    let detail = match verdict {
        Ok(Verdict::Fails(ce)) => format!("not self-split-correct: {}", ce.reason),
        Ok(Verdict::Holds) => unreachable!("only called on failures"),
        Err(e) => format!("certification failed: {e}"),
    };
    respond(
        409,
        Json::obj(vec![
            ("error", Json::str(detail)),
            (
                "hint",
                Json::str("pass \"unchecked\": true to extract anyway (changes semantics)"),
            ),
        ]),
    )
}

fn stats(state: &ServiceState) -> Response {
    let (spanners, splitters, fleets) = state.registry.counts();
    let corpora = state.registry.corpus_count();
    let compile = state.registry.compile_stats();
    let cert = state.registry.cert_stats();
    let pool = state.pool.stats();
    let antichain = splitc_automata::cumulative_stats();
    // Per-entry engine/tier listing: the tier differs from the engine
    // exactly when an `aot` request fell back to the lazy dense tier.
    let entries = Json::Arr(
        state
            .registry
            .spanner_entries()
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("id", Json::str(hex_id(e.id))),
                    ("engine", Json::str(e.engine.name())),
                    ("tier", Json::str(e.exec.tier().name())),
                ])
            })
            .collect(),
    );
    let mut doc = vec![
        (
            "registry".to_string(),
            Json::obj(vec![
                ("spanners", Json::num(spanners as u32)),
                ("splitters", Json::num(splitters as u32)),
                ("fleets", Json::num(fleets as u32)),
                ("corpora", Json::num(corpora as u32)),
                ("entries", entries),
                (
                    "compile_cache",
                    Json::obj(vec![
                        ("hits", Json::Num(compile.hits as f64)),
                        ("misses", Json::Num(compile.misses as f64)),
                    ]),
                ),
                (
                    "cert_cache",
                    Json::obj(vec![
                        ("hits", Json::Num(cert.hits as f64)),
                        ("misses", Json::Num(cert.misses as f64)),
                        ("entries", Json::num(cert.entries as u32)),
                    ]),
                ),
            ]),
        ),
        (
            "pool".to_string(),
            Json::obj(vec![
                ("workers", Json::num(state.pool.workers() as u32)),
                ("submitted", Json::Num(pool.submitted as f64)),
                ("completed", Json::Num(pool.completed as f64)),
                ("panicked", Json::Num(pool.panicked as f64)),
            ]),
        ),
        (
            "antichain".to_string(),
            Json::obj(vec![
                ("runs", Json::Num(antichain.runs as f64)),
                ("explored", Json::Num(antichain.explored as f64)),
                ("pruned", Json::Num(antichain.pruned as f64)),
                ("subsets", Json::Num(antichain.subsets as f64)),
            ]),
        ),
    ];
    if let Json::Obj(pairs) = state.metrics.to_json() {
        doc.extend(pairs);
    }
    doc.push((
        "segment_cache".to_string(),
        seg_cache_json(&state.segment_cache),
    ));
    respond(200, Json::Obj(doc))
}
