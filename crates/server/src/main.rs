//! The `splitc-server` binary: extraction-as-a-service over loopback.
//!
//! ```text
//! splitc-server [--port N] [--workers N] [--queue-depth N]
//!               [--batch-bytes N] [--max-body-bytes N]
//! splitc-server --offline < request.json
//! ```
//!
//! The server prints `listening on 127.0.0.1:PORT` once bound (port 0
//! requests an ephemeral port — harnesses scrape the line) and serves
//! until SIGTERM or SIGINT, which trigger a graceful shutdown:
//! in-flight requests complete, new connections are refused, and the
//! process exits 0.
//!
//! `--offline` runs one extraction request (read from stdin, see
//! [`splitc_server::handlers::offline_extract`]) without starting a
//! server, printing the relations JSON to stdout — the differential
//! reference the end-to-end harness compares server responses against.

use splitc_server::config::ServerConfig;
use splitc_server::handlers::offline_extract;
use splitc_server::json::Json;
use splitc_server::server::Server;

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Raised by the signal handler; polled by the main thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs a minimal handler for `sig` via the C `signal` interface
/// (libc is already linked into every Rust binary; no crate needed).
/// The handler only sets an atomic flag — async-signal-safe.
fn install_signal_handler(sig: i32) {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(sig: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(sig, on_signal);
    }
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, offline) = match ServerConfig::from_args(args.iter().map(|s| s.as_str())) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("splitc-server: {e}");
            std::process::exit(2);
        }
    };

    if offline {
        let mut input = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut input) {
            eprintln!("splitc-server: cannot read stdin: {e}");
            std::process::exit(2);
        }
        let request = match Json::parse(&input) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("splitc-server: invalid request JSON: {e}");
                std::process::exit(2);
            }
        };
        match offline_extract(&request) {
            Ok(response) => println!("{response}"),
            Err(e) => {
                eprintln!("splitc-server: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    install_signal_handler(SIGTERM);
    install_signal_handler(SIGINT);

    // The server polls this flag from its accept loop; wiring the
    // signal-raised static through lets `kill -TERM` drive the same
    // graceful path as `Server::shutdown`.
    let stop = Arc::new(AtomicBool::new(false));
    let mut server = match Server::spawn_with_stop(config, stop.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("splitc-server: {e}");
            std::process::exit(2);
        }
    };
    println!("listening on {}", server.addr());
    // Line-buffered stdout only flushes on newline when attached to a
    // terminal; harnesses read this through a pipe, so flush explicitly.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    stop.store(true, Ordering::SeqCst);
    server.shutdown();
    println!("shutdown complete");
}
