//! Streaming sharded corpus execution.
//!
//! [`CorpusRunner`] is the production shape of the paper's parallel
//! evaluation payoff: instead of materializing every document and
//! calling [`crate::evaluate_many_split`], it *streams* each document
//! through a [`StreamingSplitter`] (constant memory per document),
//! batches the emitted segments to amortize dispatch, fans the batches
//! out to a worker pool over a **bounded** queue (backpressure, so peak
//! memory is `chunk size + queue depth × batch bytes`, never corpus
//! size), evaluates each batch with the dense engine through a
//! per-worker lazy-DFA cache, and aggregates per-document
//! [`SpanRelation`]s with deterministic ordering regardless of worker
//! scheduling.
//!
//! When `P = P_S ∘ S` has been certified split-correct
//! (`splitc-core`), the relations returned here equal whole-document
//! evaluation of `P` — the differential proptest suite asserts equality
//! with [`crate::evaluate_many_split`] on every run.

use crate::engine::{EngineBackend, ExecSpanner};
use crate::pool::EvalPool;
use crate::segcache::SegmentCache;
use crate::stream::{Segment, StreamingSplitter};
use parking_lot::Mutex;
use splitc_spanner::dense::{DenseCache, DenseCacheStats};
use splitc_spanner::prefilter::PrefilterStats;
use splitc_spanner::span::Span;
use splitc_spanner::splitter::CompiledSplitter;
use splitc_spanner::tuple::{SpanRelation, SpanTuple};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

/// Tuning knobs of a [`CorpusRunner`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusRunnerConfig {
    /// Evaluation worker threads (the producer streams and splits on the
    /// calling thread). `0` is normalized to 1, matching the contract of
    /// the engine's pool entry points.
    pub workers: usize,
    /// Target payload per dispatched batch: segments are accumulated
    /// until their combined length reaches this many bytes, so corpora
    /// of tiny segments do not pay one queue round-trip per segment.
    pub batch_bytes: usize,
    /// Capacity of the bounded work queue, in batches. The producer
    /// blocks when the queue is full (backpressure), which bounds peak
    /// in-flight segment memory at `queue_depth × batch_bytes` plus one
    /// batch per worker.
    pub queue_depth: usize,
    /// Chunk size used by [`CorpusRunner::run_slices`] when feeding
    /// already-materialized documents through the streaming path.
    pub chunk_bytes: usize,
}

impl Default for CorpusRunnerConfig {
    fn default() -> Self {
        CorpusRunnerConfig {
            workers: 4,
            batch_bytes: 32 << 10,
            queue_depth: 8,
            chunk_bytes: 64 << 10,
        }
    }
}

impl CorpusRunnerConfig {
    /// Returns a copy with every zero knob normalized to its minimum
    /// legal value (1). This is *the* normalization every runner entry
    /// point applies — callers holding possibly-zero configured values
    /// can pass them straight through, and services that want a typed
    /// rejection instead can validate up front (see
    /// `splitc-server`'s config layer) rather than rely on panics.
    pub fn normalized(self) -> CorpusRunnerConfig {
        CorpusRunnerConfig {
            workers: self.workers.max(1),
            batch_bytes: self.batch_bytes.max(1),
            queue_depth: self.queue_depth.max(1),
            chunk_bytes: self.chunk_bytes.max(1),
        }
    }
}

/// Run statistics of one [`CorpusRunner`] invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Documents streamed.
    pub docs: usize,
    /// Documents whose relation was reused verbatim from a
    /// [`crate::CorpusHandle`] extraction memo instead of being run
    /// (always 0 outside [`crate::CorpusHandle::extract`]).
    pub docs_reused: usize,
    /// Split segments evaluated.
    pub segments: usize,
    /// Total bytes across all evaluated segments.
    pub segment_bytes: u64,
    /// Batches dispatched to the worker pool.
    pub batches: usize,
    /// Largest byte window any document's streaming splitter held at
    /// once — bounded by segment + chunk length for prompt splitters,
    /// not by document size.
    pub peak_buffered_bytes: usize,
    /// Aggregated per-worker lazy-DFA cache statistics (all zero under
    /// [`crate::Engine::Nfa`]).
    pub cache: DenseCacheStats,
    /// Aggregated prefilter statistics: worker-side gate rejections and
    /// skip-loop jumps (non-zero only under [`crate::Engine::Prefilter`])
    /// plus the streaming splitter's own skip-loop bytes (any engine).
    pub prefilter: PrefilterStats,
}

/// The outcome of a corpus run: one relation per input document (in
/// input order) plus run statistics.
#[derive(Debug, Clone)]
pub struct CorpusResult {
    /// Per-document span relations, index-aligned with the input order.
    pub relations: Vec<SpanRelation>,
    /// Statistics of the run.
    pub stats: CorpusStats,
}

/// One segment flowing through a runner queue. The streaming path
/// moves each freshly split [`Segment`] in (the bytes were just
/// materialized and have no other owner); the presplit re-query path
/// shares one `Arc` of the whole document per segment instead of
/// copying bytes — at corpus scale that removes one allocation and one
/// memcpy per segment from the all-hits hot path.
pub(crate) enum SegPayload {
    /// Owned segment bytes (streaming split output).
    Owned(Segment),
    /// A slice `doc[span.start..span.end]` of a shared document.
    Shared { doc: Arc<Vec<u8>>, span: Span },
}

impl SegPayload {
    /// The segment's absolute span in its document (the shift applied
    /// to its tuples).
    pub(crate) fn span(&self) -> Span {
        match self {
            SegPayload::Owned(seg) => seg.span,
            SegPayload::Shared { span, .. } => *span,
        }
    }

    /// The segment bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            SegPayload::Owned(seg) => &seg.bytes,
            SegPayload::Shared { doc, span } => &doc[span.start..span.end],
        }
    }
}

/// A batch of split segments bound for one worker. Batches may span
/// document boundaries, so collections of tiny documents still fill
/// them.
struct Batch {
    /// `(document index, segment)` pairs, in stream order.
    segments: Vec<(usize, SegPayload)>,
}

/// The producer side of the pipeline, handed to the segment-producing
/// closure of `run_pipeline`: accumulates segments into batches and
/// dispatches them over the bounded queue (blocking when it is full —
/// the backpressure that bounds in-flight memory). Producers mutate run
/// statistics directly through `stats`.
struct Feed<'a> {
    tx: std::sync::mpsc::SyncSender<Batch>,
    batch: Vec<(usize, SegPayload)>,
    batch_bytes: usize,
    target: usize,
    stats: &'a mut CorpusStats,
}

impl Feed<'_> {
    fn segment(&mut self, di: usize, seg: SegPayload) {
        let len = seg.bytes().len();
        self.stats.segments += 1;
        self.stats.segment_bytes += len as u64;
        self.batch_bytes += len;
        self.batch.push((di, seg));
        if self.batch_bytes >= self.target {
            self.flush();
        }
    }
    fn flush(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        self.stats.batches += 1;
        self.batch_bytes = 0;
        let _ = self.tx.send(Batch {
            segments: std::mem::take(&mut self.batch),
        });
    }
}

/// Streaming sharded corpus executor. See the [module docs](self) for
/// the pipeline shape; construct with [`CorpusRunner::new`] and feed a
/// corpus with [`CorpusRunner::run_streams`] (chunked sources) or
/// [`CorpusRunner::run_slices`] (materialized documents, driven through
/// the same streaming path).
#[derive(Debug)]
pub struct CorpusRunner {
    spanner: ExecSpanner,
    splitter: CompiledSplitter,
    config: CorpusRunnerConfig,
    /// Shared long-lived worker pool. `None` spawns per-run threads
    /// (the batch-job shape); services reuse one [`EvalPool`] across
    /// requests via [`CorpusRunner::with_pool`].
    pool: Option<Arc<EvalPool>>,
    /// Shared content-addressed per-segment result cache. `None`
    /// evaluates every segment; services attach one process-wide cache
    /// via [`CorpusRunner::with_segment_cache`] so re-queries over
    /// slightly-changed corpora skip the unchanged segments.
    segment_cache: Option<Arc<SegmentCache>>,
}

impl CorpusRunner {
    /// Creates a runner evaluating `spanner` over the segments produced
    /// by `splitter`. For results equal to whole-document evaluation the
    /// pair must be certified split-correct; the runner itself computes
    /// `P_S ∘ S` faithfully either way.
    pub fn new(
        spanner: ExecSpanner,
        splitter: CompiledSplitter,
        config: CorpusRunnerConfig,
    ) -> CorpusRunner {
        CorpusRunner {
            spanner,
            splitter,
            config,
            pool: None,
            segment_cache: None,
        }
    }

    /// [`CorpusRunner::new`], but evaluation workers run on the shared
    /// long-lived `pool` instead of per-run spawned threads. Results are
    /// identical; only the thread lifecycle differs — a server reusing
    /// one pool across requests pays zero spawn/join per request. A pool
    /// smaller than `config.workers` still completes every run (worker
    /// loops are self-draining; see [`crate::pool`]).
    pub fn with_pool(
        spanner: ExecSpanner,
        splitter: CompiledSplitter,
        config: CorpusRunnerConfig,
        pool: Arc<EvalPool>,
    ) -> CorpusRunner {
        CorpusRunner {
            spanner,
            splitter,
            config,
            pool: Some(pool),
            segment_cache: None,
        }
    }

    /// Attaches a shared [`SegmentCache`]: workers look each segment up
    /// by content before dispatching the engine, so repeated segments —
    /// across documents, runs, and (for a process-wide cache) requests —
    /// are answered without re-evaluation. Results are byte-identical
    /// with or without a cache (hits return exactly the relation the
    /// engine would compute; the deterministic merge is unchanged).
    pub fn with_segment_cache(mut self, cache: Arc<SegmentCache>) -> CorpusRunner {
        self.segment_cache = Some(cache);
        self
    }

    /// The runner's configuration.
    pub fn config(&self) -> &CorpusRunnerConfig {
        &self.config
    }

    /// Stable identity of the compiled spanner, used by
    /// [`crate::CorpusHandle`] to key its per-shard extraction memo.
    pub(crate) fn spanner_cache_id(&self) -> u64 {
        self.spanner.cache_id()
    }

    /// Streams a corpus of chunked document sources through the
    /// pipeline. Each item of `docs` is one document, delivered as an
    /// iterator of byte chunks (e.g. reads from a file or a generator) —
    /// no document is ever materialized by the runner.
    pub fn run_streams<D, C, B>(&self, docs: D) -> CorpusResult
    where
        D: IntoIterator<Item = C>,
        C: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        self.run_pipeline(|feed| {
            for (di, doc) in docs.into_iter().enumerate() {
                feed.stats.docs += 1;
                let mut splitter = StreamingSplitter::new(&self.splitter);
                for chunk in doc {
                    for seg in splitter.push(chunk.as_ref()) {
                        feed.segment(di, SegPayload::Owned(seg));
                    }
                }
                feed.stats.peak_buffered_bytes = feed
                    .stats
                    .peak_buffered_bytes
                    .max(splitter.peak_buffered_bytes());
                feed.stats.prefilter.bytes_skipped += splitter.bytes_skipped();
                for seg in splitter.finish() {
                    feed.segment(di, SegPayload::Owned(seg));
                }
            }
        })
    }

    /// Evaluates documents whose split is **already known**, skipping
    /// the splitter entirely: each item is `(document bytes, split
    /// spans)`. This is the re-query path of the incremental layer —
    /// [`crate::handle::CorpusHandle`] maintains segmentations across
    /// edits and re-extracts through this entry point, so an unchanged
    /// segment costs one cache lookup instead of a resplit + dispatch.
    ///
    /// The spans must be the splitter's output for those bytes (the
    /// handle guarantees this); the pipeline downstream of splitting —
    /// batching, pooling, caching, deterministic merge — is identical to
    /// [`CorpusRunner::run_streams`].
    pub fn run_presplit<'a, D>(&self, docs: D) -> CorpusResult
    where
        D: IntoIterator<Item = (&'a [u8], &'a [Span])>,
    {
        self.run_pipeline(|feed| {
            for (di, (bytes, spans)) in docs.into_iter().enumerate() {
                feed.stats.docs += 1;
                // One copy of the document, shared by every segment —
                // the per-segment cost is an `Arc` clone, not a byte
                // copy, which is what keeps the all-hits re-query path
                // ahead of a full rescan.
                let doc = Arc::new(bytes.to_vec());
                for &span in spans {
                    feed.segment(
                        di,
                        SegPayload::Shared {
                            doc: doc.clone(),
                            span,
                        },
                    );
                }
            }
        })
    }

    /// The shared pipeline body: spins up the worker side, lets
    /// `produce` feed segments through a [`Feed`] (which batches and
    /// applies backpressure), then collects and deterministically merges
    /// worker outputs.
    fn run_pipeline<F>(&self, produce: F) -> CorpusResult
    where
        F: FnOnce(&mut Feed<'_>),
    {
        let config = self.config.normalized();
        let workers = config.workers;
        let mut stats = CorpusStats::default();
        let mut partials: Vec<(usize, Vec<SpanTuple>)> = Vec::new();
        let mut cache_stats = DenseCacheStats::default();
        let mut prefilter_stats = PrefilterStats::default();

        let (tx, rx) = sync_channel::<Batch>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        // Set when any worker's evaluation panics. Workers keep draining
        // the queue afterwards (without evaluating), so the producer's
        // blocking `send` on the bounded queue can never deadlock; the
        // panic is re-raised below once every worker has reported.
        let failed = Arc::new(AtomicBool::new(false));
        // Worker contexts are fully owned (`Arc` clones of the backend,
        // queue, and failure flag), so the same loop runs on a shared
        // long-lived [`EvalPool`] or on per-run spawned threads.
        let (out_tx, out_rx) = std::sync::mpsc::channel::<WorkerOutput>();
        let seg_cache = self
            .segment_cache
            .clone()
            .map(|c| (c, self.spanner.cache_id()));
        let mut handles = Vec::new();
        for _ in 0..workers {
            let backend = self.spanner.backend().clone();
            let rx = rx.clone();
            let failed = failed.clone();
            let out_tx = out_tx.clone();
            let seg_cache = seg_cache.clone();
            let job = move || {
                let _ = out_tx.send(worker_loop(&backend, seg_cache.as_ref(), &rx, &failed));
            };
            match &self.pool {
                Some(pool) => pool.execute(Box::new(job)),
                None => handles.push(std::thread::spawn(job)),
            }
        }
        drop(out_tx);

        // Producer: the `produce` closure feeds segments on the calling
        // thread; the feed accumulates them (across document boundaries)
        // until the batch payload target is reached, then blocks on the
        // bounded queue — that block is the backpressure that caps
        // in-flight memory.
        let mut feed = Feed {
            tx,
            batch: Vec::new(),
            batch_bytes: 0,
            target: config.batch_bytes,
            stats: &mut stats,
        };
        produce(&mut feed);
        feed.flush();
        drop(feed);

        // Collect exactly one report per worker. A worker that died
        // before reporting (a panic outside the catch — a bug) shows up
        // as a disconnected channel and is surfaced as a failure.
        for _ in 0..workers {
            match out_rx.recv() {
                Ok((tuples, cache, prefilter)) => {
                    partials.extend(tuples);
                    cache_stats = cache_stats.merge(cache);
                    prefilter_stats = prefilter_stats.merge(prefilter);
                }
                Err(_) => {
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }
        for h in handles {
            let _ = h.join();
        }
        assert!(
            !failed.load(Ordering::Relaxed),
            "a corpus worker panicked while evaluating a batch"
        );

        stats.cache = cache_stats;
        stats.prefilter = stats.prefilter.merge(prefilter_stats);
        // Deterministic aggregation: `from_tuples` sorts and dedups, so
        // the result is independent of batch and worker scheduling.
        let mut per_doc: Vec<Vec<SpanTuple>> = (0..stats.docs).map(|_| Vec::new()).collect();
        for (di, tuples) in partials {
            per_doc[di].extend(tuples);
        }
        CorpusResult {
            relations: per_doc.into_iter().map(SpanRelation::from_tuples).collect(),
            stats,
        }
    }

    /// Runs already-materialized documents through the streaming path,
    /// feeding each in [`CorpusRunnerConfig::chunk_bytes`] chunks. This
    /// is the entry point the differential tests and the
    /// `e5_corpus_stream` benchmark compare against
    /// [`crate::evaluate_many_split`].
    pub fn run_slices(&self, docs: &[&[u8]]) -> CorpusResult {
        let chunk = self.config.chunk_bytes.max(1);
        self.run_streams(docs.iter().map(|d| d.chunks(chunk)))
    }
}

/// What one worker hands back when the queue drains.
type WorkerOutput = (
    Vec<(usize, Vec<SpanTuple>)>,
    DenseCacheStats,
    PrefilterStats,
);

/// One evaluation worker: drains the queue, evaluates each segment
/// with a worker-local dense cache, and returns shifted tuples
/// grouped by document index. Evaluation panics are caught and
/// recorded in `failed` — the worker then keeps draining (without
/// evaluating) so the producer never deadlocks on the bounded queue.
///
/// A free function over owned/shared contexts (not a method) so the
/// same loop body runs on per-run threads and on a long-lived
/// [`EvalPool`].
fn worker_loop(
    backend: &Arc<dyn EngineBackend>,
    seg_cache: Option<&(Arc<SegmentCache>, u64)>,
    rx: &Mutex<Receiver<Batch>>,
    failed: &AtomicBool,
) -> WorkerOutput {
    let mut cache = DenseCache::default();
    let mut prefilter_stats = PrefilterStats::default();
    let mut out: Vec<(usize, Vec<SpanTuple>)> = Vec::new();
    loop {
        // Hold the lock across `recv`: batches are coarse, so the
        // serialization this imposes on the pop path is noise, and it
        // keeps the pool free of a lock-free queue dependency.
        let batch = match rx.lock().recv() {
            Ok(b) => b,
            Err(_) => break, // producer hung up and queue drained
        };
        if failed.load(Ordering::Relaxed) {
            continue; // drain-only after a failure elsewhere
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut local_out: Vec<(usize, Vec<SpanTuple>)> = Vec::new();
            for (di, seg) in batch.segments {
                let (bytes, span) = (seg.bytes(), seg.span());
                // Segment relations are pure functions of the bytes, so
                // a content-addressed hit is byte-identical to the
                // engine dispatch it replaces; hits shift straight out
                // of the shared cached relation (no intermediate clone).
                let tuples: Vec<SpanTuple> = match seg_cache {
                    Some((sc, id)) => sc
                        .get_or_eval(*id, bytes, || {
                            backend.eval_scratch(bytes, &mut cache, &mut prefilter_stats)
                        })
                        .0
                        .iter()
                        .map(|t| t.shift(span))
                        .collect(),
                    None => backend
                        .eval_scratch(bytes, &mut cache, &mut prefilter_stats)
                        .iter()
                        .map(|t| t.shift(span))
                        .collect(),
                };
                if !tuples.is_empty() {
                    local_out.push((di, tuples));
                }
            }
            local_out
        }));
        match result {
            Ok(tuples) => out.extend(tuples),
            Err(_) => failed.store(true, Ordering::Relaxed),
        }
    }
    (out, cache.stats(), prefilter_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{evaluate_many_split, split_fn_of_splitter, Engine, SplitFn};
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;
    use splitc_spanner::vsa::Vsa;

    fn vsa(pat: &str) -> Vsa {
        Rgx::parse(pat).unwrap().to_vsa().unwrap()
    }

    fn runner(pat: &str, config: CorpusRunnerConfig) -> CorpusRunner {
        CorpusRunner::new(
            ExecSpanner::compile(&vsa(pat)),
            splitter::sentences().compile(),
            config,
        )
    }

    fn docs() -> Vec<Vec<u8>> {
        vec![
            b"aa bb. aaa. b aa".to_vec(),
            b"".to_vec(),
            b"no delimiter aaa".to_vec(),
            b"a.a.a.".to_vec(),
            b"...".to_vec(),
        ]
    }

    #[test]
    fn matches_evaluate_many_split() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let r = runner(
            ".*x{a+}.*",
            CorpusRunnerConfig {
                workers: 3,
                batch_bytes: 4,
                queue_depth: 2,
                chunk_bytes: 3,
            },
        );
        let got = r.run_slices(&refs);
        let split: SplitFn = split_fn_of_splitter(&splitter::sentences());
        let spanner = ExecSpanner::compile(&vsa(".*x{a+}.*"));
        let expected = evaluate_many_split(&spanner, &split, &refs, 3);
        assert_eq!(got.relations, expected);
        assert_eq!(got.stats.docs, refs.len());
        assert!(got.stats.segments > 0);
    }

    #[test]
    fn nfa_engine_and_zero_workers() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let r = CorpusRunner::new(
            ExecSpanner::compile_with(&vsa(".*x{a+}.*"), Engine::Nfa),
            splitter::sentences().compile(),
            CorpusRunnerConfig {
                workers: 0,
                ..Default::default()
            },
        );
        let got = r.run_slices(&refs);
        let split: SplitFn = split_fn_of_splitter(&splitter::sentences());
        let spanner = ExecSpanner::compile(&vsa(".*x{a+}.*"));
        assert_eq!(
            got.relations,
            evaluate_many_split(&spanner, &split, &refs, 1)
        );
        assert_eq!(got.stats.cache, DenseCacheStats::default());
    }

    #[test]
    fn cache_is_warm_on_repetitive_corpora() {
        let owned: Vec<Vec<u8>> = (0..50).map(|_| b"aa bb. cc aa. aaa".to_vec()).collect();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let r = runner(
            ".*x{a+}.*",
            CorpusRunnerConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let got = r.run_slices(&refs);
        assert!(
            got.stats.cache.hit_rate() > 0.9,
            "lazy DFA should be amortized: {:?}",
            got.stats.cache
        );
    }

    #[test]
    fn streaming_buffer_is_bounded() {
        // One 64 KiB document of short sentences, streamed in 512-byte
        // chunks: the splitter window must stay near segment + chunk.
        let doc: Vec<u8> = (0..4096)
            .flat_map(|_| b"aaaa bb aaaa cc.".to_vec())
            .collect();
        let refs: Vec<&[u8]> = vec![&doc];
        let r = runner(
            ".*x{a+}.*",
            CorpusRunnerConfig {
                workers: 2,
                chunk_bytes: 512,
                ..Default::default()
            },
        );
        let got = r.run_slices(&refs);
        assert!(
            got.stats.peak_buffered_bytes <= 512 + 64,
            "peak {} should be ~chunk+segment, doc is {}",
            got.stats.peak_buffered_bytes,
            doc.len()
        );
    }

    #[test]
    fn prefilter_engine_matches_and_reports_stats() {
        // A sparse corpus: only one sentence in many contains a digit.
        let mut owned: Vec<Vec<u8>> = (0..20)
            .map(|_| b"plain words only here. nothing to find. still nothing".to_vec())
            .collect();
        owned.push(b"the answer is 42. plain tail".to_vec());
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let pat = "(.*[^0-9]|)x{[0-9]+}([^0-9].*|)";
        let pre = CorpusRunner::new(
            ExecSpanner::compile_with(&vsa(pat), Engine::Prefilter),
            splitter::sentences().compile(),
            CorpusRunnerConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let dense = CorpusRunner::new(
            ExecSpanner::compile_with(&vsa(pat), Engine::Dense),
            splitter::sentences().compile(),
            CorpusRunnerConfig {
                workers: 2,
                ..Default::default()
            },
        );
        let got = pre.run_slices(&refs);
        assert_eq!(got.relations, dense.run_slices(&refs).relations);
        let pf = got.stats.prefilter;
        assert!(
            pf.bytes_skipped > 500,
            "most segments should be gate-rejected: {pf:?}"
        );
        assert!(pf.candidates >= 1, "the digit sentence is a candidate");
        assert!(
            pf.candidates <= 4,
            "sparse corpus must not flood candidates: {pf:?}"
        );
        // Dense runs report no prefilter activity (the streaming
        // splitter may still skip, but sentences open everywhere).
        assert_eq!(dense.run_slices(&refs).stats.prefilter.candidates, 0);
    }

    #[test]
    fn empty_corpus() {
        let r = runner("x{a*}", CorpusRunnerConfig::default());
        let got = r.run_slices(&[]);
        assert!(got.relations.is_empty());
        assert_eq!(got.stats, CorpusStats::default());
    }

    #[test]
    fn pooled_runner_matches_spawned_runner() {
        let owned = docs();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let config = CorpusRunnerConfig {
            workers: 3,
            batch_bytes: 4,
            queue_depth: 2,
            chunk_bytes: 3,
        };
        let spawned = runner(".*x{a+}.*", config).run_slices(&refs);
        // A shared pool, reused across several requests — including one
        // *smaller* than the requested worker count (self-draining
        // loops must still complete the run).
        for pool_size in [1, 2, 8] {
            let pool = std::sync::Arc::new(EvalPool::new(pool_size));
            for _request in 0..3 {
                let r = CorpusRunner::with_pool(
                    ExecSpanner::compile(&vsa(".*x{a+}.*")),
                    splitter::sentences().compile(),
                    config,
                    pool.clone(),
                );
                let got = r.run_slices(&refs);
                assert_eq!(got.relations, spawned.relations, "pool size {pool_size}");
            }
            assert!(pool.stats().submitted >= 3, "pool was actually used");
        }
    }

    #[test]
    fn config_normalization() {
        let zeroed = CorpusRunnerConfig {
            workers: 0,
            batch_bytes: 0,
            queue_depth: 0,
            chunk_bytes: 0,
        }
        .normalized();
        assert_eq!(zeroed.workers, 1);
        assert_eq!(zeroed.batch_bytes, 1);
        assert_eq!(zeroed.queue_depth, 1);
        assert_eq!(zeroed.chunk_bytes, 1);
        let kept = CorpusRunnerConfig::default().normalized();
        assert_eq!(kept.workers, CorpusRunnerConfig::default().workers);
    }
}
