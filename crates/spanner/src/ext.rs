//! Extended alphabets `Σ ∪ Γ_V` with byte-class compression.
//!
//! The decision procedures compare spanners as regular languages of
//! (order-normalized, valid) ref-words. To hand those languages to the
//! generic automata substrate we intern an *extended alphabet*: one dense
//! symbol per variable operation plus one per **byte class**. Byte classes
//! are the equivalence classes of bytes under "indistinguishable by every
//! byte set appearing in the participating automata" — containment over
//! the class alphabet coincides with containment over raw bytes because
//! the classes refine every transition set involved.

use crate::byteset::ByteSet;
use crate::vars::{VarId, VarOp, VarTable};
use crate::vsa::Vsa;
use splitc_automata::classes::ByteClassBuilder;
use splitc_automata::nfa::Sym;

/// A decoded extended-alphabet symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtSym {
    /// A variable operation.
    Op(VarOp),
    /// A byte class (the set of bytes in the class).
    Class(ByteSet),
}

/// An interned extended alphabet over a variable table and a byte-class
/// partition.
///
/// Symbol layout: `0 .. 2·|V|` are the operations (opens then closes, in
/// `VarId` order — matching [`VarOp::dense_index`]), followed by one
/// symbol per byte class.
#[derive(Debug, Clone)]
pub struct ExtAlphabet {
    vars: VarTable,
    classes: Vec<ByteSet>,
    class_of: Vec<u16>, // 256 entries
}

impl ExtAlphabet {
    /// Builds the alphabet for a set of automata that all use (a subset
    /// of) `vars`. The byte classes refine every byte set used by any of
    /// the automata.
    pub fn for_automata(vars: &VarTable, automata: &[&Vsa]) -> ExtAlphabet {
        let mut masks: Vec<ByteSet> = Vec::new();
        for a in automata {
            masks.extend(a.byte_masks());
        }
        Self::from_masks(vars.clone(), &masks)
    }

    /// Builds the alphabet from explicit byte sets, via the shared
    /// [`ByteClassBuilder`] partition refinement.
    pub fn from_masks(vars: VarTable, masks: &[ByteSet]) -> ExtAlphabet {
        let mut builder = ByteClassBuilder::new();
        for m in masks {
            builder.add_set(|b| m.contains(b));
        }
        let partition = builder.build();
        let mut classes: Vec<ByteSet> = vec![ByteSet::EMPTY; partition.num_classes()];
        let mut class_of = vec![0u16; 256];
        for b in 0u16..256 {
            let b = b as u8;
            let id = partition.class_of(b);
            classes[id].insert(b);
            class_of[b as usize] = id as u16;
        }
        ExtAlphabet {
            vars,
            classes,
            class_of,
        }
    }

    /// The variable table.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of byte classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total alphabet size (for [`splitc_automata::Nfa::new`]).
    pub fn alphabet_size(&self) -> u32 {
        (2 * self.vars.len() + self.classes.len()) as u32
    }

    /// Symbol of a variable operation.
    pub fn op_sym(&self, op: VarOp) -> Sym {
        Sym(op.dense_index(self.vars.len()) as u32)
    }

    /// Symbol of the byte class containing `b`.
    pub fn class_sym_of_byte(&self, b: u8) -> Sym {
        Sym((2 * self.vars.len() + self.class_of[b as usize] as usize) as u32)
    }

    /// Symbols of all classes intersecting `mask`. Classes refine the
    /// masks the alphabet was built from, so for those masks every
    /// returned class is fully contained in the mask; for foreign masks
    /// this is an over-approximation (debug-asserted against).
    pub fn class_syms(&self, mask: &ByteSet) -> Vec<Sym> {
        let base = 2 * self.vars.len();
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.and(mask).is_empty())
            .map(|(i, c)| {
                debug_assert_eq!(
                    c.and(mask),
                    *c,
                    "byte class not refined by alphabet — automaton not registered"
                );
                Sym((base + i) as u32)
            })
            .collect()
    }

    /// Decodes a symbol.
    pub fn decode(&self, sym: Sym) -> ExtSym {
        let n = self.vars.len();
        let i = sym.index();
        if i < n {
            ExtSym::Op(VarOp::Open(VarId(i as u32)))
        } else if i < 2 * n {
            ExtSym::Op(VarOp::Close(VarId((i - n) as u32)))
        } else {
            ExtSym::Class(self.classes[i - 2 * n])
        }
    }

    /// A representative byte per class symbol (for materializing
    /// counterexample documents).
    pub fn class_representative(&self, sym: Sym) -> Option<u8> {
        match self.decode(sym) {
            ExtSym::Class(c) => c.first(),
            ExtSym::Op(_) => None,
        }
    }

    /// Decodes a word over the extended alphabet into `(document bytes,
    /// ref-word)`, choosing a representative byte per class.
    pub fn decode_word(&self, word: &[Sym]) -> (Vec<u8>, crate::refword::RefWord) {
        let mut doc = Vec::new();
        let mut syms = Vec::new();
        for &s in word {
            match self.decode(s) {
                ExtSym::Op(op) => syms.push(crate::refword::RefSym::Op(op)),
                ExtSym::Class(c) => {
                    let b = c.first().expect("classes are non-empty");
                    doc.push(b);
                    syms.push(crate::refword::RefSym::Byte(b));
                }
            }
        }
        (doc, crate::refword::RefWord::new(syms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_bytes() {
        let masks = [
            ByteSet::range(b'a', b'z'),
            ByteSet::single(b'.'),
            ByteSet::range(b'a', b'm'),
        ];
        let ext = ExtAlphabet::from_masks(VarTable::empty(), &masks);
        // Classes: [a-m], [n-z], {.}, rest — 4 classes.
        assert_eq!(ext.num_classes(), 4);
        let mut total = 0;
        for i in 0..ext.num_classes() {
            let sym = Sym((2 * ext.vars().len() + i) as u32);
            if let ExtSym::Class(c) = ext.decode(sym) {
                total += c.len();
            }
        }
        assert_eq!(total, 256);
    }

    #[test]
    fn class_syms_cover_mask_exactly() {
        let m1 = ByteSet::range(b'a', b'z');
        let ext = ExtAlphabet::from_masks(VarTable::empty(), &[m1]);
        let syms = ext.class_syms(&m1);
        assert_eq!(syms.len(), 1);
        assert_eq!(ext.class_sym_of_byte(b'q'), syms[0]);
        assert_ne!(ext.class_sym_of_byte(b'!'), syms[0]);
    }

    #[test]
    fn op_symbols_roundtrip() {
        let vars = VarTable::new(["x", "y"]).unwrap();
        let ext = ExtAlphabet::from_masks(vars, &[]);
        for op in [
            VarOp::Open(VarId(0)),
            VarOp::Open(VarId(1)),
            VarOp::Close(VarId(0)),
            VarOp::Close(VarId(1)),
        ] {
            assert_eq!(ext.decode(ext.op_sym(op)), ExtSym::Op(op));
        }
        assert_eq!(ext.alphabet_size(), 4 + ext.num_classes() as u32);
    }

    #[test]
    fn decode_word_produces_refword() {
        let vars = VarTable::new(["x"]).unwrap();
        let ext = ExtAlphabet::from_masks(vars.clone(), &[ByteSet::single(b'a')]);
        let word = vec![
            ext.op_sym(VarOp::Open(VarId(0))),
            ext.class_sym_of_byte(b'a'),
            ext.op_sym(VarOp::Close(VarId(0))),
        ];
        let (doc, rw) = ext.decode_word(&word);
        assert_eq!(doc, b"a");
        assert!(rw.is_valid(&vars));
    }
}
