//! Criterion microbenchmarks for the evaluation engine (supports E1/E2):
//! sequential whole-document evaluation vs split-per-sentence evaluation
//! of the N-gram extractor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use splitc_exec::{evaluate_sequential, evaluate_split, ExecSpanner, SplitFn};
use splitc_spanner::splitter::native;
use splitc_textgen::{spanners, wiki_corpus, CorpusConfig};
use std::sync::Arc;

fn bench_ngram(c: &mut Criterion) {
    let cfg = CorpusConfig {
        target_bytes: 256 << 10,
        ..Default::default()
    };
    let doc = wiki_corpus(&cfg);
    let split: SplitFn = Arc::new(native::sentences);

    let mut group = c.benchmark_group("ngram_eval");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    for n in [2usize, 3] {
        let spanner = ExecSpanner::compile(&spanners::ngram_extractor(n));
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| evaluate_sequential(&spanner, &doc))
        });
        group.bench_with_input(BenchmarkId::new("split_1worker", n), &n, |b, _| {
            b.iter(|| evaluate_split(&spanner, &split, &doc, 1))
        });
    }
    group.finish();
}

fn bench_splitting(c: &mut Criterion) {
    let cfg = CorpusConfig {
        target_bytes: 1 << 20,
        ..Default::default()
    };
    let doc = wiki_corpus(&cfg);
    let mut group = c.benchmark_group("splitting");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.bench_function("native_sentences", |b| b.iter(|| native::sentences(&doc)));
    group.bench_function("native_paragraphs", |b| b.iter(|| native::paragraphs(&doc)));
    group.bench_function("native_ngrams2", |b| b.iter(|| native::ngrams(&doc, 2)));
    group.finish();
}

criterion_group!(benches, bench_ngram, bench_splitting);
criterion_main!(benches);
