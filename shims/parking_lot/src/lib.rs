//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: a `Mutex` with a panic-free (poison-ignoring) `lock()`, backed
//! by `std::sync::Mutex`. Only the surface this workspace uses.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` never returns a poison error,
/// mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
