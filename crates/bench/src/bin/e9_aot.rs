//! E9 — AOT minimized-DFA tier vs the lazy dense engine on the e1–e4
//! hot loops.
//!
//! The four extraction workloads of the paper-reproduction experiments
//! (Wikipedia N-grams, PubMed N-grams, Reuters transactions, Amazon
//! review sentiment) are replayed single-threaded under two engines:
//! the PR 6 lazy dense engine (on-the-fly DFA cache) and the AOT tier
//! (fully determinized, Hopcroft-minimized, premultiplied `u16`
//! tables). Emits one `BENCH` row per (workload, engine); the
//! `--gate aot:<ratio>` check in `scripts/bench_check.py` compares the
//! pairs and requires the AOT tier to win on at least two workloads.
//!
//! Both engines are differentially checked against each other on every
//! corpus before timing, so a row can never report a fast-but-wrong
//! engine. The `--engine` flag is accepted-and-ignored for smoke-runner
//! uniformity (both engines are always run).

use splitc_bench::{bench_json, engine_arg, ms, scale, scaled, time_best, x, Table};
use splitc_exec::{Engine, ExecSpanner};
use splitc_spanner::vsa::Vsa;
use splitc_textgen::{
    articles_corpus, pubmed_corpus, reviews_corpus, spanners, wiki_corpus, CorpusConfig,
};

/// One replayed workload: a formal extractor and the documents of its
/// original experiment (single-document corpora are one-element lists).
struct Workload {
    name: &'static str,
    what: &'static str,
    vsa: Vsa,
    docs: Vec<Vec<u8>>,
}

fn workloads() -> Vec<Workload> {
    let wiki = wiki_corpus(&CorpusConfig {
        target_bytes: scaled(4 << 20),
        ..Default::default()
    });
    vec![
        Workload {
            name: "e1",
            what: "wiki 2-grams",
            vsa: spanners::ngram_extractor(2),
            docs: vec![wiki],
        },
        Workload {
            name: "e2",
            what: "pubmed 3-grams",
            vsa: spanners::ngram_extractor(3),
            docs: vec![pubmed_corpus(scaled(4 << 20), 0xBEEF)],
        },
        Workload {
            name: "e3",
            what: "reuters transactions",
            vsa: spanners::transaction_extractor(),
            docs: articles_corpus(scaled(4096).max(8), 0x5EED),
        },
        Workload {
            name: "e4",
            what: "review sentiment",
            vsa: spanners::negative_sentiment_targets(),
            docs: reviews_corpus(scaled(16384).max(8), 0xF00D),
        },
    ]
}

fn main() {
    // Accepted for smoke-runner uniformity; both engines always run.
    let _ = engine_arg();
    println!("E9: AOT minimized-DFA tier vs lazy dense on the e1-e4 hot loops");

    let mut table = Table::new(
        "E9 — AOT vs lazy dense (single-threaded full-corpus evaluation)",
        &[
            "workload",
            "bytes",
            "tuples",
            "dense ms",
            "aot ms",
            "aot speedup",
        ],
    );
    for w in workloads() {
        let bytes: usize = w.docs.iter().map(Vec::len).sum();
        let dense = ExecSpanner::compile_with(&w.vsa, Engine::Dense);
        let aot = ExecSpanner::compile_with(&w.vsa, Engine::Aot);
        assert_eq!(
            aot.tier(),
            Engine::Aot,
            "{}: workload automaton exceeds the AOT state budget",
            w.name
        );
        // Differential check before timing: byte-identical relations on
        // every document of the corpus.
        for doc in &w.docs {
            assert_eq!(
                dense.eval(doc),
                aot.eval(doc),
                "{}: engines diverge",
                w.name
            );
        }
        let eval_all = |spanner: &ExecSpanner| -> usize {
            w.docs.iter().map(|doc| spanner.eval(doc).len()).sum()
        };
        let (tuples, dense_wall) = time_best(3, || eval_all(&dense));
        let (_, aot_wall) = time_best(3, || eval_all(&aot));
        for (engine, wall) in [("dense", dense_wall), ("aot", aot_wall)] {
            bench_json(
                &format!("e9_aot/{}", w.name),
                engine,
                bytes,
                scale(),
                wall,
                tuples,
            );
        }
        table.row(&[
            format!("{} ({})", w.name, w.what),
            bytes.to_string(),
            tuples.to_string(),
            ms(dense_wall),
            ms(aot_wall),
            x(dense_wall.as_secs_f64() / aot_wall.as_secs_f64().max(1e-12)),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the premultiplied AOT tables beat the lazy dense\n\
         cache on match-sparse scanning loops (the gate requires a win on\n\
         at least two of the four workloads, not on every shape)."
    );
}
