//! T5 — Proposition 5.5: splitter disjointness is decidable in NL
//! (polynomial product simulation). Measured on growing disjoint and
//! non-disjoint splitter families.

use splitc_bench::families::delimiter_splitter;
use splitc_bench::{ms, time_best, Table};
use splitc_spanner::splitter;

fn main() {
    let mut t = Table::new(
        "T5 — disjointness check (Prop 5.5)",
        &["splitter", "|Q(S)|", "disjoint", "time ms"],
    );
    for d in [1usize, 2, 4, 8, 16] {
        let s = delimiter_splitter(d);
        let (verdict, dur) = time_best(3, || s.is_disjoint());
        t.row(&[
            format!("delims({d})"),
            s.vsa().num_states().to_string(),
            verdict.to_string(),
            ms(dur),
        ]);
    }
    for n in [1usize, 2, 3, 4, 6] {
        let s = splitter::ngrams(n);
        let (verdict, dur) = time_best(3, || s.is_disjoint());
        t.row(&[
            format!("ngrams({n})"),
            s.vsa().num_states().to_string(),
            verdict.to_string(),
            ms(dur),
        ]);
    }
    for (name, s) in [
        ("sentences", splitter::sentences()),
        ("lines", splitter::lines()),
        ("paragraphs", splitter::paragraphs()),
        ("whole_document", splitter::whole_document()),
    ] {
        let (verdict, dur) = time_best(3, || s.is_disjoint());
        t.row(&[
            name.to_string(),
            s.vsa().num_states().to_string(),
            verdict.to_string(),
            ms(dur),
        ]);
    }
    t.print();
    println!("\nShape check: polynomial growth; N-grams (n>1) correctly non-disjoint (§3).");
}
