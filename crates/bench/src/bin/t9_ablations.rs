//! T9 — ablations of this implementation's design choices:
//!
//! * DFA minimization inside determinization (Prop 4.4 pipeline):
//!   automaton sizes with and without the minimization pass;
//! * byte-class compression: extended-alphabet sizes with classes vs the
//!   raw 256-byte alphabet (state/edge counts of the normalized NFA);
//! * UFA counting (Lemma 5.6 engine) vs classical subset containment on
//!   the same unambiguous automata.

use splitc_automata::unambiguous;
use splitc_automata::{ops, Dfa};
use splitc_bench::families::chain_extractor;
use splitc_bench::{ms, time_best, Table};
use splitc_spanner::evsa::EVsa;
use splitc_spanner::ext::ExtAlphabet;
use splitc_spanner::splitter;

fn main() {
    // (a) minimization ablation.
    let mut t = Table::new(
        "T9a — determinization pipeline with/without DFA minimization",
        &["input", "|Q| no-min", "|Q| min", "reduction"],
    );
    for (name, vsa) in [
        ("chain(16)", chain_extractor(16)),
        ("sentences splitter", splitter::sentences().vsa().clone()),
        ("2-gram splitter", splitter::ngrams(2).vsa().clone()),
    ] {
        let functional = vsa.functionalize();
        let evsa = EVsa::from_functional(&functional);
        let ext = ExtAlphabet::for_automata(vsa.vars(), &[&functional]);
        let nfa = evsa.to_nfa(&ext);
        let raw = Dfa::determinize(&nfa);
        let min = raw.minimize();
        t.row(&[
            name.into(),
            raw.num_states().to_string(),
            min.num_states().to_string(),
            format!(
                "{:.0}%",
                100.0 * (1.0 - min.num_states() as f64 / raw.num_states() as f64)
            ),
        ]);
    }
    t.print();

    // (b) byte-class compression.
    let mut t = Table::new(
        "T9b — byte-class compression of the extended alphabet",
        &["automaton", "classes", "raw bytes", "alphabet shrink"],
    );
    for (name, vsa) in [
        ("sentences splitter", splitter::sentences().vsa().clone()),
        ("chain(8)", chain_extractor(8)),
        (
            "transaction extractor",
            splitc_textgen::spanners::transaction_extractor(),
        ),
    ] {
        let ext = ExtAlphabet::for_automata(vsa.vars(), &[&vsa]);
        t.row(&[
            name.into(),
            ext.num_classes().to_string(),
            "256".into(),
            format!("{:.1}x", 256.0 / ext.num_classes() as f64),
        ]);
    }
    t.print();

    // (c) UFA counting vs classical containment on unambiguous inputs.
    let mut t = Table::new(
        "T9c — Lemma 5.6 engine: UFA counting vs subset containment",
        &["chain k", "counting ms", "subset ms", "agree"],
    );
    for k in [8usize, 16, 32, 64] {
        let a = chain_extractor(k).determinize();
        let b = chain_extractor(k).determinize();
        let ea = EVsa::from_functional(&a);
        let eb = EVsa::from_functional(&b);
        let mut masks = a.byte_masks();
        masks.extend(b.byte_masks());
        let ext = ExtAlphabet::from_masks(a.vars().clone(), &masks);
        let na = ea.to_nfa(&ext);
        let nb = eb.to_nfa(&ext);
        assert!(unambiguous::is_unambiguous(&na));
        let (fast, d_fast) = time_best(3, || unambiguous::ufa_contains_unchecked(&na, &nb));
        let (slow, d_slow) = time_best(3, || ops::contains(&na, &nb).holds());
        t.row(&[
            k.to_string(),
            ms(d_fast),
            ms(d_slow),
            (fast == slow).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nNote: on deterministic inputs the subset method is linear too; the\n\
         counting engine's advantage is that it stays polynomial on\n\
         *unambiguous nondeterministic* automata (the A_P/A_S of Lemma 5.6),\n\
         where subsets can blow up."
    );
}
