//! Accepting-path counting for finite automata.
//!
//! For an **unambiguous** automaton the number of accepting paths on words
//! of length `n` equals the number of accepted words of length `n`; this is
//! the engine behind the polynomial-time containment test of Stearns &
//! Hunt (1985) used by Lemma 5.6 of the paper (the tractable cover-condition
//! check). Counts are computed modulo a set of large primes to stay in
//! `u64` arithmetic; sequences of path counts satisfy a linear recurrence of
//! order ≤ `num_states`, so agreement on a finite prefix of lengths implies
//! agreement everywhere (Cayley–Hamilton).

use crate::nfa::{Nfa, StateId};

/// Large primes below 2^62 used for modular path counting. Agreement modulo
/// all of them on the Cayley–Hamilton-bounded prefix is, for non-adversarial
/// inputs, overwhelming evidence of exact equality; the prime set is fixed
/// (not randomized) so results are reproducible.
pub const COUNT_PRIMES: [u64; 3] = [
    4_611_686_018_427_387_847, // 2^62 - 57
    4_611_686_018_427_387_817, // prime < 2^62
    2_305_843_009_213_693_951, // 2^61 - 1 (Mersenne)
];

fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Streams, per word length `0..=max_len`, the number of accepting paths of
/// the automaton modulo `modulus`. The automaton must be ε-free.
pub struct PathCounter<'a> {
    nfa: &'a Nfa,
    modulus: u64,
    /// `vec[q]` = number of paths from a start state to `q` of the current
    /// length, mod `modulus`.
    vec: Vec<u64>,
}

impl<'a> PathCounter<'a> {
    /// Creates a counter; `nfa` must be ε-free (debug-asserted).
    pub fn new(nfa: &'a Nfa, modulus: u64) -> Self {
        debug_assert!(!nfa.has_eps(), "PathCounter requires an eps-free NFA");
        let mut vec = vec![0u64; nfa.num_states()];
        for &s in nfa.starts() {
            // Multiple start entries are deduplicated by Nfa::add_start.
            vec[s as usize] = 1;
        }
        PathCounter { nfa, modulus, vec }
    }

    /// Number of accepting paths at the current length.
    pub fn current_count(&self) -> u64 {
        let mut acc: u64 = 0;
        for q in self.nfa.final_states() {
            acc = (acc + self.vec[q as usize]) % self.modulus;
        }
        acc
    }

    /// Advances to the next word length.
    pub fn step(&mut self) {
        let mut next = vec![0u64; self.nfa.num_states()];
        for q in 0..self.nfa.num_states() {
            let c = self.vec[q];
            if c == 0 {
                continue;
            }
            for &(_, r) in self.nfa.transitions_from(q as StateId) {
                next[r as usize] = (next[r as usize] + c) % self.modulus;
            }
        }
        self.vec = next;
    }
}

/// Returns the numbers of accepting paths for word lengths `0..=max_len`
/// modulo `modulus`. ε-transitions are eliminated first.
pub fn path_counts_mod(nfa: &Nfa, max_len: usize, modulus: u64) -> Vec<u64> {
    let nfa = nfa.remove_eps();
    let mut counter = PathCounter::new(&nfa, modulus);
    let mut out = Vec::with_capacity(max_len + 1);
    for i in 0..=max_len {
        out.push(counter.current_count());
        if i != max_len {
            counter.step();
        }
    }
    out
}

/// Exact accepting-path counts with saturation at `u128::MAX` (useful for
/// tests on small automata).
pub fn path_counts_exact(nfa: &Nfa, max_len: usize) -> Vec<u128> {
    let nfa = nfa.remove_eps();
    let mut vec = vec![0u128; nfa.num_states()];
    for &s in nfa.starts() {
        vec[s as usize] = 1;
    }
    let mut out = Vec::with_capacity(max_len + 1);
    for i in 0..=max_len {
        let mut acc: u128 = 0;
        for q in nfa.final_states() {
            acc = acc.saturating_add(vec[q as usize]);
        }
        out.push(acc);
        if i == max_len {
            break;
        }
        let mut next = vec![0u128; nfa.num_states()];
        for (q, &c) in vec.iter().enumerate() {
            if c == 0 {
                continue;
            }
            for &(_, r) in nfa.transitions_from(q as StateId) {
                next[r as usize] = next[r as usize].saturating_add(c);
            }
        }
        vec = next;
    }
    out
}

/// `a * b mod m` exposed for the unambiguity machinery.
pub fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    mul_mod(a, b, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Sym;

    fn sigma_star(asize: u32) -> Nfa {
        let mut n = Nfa::new(asize);
        let q = n.add_state();
        n.add_start(q);
        n.set_final(q, true);
        for s in 0..asize {
            n.add_transition(q, Sym(s), q);
        }
        n
    }

    #[test]
    fn counts_sigma_star() {
        // Over a 2-letter alphabet: 1, 2, 4, 8, ...
        let counts = path_counts_exact(&sigma_star(2), 5);
        assert_eq!(counts, vec![1, 2, 4, 8, 16, 32]);
        let m = COUNT_PRIMES[0];
        assert_eq!(
            path_counts_mod(&sigma_star(2), 5, m),
            vec![1, 2, 4, 8, 16, 32]
        );
    }

    #[test]
    fn counts_single_word() {
        let mut n = Nfa::new(2);
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(1), q1);
        n.set_final(q1, true);
        assert_eq!(path_counts_exact(&n, 3), vec![0, 1, 0, 0]);
    }

    #[test]
    fn ambiguous_automaton_counts_paths_not_words() {
        // Two parallel paths accepting "a": path count 2, word count 1.
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        let q2 = n.add_state();
        n.add_start(q0);
        n.add_transition(q0, Sym(0), q1);
        n.add_transition(q0, Sym(0), q2);
        n.set_final(q1, true);
        n.set_final(q2, true);
        assert_eq!(path_counts_exact(&n, 1), vec![0, 2]);
    }

    #[test]
    fn streaming_counter_matches_batch() {
        let n = sigma_star(3).remove_eps();
        let m = COUNT_PRIMES[1];
        let mut c = PathCounter::new(&n, m);
        let batch = path_counts_mod(&sigma_star(3), 6, m);
        for (i, expected) in batch.iter().enumerate() {
            assert_eq!(c.current_count(), *expected, "length {i}");
            c.step();
        }
    }

    #[test]
    fn mulmod_is_modular_multiplication() {
        let m = COUNT_PRIMES[2];
        assert_eq!(mulmod(m - 1, m - 1, m), 1); // (-1)² = 1 (mod m)
        assert_eq!(mulmod(0, 12345, m), 0);
        assert_eq!(mulmod(2, 3, 5), 1);
    }

    #[test]
    fn eps_inputs_are_handled() {
        let mut n = Nfa::new(1);
        let q0 = n.add_state();
        let q1 = n.add_state();
        n.add_start(q0);
        n.add_eps(q0, q1);
        n.add_transition(q1, Sym(0), q1);
        n.set_final(q1, true);
        assert_eq!(path_counts_exact(&n, 3), vec![1, 1, 1, 1]);
    }
}
