//! E5 — streaming sharded corpus execution vs. materialize-then-split.
//!
//! The paper certifies that a split-correct spanner can be evaluated per
//! segment; PR 3's streaming subsystem turns that into a pipeline that
//! never materializes a document: chunks stream through an incremental
//! splitter, segments are batched onto a bounded queue, and a worker
//! pool evaluates them with per-worker dense caches. This benchmark
//! compares that pipeline ([`splitc_exec::CorpusRunner`]) against the
//! batch baseline (materialize every document, then
//! [`splitc_exec::evaluate_many_split`] with the same formal splitter)
//! on a sharded Wikipedia-like corpus, at equal worker counts.
//!
//! Emits the standard `BENCH` rows (`e5_corpus_stream/batch` and
//! `e5_corpus_stream/stream`) and reports streaming run statistics:
//! segments, batches, lazy-DFA cache hit rate, and the peak streaming
//! buffer (which stays near chunk + segment size, not corpus size).

use splitc_bench::{bench_json, engine_arg, ms, scaled, time_best, x, Table};
use splitc_exec::{evaluate_many_split, CorpusRunner, CorpusRunnerConfig, ExecSpanner, SplitFn};
use splitc_spanner::splitter;
use splitc_spanner::vsa::Vsa;
use splitc_textgen::{wiki_corpus_shards, CorpusConfig};
use std::sync::Arc;

/// The workload extractor: maximal-digit-run tokens (`[0-9]+` bounded by
/// non-digits), self-splittable by sentences.
fn number_extractor() -> Vsa {
    splitc_spanner::rgx::Rgx::parse("(.*[^0-9]|)x{[0-9]+}([^0-9].*|)")
        .unwrap()
        .to_vsa()
        .unwrap()
}

fn main() {
    let engine = engine_arg();
    let workers: usize = std::env::var("SC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let docs = 16;
    let per_doc = scaled(1 << 20);
    println!(
        "E5: streaming corpus execution over {docs} shards x {:.1} MiB \
         (engine: {}, workers: {workers})",
        per_doc as f64 / (1 << 20) as f64,
        engine.name()
    );

    let cfg = CorpusConfig {
        target_bytes: per_doc,
        seed: 0x5EED,
        ..Default::default()
    };
    let spanner = ExecSpanner::compile_with(&number_extractor(), engine);
    let s = splitter::sentences();
    let compiled = s.compile();

    // Pre-generate the shard chunk lists so generator cost (RNG + string
    // formatting) is excluded from BOTH timed pipelines: the batch side
    // concatenates them into documents, the streaming side feeds the
    // same chunks without ever concatenating a document.
    let shard_chunks: Vec<Vec<Vec<u8>>> = wiki_corpus_shards(docs, &cfg)
        .into_iter()
        .map(|shard| shard.collect())
        .collect();
    let owned: Vec<Vec<u8>> = shard_chunks.iter().map(|c| c.concat()).collect();
    let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
    let total_bytes: usize = refs.iter().map(|d| d.len()).sum();

    // Batch baseline: formal split of each materialized document, then
    // per-segment tasks on the pool.
    let split: SplitFn = {
        let c = compiled.clone();
        Arc::new(move |doc: &[u8]| c.split(doc))
    };
    let (batch_rels, batch_wall) =
        time_best(2, || evaluate_many_split(&spanner, &split, &refs, workers));
    let batch_tuples: usize = batch_rels.iter().map(|r| r.len()).sum();
    bench_json(
        "e5_corpus_stream/batch",
        engine.name(),
        total_bytes,
        docs as f64,
        batch_wall,
        batch_tuples,
    );

    // Streaming pipeline over the same paragraph chunks — no document
    // is ever materialized on this path.
    let runner = CorpusRunner::new(
        spanner.clone(),
        compiled.clone(),
        CorpusRunnerConfig {
            workers,
            ..Default::default()
        },
    );
    let (stream_result, stream_wall) = time_best(2, || {
        runner.run_streams(
            shard_chunks
                .iter()
                .map(|chunks| chunks.iter().map(Vec::as_slice)),
        )
    });
    let stream_tuples: usize = stream_result.relations.iter().map(|r| r.len()).sum();
    bench_json(
        "e5_corpus_stream/stream",
        engine.name(),
        total_bytes,
        docs as f64,
        stream_wall,
        stream_tuples,
    );

    assert_eq!(
        stream_result.relations, batch_rels,
        "streaming and batch execution must agree"
    );

    let stats = stream_result.stats;
    let mib = total_bytes as f64 / (1 << 20) as f64;
    let mut table = Table::new(
        &format!("E5 — corpus execution at {workers} workers"),
        &["pipeline", "wall ms", "MiB/s", "speedup vs batch"],
    );
    table.row(&[
        "materialize + evaluate_many_split".into(),
        ms(batch_wall),
        format!("{:.1}", mib / batch_wall.as_secs_f64().max(1e-9)),
        x(1.0),
    ]);
    table.row(&[
        "streaming CorpusRunner".into(),
        ms(stream_wall),
        format!("{:.1}", mib / stream_wall.as_secs_f64().max(1e-9)),
        x(batch_wall.as_secs_f64() / stream_wall.as_secs_f64().max(1e-9)),
    ]);
    table.print();
    println!(
        "{} tuples from {} segments in {} batches; lazy-DFA cache hit rate {:.4}; \
         peak stream buffer {} bytes (corpus: {} bytes)",
        stream_tuples,
        stats.segments,
        stats.batches,
        stats.cache.hit_rate(),
        stats.peak_buffered_bytes,
        total_bytes,
    );
}
