//! End-to-end tests against a live in-process server: protocol
//! round-trips, concurrent-client determinism, admission control, and
//! graceful shutdown.

use splitc_server::config::ServerConfig;
use splitc_server::handlers::offline_extract;
use splitc_server::json::Json;
use splitc_server::server::Server;
use splitc_server::Client;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A spanner known to be self-split-correct under `sentences`.
const LOCAL: &str = ".*x{a+}.*";
/// A second split-correct spanner over a different variable.
const LOCAL2: &str = ".*y{b+}.*";
/// A spanner whose matches cross sentence boundaries — certification
/// fails with a witness.
const CROSSING: &str = r".*x{a\.a}.*";

fn spawn(workers: usize, queue_depth: usize) -> Server {
    Server::spawn(ServerConfig {
        port: 0,
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("spawn")
}

fn register_spanner(client: &mut Client, pattern: &str) -> String {
    let (status, body) = client
        .post(
            "/spanners",
            &Json::obj(vec![("pattern", Json::str(pattern))]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    body.get("id").unwrap().as_str().unwrap().to_string()
}

fn register_sentences(client: &mut Client) -> String {
    let (status, body) = client
        .post(
            "/splitters",
            &Json::obj(vec![("builtin", Json::str("sentences"))]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    body.get("id").unwrap().as_str().unwrap().to_string()
}

fn docs_json(docs: &[&str]) -> Json {
    Json::Arr(docs.iter().map(|d| Json::str(*d)).collect())
}

#[test]
fn register_certify_extract_roundtrip_matches_offline() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());

    let spanner = register_spanner(&mut client, LOCAL);
    let splitter = register_sentences(&mut client);

    // Re-registration is a compile-cache hit with the same id.
    let (_, body) = client
        .post("/spanners", &Json::obj(vec![("pattern", Json::str(LOCAL))]))
        .unwrap();
    assert_eq!(body.get("id").unwrap().as_str().unwrap(), spanner);
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        body.get("vars").unwrap().as_arr().unwrap()[0].as_str(),
        Some("x")
    );

    // Cold certification, then a cache hit.
    let certify_req = Json::obj(vec![
        ("spanner", Json::str(spanner.clone())),
        ("splitter", Json::str(splitter.clone())),
    ]);
    let (status, body) = client.post("/certify", &certify_req).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("holds").unwrap().as_bool(), Some(true));
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(false));
    let (_, body) = client.post("/certify", &certify_req).unwrap();
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(true));

    // Extraction matches the offline differential reference
    // byte-for-byte.
    let docs = ["aaa bb. cc aa", "", "no match here.", "a.a.a"];
    let (status, body) = client
        .post(
            "/extract",
            &Json::obj(vec![
                ("spanner", Json::str(spanner.clone())),
                ("splitter", Json::str(splitter.clone())),
                ("docs", docs_json(&docs)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let offline = offline_extract(&Json::obj(vec![
        ("pattern", Json::str(LOCAL)),
        ("splitter_builtin", Json::str("sentences")),
        ("docs", docs_json(&docs)),
    ]))
    .unwrap();
    assert_eq!(
        body.get("relations").unwrap().to_string(),
        offline.get("relations").unwrap().to_string(),
        "server and offline relations must be byte-identical"
    );
    assert_eq!(
        body.get("stats").unwrap().get("docs").unwrap().as_u64(),
        Some(4)
    );

    // /stats reflects the traffic.
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let registry = stats.get("registry").unwrap();
    assert_eq!(registry.get("spanners").unwrap().as_u64(), Some(1));
    assert_eq!(registry.get("splitters").unwrap().as_u64(), Some(1));
    let cert = registry.get("cert_cache").unwrap();
    // Cold certify missed once; warm certify + the checked extract hit.
    assert_eq!(cert.get("misses").unwrap().as_u64(), Some(1));
    assert!(cert.get("hits").unwrap().as_u64().unwrap() >= 2);
    assert!(
        stats
            .get("latency")
            .unwrap()
            .get("extract")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    let pool = stats.get("pool").unwrap();
    assert_eq!(pool.get("workers").unwrap().as_u64(), Some(2));
    assert!(pool.get("submitted").unwrap().as_u64().unwrap() >= 2);
    assert!(
        stats
            .get("antichain")
            .unwrap()
            .get("runs")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
}

#[test]
fn aot_and_dense_engines_are_distinct_entries_with_identical_bytes() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());
    let splitter = register_sentences(&mut client);

    // The same pattern under `aot` and `dense` engines: the compile
    // cache must key on the tier, producing two distinct entries...
    let mut ids = Vec::new();
    for engine in ["aot", "dense"] {
        let (status, body) = client
            .post(
                "/spanners",
                &Json::obj(vec![
                    ("pattern", Json::str(LOCAL)),
                    ("engine", Json::str(engine)),
                ]),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(body.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(body.get("engine").unwrap().as_str(), Some(engine));
        // A small pattern fits the AOT budget: requested tier == chosen.
        assert_eq!(body.get("tier").unwrap().as_str(), Some(engine));
        ids.push(body.get("id").unwrap().as_str().unwrap().to_string());
    }
    assert_ne!(ids[0], ids[1], "tiers must not share compile-cache keys");
    // ...and re-registering under each engine hits its own entry.
    for (engine, id) in [("aot", &ids[0]), ("dense", &ids[1])] {
        let (_, body) = client
            .post(
                "/spanners",
                &Json::obj(vec![
                    ("pattern", Json::str(LOCAL)),
                    ("engine", Json::str(engine)),
                ]),
            )
            .unwrap();
        assert_eq!(body.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(body.get("id").unwrap().as_str().unwrap(), id);
    }

    // /extract bytes are identical under both tiers.
    let docs = ["aaa bb. cc aa", "", "no match here.", "a.a.a"];
    let mut relations = Vec::new();
    for id in &ids {
        let (status, body) = client
            .post(
                "/extract",
                &Json::obj(vec![
                    ("spanner", Json::str(id.clone())),
                    ("splitter", Json::str(splitter.clone())),
                    ("docs", docs_json(&docs)),
                ]),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
        relations.push(body.get("relations").unwrap().to_string());
    }
    assert_eq!(
        relations[0], relations[1],
        "aot and dense tiers must extract byte-identical relations"
    );

    // /stats reports the chosen tier per registry entry.
    let (status, stats) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    let entries = stats
        .get("registry")
        .unwrap()
        .get("entries")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(entries.len(), 2);
    for id in &ids {
        let entry = entries
            .iter()
            .find(|e| e.get("id").unwrap().as_str() == Some(id))
            .expect("registered entry listed in /stats");
        let engine = entry.get("engine").unwrap().as_str().unwrap();
        let tier = entry.get("tier").unwrap().as_str().unwrap();
        assert_eq!(tier, engine, "small pattern: requested tier compiled");
    }
}

#[test]
fn extract_refuses_uncertified_pairs_unless_unchecked() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());
    let spanner = register_spanner(&mut client, CROSSING);
    let splitter = register_sentences(&mut client);

    let request = Json::obj(vec![
        ("spanner", Json::str(spanner.clone())),
        ("splitter", Json::str(splitter.clone())),
        ("docs", docs_json(&["a.a"])),
    ]);
    let (status, body) = client.post("/extract", &request).unwrap();
    assert_eq!(status, 409, "{body}");
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("split-correct"));

    // The certify endpoint reports the failure with a witness.
    let (status, body) = client
        .post(
            "/certify",
            &Json::obj(vec![
                ("spanner", Json::str(spanner.clone())),
                ("splitter", Json::str(splitter.clone())),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("holds").unwrap().as_bool(), Some(false));
    assert_eq!(body.get("verdict").unwrap().as_str(), Some("fails"));
    assert!(body.get("counterexample").is_some());

    // Opting out runs the (semantics-changing) per-segment evaluation.
    let (status, body) = client
        .post(
            "/extract",
            &Json::obj(vec![
                ("spanner", Json::str(spanner)),
                ("splitter", Json::str(splitter)),
                ("docs", docs_json(&["a.a"])),
                ("unchecked", Json::Bool(true)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    // Split evaluation cannot see the boundary-crossing match.
    assert_eq!(
        body.get("relations").unwrap().as_arr().unwrap()[0]
            .as_arr()
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn concurrent_clients_get_deterministic_relations() {
    let server = spawn(4, 32);
    let addr = server.addr();

    // Set up artifacts once.
    let mut setup = Client::new(addr);
    let spanner_a = register_spanner(&mut setup, LOCAL);
    let spanner_b = register_spanner(&mut setup, LOCAL2);
    let splitter = register_sentences(&mut setup);
    let (status, body) = setup
        .post(
            "/fleets",
            &Json::obj(vec![(
                "members",
                Json::Arr(vec![
                    Json::str(spanner_a.clone()),
                    Json::str(spanner_b.clone()),
                ]),
            )]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let fleet = body.get("id").unwrap().as_str().unwrap().to_string();

    let docs = ["aaa bb. cc aa", "bbb. a", "", "ab ba. b.a"];
    let spanner_req = Json::obj(vec![
        ("spanner", Json::str(spanner_a.clone())),
        ("splitter", Json::str(splitter.clone())),
        ("docs", docs_json(&docs)),
    ]);
    let fleet_req = Json::obj(vec![
        ("fleet", Json::str(fleet.clone())),
        ("splitter", Json::str(splitter.clone())),
        ("docs", docs_json(&docs)),
    ]);

    // Reference answers, serialized.
    let (_, reference_spanner) = setup.post("/extract", &spanner_req).unwrap();
    let (_, reference_fleet) = setup.post("/extract", &fleet_req).unwrap();
    let reference_spanner = reference_spanner.get("relations").unwrap().to_string();
    let reference_fleet = reference_fleet.get("relations").unwrap().to_string();
    // The fused fleet pass and the single-spanner corpus pass agree on
    // the shared member — no cross-request scratch aliasing.
    let fleet_member_a: Vec<String> = Json::parse(&reference_fleet)
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|per_doc| per_doc.as_arr().unwrap()[0].to_string())
        .collect();
    let spanner_rel: Vec<String> = Json::parse(&reference_spanner)
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|r| r.to_string())
        .collect();
    assert_eq!(fleet_member_a, spanner_rel);

    // 8 threads × 5 requests each, alternating spanner and fleet
    // extractions on persistent connections.
    let outcomes: Vec<(Vec<String>, Vec<String>)> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                let spanner_req = &spanner_req;
                let fleet_req = &fleet_req;
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    let mut spanner_out = Vec::new();
                    let mut fleet_out = Vec::new();
                    for i in 0..5 {
                        let (req, out) = if (t + i) % 2 == 0 {
                            (spanner_req, &mut spanner_out)
                        } else {
                            (fleet_req, &mut fleet_out)
                        };
                        let (status, body) = client.post("/extract", req).unwrap();
                        assert_eq!(status, 200, "{body}");
                        out.push(body.get("relations").unwrap().to_string());
                    }
                    (spanner_out, fleet_out)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for (spanner_out, fleet_out) in outcomes {
        assert!(spanner_out.iter().all(|r| *r == reference_spanner));
        assert!(fleet_out.iter().all(|r| *r == reference_fleet));
    }
}

#[test]
fn saturated_admission_queue_answers_429() {
    let server = spawn(1, 1);
    let addr = server.addr();

    // Occupy the single worker and the single queue slot with idle
    // connections, then keep connecting until one is refused. The
    // refusal must be a well-formed 429 response.
    let _held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut saw_429 = false;
    let mut extra = Vec::new();
    for _ in 0..20 {
        std::thread::sleep(Duration::from_millis(20));
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let mut buf = Vec::new();
        match conn.read_to_end(&mut buf) {
            Ok(_) if !buf.is_empty() => {
                let text = String::from_utf8_lossy(&buf);
                assert!(
                    text.starts_with("HTTP/1.1 429"),
                    "unexpected response: {text}"
                );
                assert!(text.contains("admission queue full"));
                saw_429 = true;
                break;
            }
            // Admitted into the queue (a slot freed up): hold it idle
            // and try again.
            _ => extra.push(conn),
        }
    }
    assert!(saw_429, "no connection was refused with 429");

    // Releasing the held connections lets new requests through again.
    drop(_held);
    drop(extra);
    let mut client = Client::new(addr);
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));

    // The refusal was counted.
    let (_, stats) = client.get("/stats").unwrap();
    assert!(
        stats
            .get("responses")
            .unwrap()
            .get("rejected_429")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
}

#[test]
fn protocol_errors_are_typed() {
    // Two workers: the keep-alive client pins one for the duration of
    // the test, and the raw socket below needs the other.
    let server = spawn(2, 4);
    let mut client = Client::new(server.addr());

    // Unknown route.
    let (status, _) = client.get("/nope").unwrap();
    assert_eq!(status, 404);
    // Bad JSON body.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /spanners HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        .unwrap();
    let mut buf = [0u8; 256];
    let n = raw.read(&mut buf).unwrap();
    assert!(std::str::from_utf8(&buf[..n])
        .unwrap()
        .starts_with("HTTP/1.1 400"));
    // Unknown ids.
    let (status, _) = client
        .post(
            "/certify",
            &Json::obj(vec![
                ("spanner", Json::str("0000000000000000")),
                ("splitter", Json::str("0000000000000000")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 404);
    // Invalid pattern.
    let (status, body) = client
        .post("/spanners", &Json::obj(vec![("pattern", Json::str("x{"))]))
        .unwrap();
    assert_eq!(status, 400);
    assert!(body.get("error").is_some());
    // Invalid config never spawns.
    assert!(Server::spawn(ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    })
    .is_err());
}

#[test]
fn oversized_bodies_get_413() {
    let server = Server::spawn(ServerConfig {
        port: 0,
        workers: 1,
        queue_depth: 4,
        max_body_bytes: 2048,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /extract HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n")
        .unwrap();
    let mut buf = [0u8; 256];
    let n = raw.read(&mut buf).unwrap();
    assert!(std::str::from_utf8(&buf[..n])
        .unwrap()
        .starts_with("HTTP/1.1 413"));
}

#[test]
fn shutdown_is_graceful_and_idempotent() {
    let mut server = spawn(2, 8);
    let addr = server.addr();
    let mut client = Client::new(addr);
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);

    // Shutdown with an idle keep-alive connection still open: the
    // worker must notice and exit rather than pinning the join.
    server.shutdown();
    server.shutdown(); // idempotent

    // New connections are no longer served.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut conn) => {
            conn.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let _ = conn.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 16];
            matches!(conn.read(&mut buf), Ok(0) | Err(_))
        }
    };
    assert!(refused, "server still serving after shutdown");
}

#[test]
fn responses_are_versioned_and_unknown_fields_are_rejected() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());

    // Every response leads with the protocol version field.
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let pairs = body.as_obj().unwrap();
    assert_eq!(pairs[0].0, "v", "version leads: {body}");
    assert_eq!(body.get("v").unwrap().as_u64(), Some(1));

    // A request may carry "v": 1 explicitly.
    let (status, _) = client
        .post(
            "/spanners",
            &Json::obj(vec![("v", Json::num(1u32)), ("pattern", Json::str(LOCAL))]),
        )
        .unwrap();
    assert_eq!(status, 200);

    // A different version is refused.
    let (status, body) = client
        .post(
            "/spanners",
            &Json::obj(vec![("v", Json::num(2u32)), ("pattern", Json::str(LOCAL))]),
        )
        .unwrap();
    assert_eq!(status, 400);
    let err = body.get("error").unwrap().as_str().unwrap();
    assert!(err.contains("protocol version"), "{err}");
    assert_eq!(body.get("v").unwrap().as_u64(), Some(1), "errors carry v");

    // An unknown field is a typed 400 naming the offending key — a
    // client typo must fail loudly, not be silently ignored.
    let (status, body) = client
        .post(
            "/spanners",
            &Json::obj(vec![
                ("pattern", Json::str(LOCAL)),
                ("engin", Json::str("dense")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400);
    let err = body.get("error").unwrap().as_str().unwrap();
    assert!(err.contains("unknown field"), "{err}");
    assert!(err.contains("engin"), "names the offender: {err}");
}

#[test]
fn corpus_resources_deltas_match_offline_and_hit_the_segment_cache() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());

    let spanner = register_spanner(&mut client, LOCAL);
    let splitter = register_sentences(&mut client);
    let shards = ["aaa bb. cc aa. dd a", "b aa. aaa."];

    // PUT the corpus: split once, maintained thereafter.
    let (status, body) = client
        .put(
            "/corpus/wiki",
            &Json::obj(vec![
                ("splitter", Json::str(splitter.clone())),
                ("shards", docs_json(&shards)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("shards").unwrap().as_u64(), Some(2));
    assert_eq!(body.get("replaced").unwrap().as_bool(), Some(false));
    assert_eq!(body.get("segments").unwrap().as_u64(), Some(5));

    // Extraction by corpus id equals the offline reference
    // byte-for-byte.
    let extract_req = Json::obj(vec![
        ("spanner", Json::str(spanner.clone())),
        ("corpus", Json::str("wiki")),
    ]);
    let offline = |docs: &[&str]| {
        offline_extract(&Json::obj(vec![
            ("pattern", Json::str(LOCAL)),
            ("splitter_builtin", Json::str("sentences")),
            ("docs", docs_json(docs)),
        ]))
        .unwrap()
        .get("relations")
        .unwrap()
        .to_string()
    };
    let (status, body) = client.post("/extract", &extract_req).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body.get("relations").unwrap().to_string(),
        offline(&shards),
        "corpus extraction == offline full re-extraction"
    );
    let cache = body.get("stats").unwrap().get("segment_cache").unwrap();
    let (hits_1, misses_1) = (
        cache.get("hits").unwrap().as_u64().unwrap(),
        cache.get("misses").unwrap().as_u64().unwrap(),
    );
    assert_eq!(misses_1, 5, "cold cache: every segment evaluated");

    // A point edit: only the dirty window is resplit, and the maintained
    // segmentation equals a from-scratch split of the edited text.
    let (status, body) = client
        .post(
            "/corpus/wiki/delta",
            &Json::obj(vec![
                ("op", Json::str("edit")),
                ("shard", Json::num(0u32)),
                ("start", Json::num(11u32)),
                ("end", Json::num(13u32)),
                ("text", Json::str("aaaa")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("segments").unwrap().as_u64(), Some(5));
    let delta = body.get("delta").unwrap();
    assert!(delta.get("resplit_bytes").unwrap().as_u64().unwrap() > 0);

    // Re-extraction: the untouched shard is answered from the handle's
    // per-shard memo without running at all; inside the edited shard
    // the untouched segments hit the shared cache and only the edited
    // segment is re-evaluated.
    let edited = ["aaa bb. cc aaaa. dd a", "b aa. aaa."];
    let (status, body) = client.post("/extract", &extract_req).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body.get("relations").unwrap().to_string(),
        offline(&edited),
        "post-delta extraction == offline on the edited corpus"
    );
    let stats = body.get("stats").unwrap();
    assert_eq!(
        stats.get("docs_reused").unwrap().as_u64(),
        Some(1),
        "the untouched shard never reaches the runner"
    );
    let cache = stats.get("segment_cache").unwrap();
    let (hits_2, misses_2) = (
        cache.get("hits").unwrap().as_u64().unwrap(),
        cache.get("misses").unwrap().as_u64().unwrap(),
    );
    assert_eq!(misses_2, misses_1 + 1, "only the edited segment recomputed");
    assert_eq!(
        hits_2,
        hits_1 + 2,
        "the edited shard's two untouched segments hit"
    );

    // An append delta, verified the same way.
    let (status, _) = client
        .post(
            "/corpus/wiki/delta",
            &Json::obj(vec![
                ("op", Json::str("append")),
                ("shard", Json::num(1u32)),
                ("text", Json::str(" new aa tail.")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200);
    let appended = ["aaa bb. cc aaaa. dd a", "b aa. aaa. new aa tail."];
    let (_, body) = client.post("/extract", &extract_req).unwrap();
    assert_eq!(
        body.get("relations").unwrap().to_string(),
        offline(&appended)
    );

    // The corpus summary reflects the maintained state.
    let (status, body) = client.get("/corpus/wiki").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("shards").unwrap().as_u64(), Some(2));
    assert_eq!(
        body.get("bytes").unwrap().as_u64(),
        Some((appended[0].len() + appended[1].len()) as u64)
    );

    // Guard rails: docs+corpus together, wrong splitter binding, and
    // unknown resources are refused.
    let (status, _) = client
        .post(
            "/extract",
            &Json::obj(vec![
                ("spanner", Json::str(spanner.clone())),
                ("corpus", Json::str("wiki")),
                ("docs", docs_json(&["x"])),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400);
    let (status, body) = client
        .post(
            "/corpus/wiki/delta",
            &Json::obj(vec![
                ("op", Json::str("edit")),
                ("shard", Json::num(0u32)),
                ("start", Json::num(5u32)),
                ("end", Json::num(2u32)),
                ("text", Json::str("x")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 400, "inverted range: {body}");

    // DELETE removes the resource; extraction then 404s.
    let (status, body) = client.delete("/corpus/wiki").unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.get("deleted").unwrap().as_bool(), Some(true));
    let (status, _) = client.post("/extract", &extract_req).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.delete("/corpus/wiki").unwrap();
    assert_eq!(status, 404, "already deleted");
}

#[test]
fn fleet_extraction_by_corpus_matches_offline() {
    let server = spawn(2, 8);
    let mut client = Client::new(server.addr());

    let sp1 = register_spanner(&mut client, LOCAL);
    let sp2 = register_spanner(&mut client, LOCAL2);
    let splitter = register_sentences(&mut client);
    let (status, body) = client
        .post(
            "/fleets",
            &Json::obj(vec![(
                "members",
                Json::Arr(vec![Json::str(sp1), Json::str(sp2)]),
            )]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let fleet = body.get("id").unwrap().as_str().unwrap().to_string();

    let shards = ["aa bb. ab ba.", "bbb a."];
    let (status, _) = client
        .put(
            "/corpus/mixed",
            &Json::obj(vec![
                ("splitter", Json::str(splitter)),
                ("shards", docs_json(&shards)),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200);

    let (status, body) = client
        .post(
            "/extract",
            &Json::obj(vec![
                ("fleet", Json::str(fleet)),
                ("corpus", Json::str("mixed")),
            ]),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let offline = offline_extract(&Json::obj(vec![
        (
            "patterns",
            Json::Arr(vec![Json::str(LOCAL), Json::str(LOCAL2)]),
        ),
        ("splitter_builtin", Json::str("sentences")),
        ("docs", docs_json(&shards)),
    ]))
    .unwrap();
    assert_eq!(
        body.get("relations").unwrap().to_string(),
        offline.get("relations").unwrap().to_string()
    );
}
