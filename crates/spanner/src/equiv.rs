//! Spanner containment and equivalence (paper §4.3).
//!
//! Two spanners are compared as regular languages of **order-normalized
//! valid ref-words** over a shared extended alphabet: `P ⊆ P′` iff the
//! normalized language of `P` is contained in that of `P′`. The generic
//! containment engine is the lazy subset construction of
//! [`splitc_automata::ops::contains`]; on deterministic functional inputs
//! the subsets stay singletons and the check runs in polynomial time —
//! exactly the paper's Theorem 4.3 (NL containment for dfVSA), while for
//! nondeterministic inputs it realizes the PSPACE procedure of Theorem
//! 4.1.
//!
//! On failure, a counterexample `(document, tuple)` is materialized from
//! the witness word (choosing a representative byte per byte class).

use crate::evsa::EVsa;
use crate::ext::ExtAlphabet;
use crate::tuple::SpanTuple;
use crate::vsa::Vsa;
use splitc_automata::antichain;
use splitc_automata::nfa::Nfa;
use splitc_automata::ops::Containment;

/// Containment engine selection for the language-level spanner checks.
///
/// The default routes through the antichain-pruned on-the-fly search
/// ([`splitc_automata::antichain`]); the determinize-first reference is
/// kept for differential testing and for the
/// `t3_certification_scaling` benchmark baseline. Verdicts are always
/// identical; only cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckStrategy {
    /// Lazy subset search with antichain pruning and symbol-class
    /// alphabet collapse (the production path).
    #[default]
    Antichain,
    /// Determinize the right-hand automaton up front (exponential in its
    /// size regardless of the instance), then walk the product.
    DeterminizeFirst,
}

impl CheckStrategy {
    /// Stable lowercase name, as used in `BENCH` row `engine` fields.
    pub fn name(self) -> &'static str {
        match self {
            CheckStrategy::Antichain => "antichain",
            CheckStrategy::DeterminizeFirst => "determinize",
        }
    }

    /// Containment of raw NFAs under this strategy.
    pub(crate) fn contains(self, a: &Nfa, b: &Nfa) -> Containment {
        match self {
            CheckStrategy::Antichain => antichain::contains(a, b),
            CheckStrategy::DeterminizeFirst => antichain::contains_determinize_first(a, b),
        }
    }
}

/// Result of a spanner containment / equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpannerCheck {
    /// The checked property holds.
    Holds,
    /// Witness: `doc` and `tuple` are produced by one side only.
    Counterexample {
        /// A document on which the spanners differ.
        doc: Vec<u8>,
        /// A tuple output by exactly one of the spanners on `doc`.
        tuple: SpanTuple,
        /// `true` when the tuple is produced by the *left* spanner.
        left_has_it: bool,
    },
}

impl SpannerCheck {
    /// Whether the property holds.
    pub fn holds(&self) -> bool {
        matches!(self, SpannerCheck::Holds)
    }
}

/// Compiled form of a spanner ready for language-level comparison.
pub(crate) fn normalize(vsa: &Vsa) -> EVsa {
    let f = if vsa.is_functional() {
        vsa.trim()
    } else {
        vsa.functionalize()
    };
    EVsa::from_functional(&f)
}

/// Decides `P(d) ⊆ P′(d)` for all documents `d`.
///
/// Both spanners must have the same variables (`SVars`); this is an
/// interface error, reported as `Err`.
pub fn spanner_contains(p: &Vsa, p_prime: &Vsa) -> Result<SpannerCheck, String> {
    spanner_contains_with(p, p_prime, CheckStrategy::default())
}

/// [`spanner_contains`] with an explicit containment engine.
pub fn spanner_contains_with(
    p: &Vsa,
    p_prime: &Vsa,
    strategy: CheckStrategy,
) -> Result<SpannerCheck, String> {
    if p.vars().names() != p_prime.vars().names() {
        return Err(format!(
            "containment requires identical variables: {} vs {}",
            p.vars(),
            p_prime.vars()
        ));
    }
    let ea = normalize(p);
    let eb = normalize(p_prime);
    let mut masks = ea.byte_masks();
    masks.extend(eb.byte_masks());
    let ext = ExtAlphabet::from_masks(p.vars().clone(), &masks);
    let na = ea.to_nfa(&ext);
    let nb = eb.to_nfa(&ext);
    Ok(match strategy.contains(&na, &nb) {
        Containment::Contained => SpannerCheck::Holds,
        Containment::Counterexample(w) => decode_counterexample(&ext, &w, true),
    })
}

/// Decides `P = P′` (same output on every document).
pub fn spanner_equivalent(p: &Vsa, p_prime: &Vsa) -> Result<SpannerCheck, String> {
    spanner_equivalent_with(p, p_prime, CheckStrategy::default())
}

/// [`spanner_equivalent`] with an explicit containment engine.
pub fn spanner_equivalent_with(
    p: &Vsa,
    p_prime: &Vsa,
    strategy: CheckStrategy,
) -> Result<SpannerCheck, String> {
    match spanner_contains_with(p, p_prime, strategy)? {
        SpannerCheck::Holds => {}
        cex => return Ok(cex),
    }
    Ok(match spanner_contains_with(p_prime, p, strategy)? {
        SpannerCheck::Holds => SpannerCheck::Holds,
        SpannerCheck::Counterexample { doc, tuple, .. } => SpannerCheck::Counterexample {
            doc,
            tuple,
            left_has_it: false,
        },
    })
}

fn decode_counterexample(
    ext: &ExtAlphabet,
    word: &[splitc_automata::nfa::Sym],
    left_has_it: bool,
) -> SpannerCheck {
    let (doc, rw) = ext.decode_word(word);
    let tuple = rw
        .tuple(ext.vars())
        .expect("normalized language contains only valid ref-words");
    SpannerCheck::Counterexample {
        doc,
        tuple,
        left_has_it,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::rgx::Rgx;

    fn compile(pattern: &str) -> Vsa {
        Rgx::parse(pattern).unwrap().to_vsa().unwrap()
    }

    #[test]
    fn containment_holds() {
        let a = compile("x{a}");
        let b = compile("x{a}|x{b}");
        assert!(spanner_contains(&a, &b).unwrap().holds());
        let r = spanner_contains(&b, &a).unwrap();
        assert!(!r.holds());
    }

    #[test]
    fn counterexample_is_faithful() {
        let a = compile(".*x{ab}.*");
        let b = compile("x{ab}");
        match spanner_contains(&a, &b).unwrap() {
            SpannerCheck::Counterexample {
                doc,
                tuple,
                left_has_it,
            } => {
                assert!(left_has_it);
                let ra = eval(&a, &doc);
                let rb = eval(&b, &doc);
                assert!(ra.contains(&tuple));
                assert!(!rb.contains(&tuple));
            }
            SpannerCheck::Holds => panic!("should not be contained"),
        }
    }

    #[test]
    fn equivalence_of_syntactic_variants() {
        // a|aa vs a+ restricted to length <= 2? Not equal; use exact pair.
        let a = compile("x{a|b}");
        let b = compile("x{[ab]}");
        assert!(spanner_equivalent(&a, &b).unwrap().holds());
        let c = compile("x{a}");
        match spanner_equivalent(&a, &c).unwrap() {
            SpannerCheck::Counterexample { left_has_it, .. } => assert!(left_has_it),
            _ => panic!(),
        }
        // Direction flag: right side has extra output.
        match spanner_equivalent(&c, &a).unwrap() {
            SpannerCheck::Counterexample {
                left_has_it, doc, ..
            } => {
                assert!(!left_has_it);
                assert_eq!(doc, b"b");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn variable_mismatch_is_an_error() {
        let a = compile("x{a}");
        let b = compile("y{a}");
        assert!(spanner_contains(&a, &b).is_err());
    }

    #[test]
    fn operation_order_is_normalized() {
        // x{y{a}} vs y{x{a}}: same spanner (both variables cover "a"),
        // even though raw ref-words differ in operation order.
        let a = compile("x{y{a}}");
        let b = compile("y{x{a}}");
        assert!(spanner_equivalent(&a, &b).unwrap().holds());
    }

    #[test]
    fn boolean_spanners_compare_as_languages() {
        let a = compile("(a|b)*abb");
        let b = compile(".*abb");
        assert!(spanner_contains(&a, &b).unwrap().holds());
        assert!(!spanner_contains(&b, &a).unwrap().holds());
    }

    #[test]
    fn empty_spanner_contained_in_everything() {
        let empty = Vsa::new(crate::vars::VarTable::empty());
        let b = compile("a*");
        assert!(spanner_contains(&empty, &b).unwrap().holds());
    }
}
