//! Evaluation of spanners on documents.
//!
//! [`eval_evsa`] is the production evaluator. It works in two passes:
//!
//! 1. a backward *viability* pass computes, per document position, the
//!    set of states from which acceptance is still reachable (bitset
//!    rows, `O(n · |δ|)` time, `O(n · |Q|/64)` space);
//! 2. an iterative forward search enumerates tuples, entering only viable
//!    states. Once a run reaches a *post* state (all variables closed —
//!    well-defined because states of a functional automaton have unique
//!    variable configurations), the output tuple is already determined and
//!    the run is cut off immediately, so trailing `Σ*` contexts cost O(1)
//!    per match instead of O(document).
//!
//! [`reference_eval`] is an intentionally naive oracle used by the test
//! suite: it enumerates candidate tuples and checks membership of each
//! encoded ref-word in the normalized ref-word language — an independent
//! implementation path against which the fast evaluator is validated.

use crate::evsa::EVsa;
use crate::ext::ExtAlphabet;
use crate::span::Span;
use crate::tuple::{SpanRelation, SpanTuple};
use crate::vars::VarOp;
use crate::vsa::Vsa;
use splitc_automata::nfa::StateId;

/// Evaluates a (not necessarily functional) VSet-automaton on a document.
///
/// Convenience wrapper: functionalizes, converts to block normal form and
/// calls [`eval_evsa`]. For repeated evaluation compile once via
/// [`EVsa::from_functional`].
pub fn eval(vsa: &Vsa, doc: &[u8]) -> SpanRelation {
    let f = if vsa.is_functional() {
        vsa.clone()
    } else {
        vsa.functionalize()
    };
    eval_evsa(&EVsa::from_functional(&f), doc)
}

/// Per-position viable-state membership, abstracted so the forward
/// enumeration runs unchanged over the materialized bitset table
/// ([`Viability`]) or the dense engine's lazily-determinized backward
/// pass ([`crate::dense`]).
pub(crate) trait ViableSource {
    /// Whether acceptance is still reachable from state `q` at document
    /// position `pos`.
    fn viable(&self, pos: usize, q: StateId) -> bool;

    /// Scan-skip acceleration hook: the furthest position `p >= pos`
    /// such that at every position `t` in `pos..p` the *only* viable
    /// move of `q` is a block-free self-loop — the self-loop's mask
    /// contains `doc[t]`, `q` stays viable at `t + 1`, and every other
    /// transition is dead (mask mismatch or non-viable target). Under
    /// that guarantee the forward enumeration may advance a frame from
    /// `pos` to `p` without visiting the intermediate positions: no
    /// variable operations fire (the block is empty), no alternative
    /// branches exist to backtrack into, and finals only matter at
    /// `doc.len()` (`p` never exceeds it).
    ///
    /// The default (no skipping) is correct for every engine; the AOT
    /// tier overrides it with a precompiled `(viability id × byte
    /// class)` table — see `crate::aot`.
    #[inline]
    fn scan_skip(&self, _doc: &[u8], pos: usize, _q: StateId) -> usize {
        pos
    }
}

/// The edges of one state worth trying for one document byte.
///
/// The NFA path tries every outgoing transition and filters by byte mask;
/// the dense path precompiles per-(state, byte-class) index lists, so no
/// mask check is needed at match time.
pub(crate) enum EdgeCandidates<'a> {
    /// Try transition indices `0..n`, checking each byte mask.
    All(usize),
    /// Try exactly these transition indices; masks are pre-filtered.
    List(&'a [u32]),
}

impl EdgeCandidates<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<usize> {
        match self {
            EdgeCandidates::All(n) => (i < *n).then_some(i),
            EdgeCandidates::List(s) => s.get(i).map(|&x| x as usize),
        }
    }

    #[inline]
    fn needs_mask_check(&self) -> bool {
        matches!(self, EdgeCandidates::All(_))
    }
}

/// Supplier of [`EdgeCandidates`] per (state, document byte).
pub(crate) trait EdgeSource {
    /// Candidate transition indices of `q` on byte `b` (indices into
    /// [`EVsa::transitions_from`]`(q)`).
    fn candidates(&self, q: StateId, b: u8) -> EdgeCandidates<'_>;
}

/// The NFA edge source: every transition is a candidate, mask-checked.
pub(crate) struct AllEdges<'a>(pub(crate) &'a EVsa);

impl EdgeSource for AllEdges<'_> {
    #[inline]
    fn candidates(&self, q: StateId, _b: u8) -> EdgeCandidates<'_> {
        EdgeCandidates::All(self.0.transitions_from(q).len())
    }
}

/// Per-position state bitsets.
pub(crate) struct Viability {
    words: usize,
    bits: Vec<u64>,
}

impl Viability {
    #[inline]
    fn get(&self, pos: usize, q: usize) -> bool {
        self.bits[pos * self.words + (q >> 6)] & (1u64 << (q & 63)) != 0
    }
    #[inline]
    fn set(&mut self, pos: usize, q: usize) {
        self.bits[pos * self.words + (q >> 6)] |= 1u64 << (q & 63);
    }
}

impl ViableSource for Viability {
    #[inline]
    fn viable(&self, pos: usize, q: StateId) -> bool {
        self.get(pos, q as usize)
    }
}

pub(crate) fn viability(evsa: &EVsa, doc: &[u8]) -> Viability {
    let n = doc.len();
    let ns = evsa.num_states();
    let words = ns.div_ceil(64);
    let mut v = Viability {
        words,
        bits: vec![0u64; (n + 1) * words],
    };
    for q in 0..ns {
        if !evsa.final_blocks(q as StateId).is_empty() {
            v.set(n, q);
        }
    }
    for i in (0..n).rev() {
        let b = doc[i];
        for q in 0..ns {
            for (_, mask, r) in evsa.transitions_from(q as StateId) {
                if mask.contains(b) && v.get(i + 1, *r as usize) {
                    v.set(i, q);
                    break;
                }
            }
        }
    }
    v
}

/// Computes the *post* flag per state: true when the state's (unique)
/// variable configuration has every variable closed, i.e. the output
/// tuple of any run is already fully determined on entry.
pub(crate) fn post_states(evsa: &EVsa) -> Vec<bool> {
    use std::collections::VecDeque;
    let nv = evsa.vars().len();
    let ns = evsa.num_states();
    // closed_count[q]: number of closed variables at q (unique per state
    // in a functional automaton); usize::MAX = unreached.
    let mut closed = vec![usize::MAX; ns];
    let mut queue = VecDeque::new();
    closed[evsa.start() as usize] = 0;
    queue.push_back(evsa.start());
    while let Some(q) = queue.pop_front() {
        let c = closed[q as usize];
        for (block, _, r) in evsa.transitions_from(q) {
            let closes = block.iter().filter(|op| !op.is_open()).count();
            let nc = c + closes;
            if closed[*r as usize] == usize::MAX {
                closed[*r as usize] = nc;
                queue.push_back(*r);
            }
        }
    }
    closed.iter().map(|&c| c != usize::MAX && c == nv).collect()
}

/// Evaluates a block-normal-form automaton on a document with the NFA
/// engine: a materialized backward viability table plus mask-checked
/// per-transition scanning. The dense engine ([`crate::dense`]) runs the
/// same enumeration over byte-class tables and a lazy-DFA viability pass.
pub fn eval_evsa(evsa: &EVsa, doc: &[u8]) -> SpanRelation {
    if evsa.num_states() == 0 {
        return SpanRelation::empty();
    }
    let viable = viability(evsa, doc);
    let post = post_states(evsa);
    forward_enumerate(evsa, doc, &post, &viable, &AllEdges(evsa))
}

/// One suspended position of the iterative forward search.
#[derive(Debug)]
pub(crate) struct Frame {
    pos: usize,
    state: StateId,
    edge: usize,
    trail_mark: usize,
    emitted_finals: bool,
}

/// Reusable buffers of [`forward_enumerate_scratch`]. The search used to
/// allocate its variable tables, undo trail and frame stack afresh on
/// every call — one set of allocations *per evaluated segment* in the
/// corpus pipelines, where segments are tiny and plentiful. A scratch
/// lives in each [`crate::dense::DenseCache`], so per-worker evaluation
/// reuses the grown buffers across every segment the worker touches.
#[derive(Debug, Default)]
pub(crate) struct EnumScratch {
    opens: Vec<usize>,
    closes: Vec<usize>,
    /// Trail of (var index, is_open, old value) for undo.
    trail: Vec<(usize, bool, usize)>,
    stack: Vec<Frame>,
}

/// The iterative forward search shared by the NFA and dense engines:
/// enumerates tuples, entering only viable states, with the post-state
/// cutoff. `post` must come from [`post_states`]; `viable` and `edges`
/// select the engine. Allocates fresh scratch buffers; hot callers use
/// [`forward_enumerate_scratch`] with a long-lived [`EnumScratch`].
pub(crate) fn forward_enumerate<V: ViableSource, E: EdgeSource>(
    evsa: &EVsa,
    doc: &[u8],
    post: &[bool],
    viable: &V,
    edges: &E,
) -> SpanRelation {
    forward_enumerate_scratch(evsa, doc, post, viable, edges, &mut EnumScratch::default())
}

/// [`forward_enumerate`] over caller-provided scratch buffers, reused
/// across calls (the output tuple vector is the only per-call
/// allocation — it is handed to the returned relation).
pub(crate) fn forward_enumerate_scratch<V: ViableSource, E: EdgeSource>(
    evsa: &EVsa,
    doc: &[u8],
    post: &[bool],
    viable: &V,
    edges: &E,
    scratch: &mut EnumScratch,
) -> SpanRelation {
    let n = doc.len();
    if !viable.viable(0, evsa.start()) {
        return SpanRelation::empty();
    }
    let nv = evsa.vars().len();

    const UNSET: usize = usize::MAX;
    let EnumScratch {
        opens,
        closes,
        trail,
        stack,
    } = scratch;
    opens.clear();
    opens.resize(nv, UNSET);
    closes.clear();
    closes.resize(nv, UNSET);
    trail.clear();
    stack.clear();
    let mut out: Vec<SpanTuple> = Vec::new();

    fn apply_block(
        block: &[VarOp],
        pos: usize,
        opens: &mut [usize],
        closes: &mut [usize],
        trail: &mut Vec<(usize, bool, usize)>,
    ) {
        for op in block {
            match op {
                VarOp::Open(v) => {
                    trail.push((v.index(), true, opens[v.index()]));
                    opens[v.index()] = pos;
                }
                VarOp::Close(v) => {
                    trail.push((v.index(), false, closes[v.index()]));
                    closes[v.index()] = pos;
                }
            }
        }
    }

    fn undo(
        trail: &mut Vec<(usize, bool, usize)>,
        mark: usize,
        opens: &mut [usize],
        closes: &mut [usize],
    ) {
        while trail.len() > mark {
            let (v, was_open, old) = trail.pop().unwrap();
            if was_open {
                opens[v] = old;
            } else {
                closes[v] = old;
            }
        }
    }

    let emit = |opens: &[usize], closes: &[usize], out: &mut Vec<SpanTuple>| {
        debug_assert!(
            (0..nv).all(|i| opens[i] != UNSET && closes[i] != UNSET),
            "functional automaton must assign all variables"
        );
        out.push(SpanTuple::new(
            (0..nv).map(|i| Span::new(opens[i], closes[i])).collect(),
        ));
    };

    // Post-state cutoff at the root (Boolean spanners).
    if post[evsa.start() as usize] {
        emit(opens, closes, &mut out);
        return SpanRelation::from_tuples(out);
    }

    stack.push(Frame {
        pos: 0,
        state: evsa.start(),
        edge: 0,
        trail_mark: 0,
        emitted_finals: false,
    });

    while let Some(frame) = stack.last_mut() {
        let state = frame.state;
        if !frame.emitted_finals && frame.pos < n {
            // First visit of this frame: let the engine fast-forward
            // through positions where the only viable move is `state`'s
            // block-free self-loop (see [`ViableSource::scan_skip`]).
            // Backtracking is unaffected — skipped positions provably
            // have no alternative edges to revisit.
            frame.pos = viable.scan_skip(doc, frame.pos, state);
        }
        let pos = frame.pos;

        if !frame.emitted_finals {
            frame.emitted_finals = true;
            if pos == n {
                for block in evsa.final_blocks(state) {
                    let mark = trail.len();
                    apply_block(block, pos, opens, closes, trail);
                    emit(opens, closes, &mut out);
                    undo(trail, mark, opens, closes);
                }
            }
        }

        if pos == n {
            let mark = frame.trail_mark;
            stack.pop();
            undo(trail, mark, opens, closes);
            continue;
        }

        let b = doc[pos];
        let ts = evsa.transitions_from(state);
        let cand = edges.candidates(state, b);
        let mask_checked = cand.needs_mask_check();
        let mut advanced = false;
        while let Some(idx) = cand.get(frame.edge) {
            frame.edge += 1;
            let (block, mask, r) = &ts[idx];
            if (mask_checked && !mask.contains(b)) || !viable.viable(pos + 1, *r) {
                continue;
            }
            let mark = trail.len();
            // Block operations happen at the boundary *before* the byte.
            apply_block(block, pos, opens, closes, trail);
            if post[*r as usize] {
                // The tuple is fully determined and acceptance is viable:
                // emit and cut the run (trailing context costs O(1)).
                emit(opens, closes, &mut out);
                undo(trail, mark, opens, closes);
                continue;
            }
            stack.push(Frame {
                pos: pos + 1,
                state: *r,
                edge: 0,
                trail_mark: mark,
                emitted_finals: false,
            });
            advanced = true;
            break;
        }
        if !advanced {
            let mark = stack.last().unwrap().trail_mark;
            stack.pop();
            undo(trail, mark, opens, closes);
        }
    }

    SpanRelation::from_tuples(out)
}

/// Boolean acceptance: whether the spanner outputs at least one tuple on
/// `doc`. Runs a forward bitset pass only — `O(n · |δ|)` time, `O(|Q|)`
/// space.
pub fn accepts_evsa(evsa: &EVsa, doc: &[u8]) -> bool {
    let ns = evsa.num_states();
    if ns == 0 {
        return false;
    }
    let mut cur = vec![false; ns];
    // Double-buffered frontier: both vectors are allocated once and
    // swapped per byte (the old code allocated a fresh `next` per
    // position).
    let mut next = vec![false; ns];
    cur[evsa.start() as usize] = true;
    for &b in doc {
        next.fill(false);
        let mut any = false;
        for (q, &live) in cur.iter().enumerate() {
            if !live {
                continue;
            }
            for (_, mask, r) in evsa.transitions_from(q as StateId) {
                if mask.contains(b) {
                    next[*r as usize] = true;
                    any = true;
                }
            }
        }
        if !any {
            return false;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    (0..ns).any(|q| cur[q] && !evsa.final_blocks(q as StateId).is_empty())
}

/// Naive reference evaluator: enumerates all span tuples over `doc` and
/// tests each by ref-word membership in the normalized language of the
/// automaton. Exponential in the number of variables — tests only.
pub fn reference_eval(vsa: &Vsa, doc: &[u8]) -> SpanRelation {
    let f = if vsa.is_functional() {
        vsa.clone()
    } else {
        vsa.functionalize()
    };
    let evsa = EVsa::from_functional(&f);
    let ext = ExtAlphabet::from_masks(evsa.vars().clone(), &evsa.byte_masks());
    let nfa = evsa.to_nfa(&ext);
    let nv = evsa.vars().len();
    let n = doc.len();

    let mut spans = Vec::new();
    for i in 0..=n {
        for j in i..=n {
            spans.push(Span::new(i, j));
        }
    }
    let mut out = Vec::new();
    let mut assignment = vec![Span::new(0, 0); nv];
    enumerate(&mut assignment, 0, &spans, &mut |t: &[Span]| {
        let tuple = SpanTuple::new(t.to_vec());
        let rw = crate::refword::RefWord::from_tuple(doc, &tuple);
        let word: Vec<_> = rw
            .syms()
            .iter()
            .map(|s| match s {
                crate::refword::RefSym::Byte(b) => ext.class_sym_of_byte(*b),
                crate::refword::RefSym::Op(op) => ext.op_sym(*op),
            })
            .collect();
        if nfa.accepts(&word) {
            out.push(tuple);
        }
    });
    SpanRelation::from_tuples(out)
}

fn enumerate(assignment: &mut Vec<Span>, i: usize, spans: &[Span], f: &mut impl FnMut(&[Span])) {
    if i == assignment.len() {
        f(assignment);
        return;
    }
    for &s in spans {
        assignment[i] = s;
        enumerate(assignment, i + 1, spans, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rgx::Rgx;
    use crate::vars::VarId;

    fn compile(pattern: &str) -> Vsa {
        Rgx::parse(pattern).unwrap().to_vsa().unwrap()
    }

    #[test]
    fn eval_simple_capture() {
        let p = compile("x{a+}");
        let rel = eval(&p, b"aaa");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 3));
    }

    #[test]
    fn eval_all_matches() {
        // Σ* x{a} Σ* finds every 'a'.
        let p = compile(".*x{a}.*");
        let rel = eval(&p, b"abca");
        assert_eq!(rel.len(), 2);
        let spans: Vec<Span> = rel.iter().map(|t| t.get(VarId(0))).collect();
        assert!(spans.contains(&Span::new(0, 1)));
        assert!(spans.contains(&Span::new(3, 4)));
    }

    #[test]
    fn eval_empty_document() {
        let p = compile("x{a*}");
        let rel = eval(&p, b"");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 0));
    }

    #[test]
    fn eval_no_match() {
        let p = compile("x{a}");
        assert!(eval(&p, b"b").is_empty());
        assert!(eval(&p, b"aa").is_empty());
    }

    #[test]
    fn eval_two_variables() {
        let p = compile("x{a+}b+y{c+}");
        let rel = eval(&p, b"aabbcc");
        assert_eq!(rel.len(), 1);
        let t = &rel.tuples()[0];
        assert_eq!(t.get(VarId(0)), Span::new(0, 2));
        assert_eq!(t.get(VarId(1)), Span::new(4, 6));
    }

    #[test]
    fn eval_agrees_with_reference() {
        for (pat, doc) in [
            (".*x{a+}.*", b"aabaa".as_slice()),
            ("x{a*}y{b*}", b"aabb"),
            ("(a|b)*x{ab}(a|b)*", b"abab"),
            ("x{(a|b)}y{(a|b)}", b"ab"),
            (".*x{}.*", b"ab"),
        ] {
            let p = compile(pat);
            assert_eq!(eval(&p, doc), reference_eval(&p, doc), "pattern {pat}");
        }
    }

    #[test]
    fn boolean_spanner_yields_unit_tuple() {
        let p = compile("a+b");
        let rel = eval(&p, b"aab");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0], SpanTuple::unit());
        assert!(eval(&p, b"ba").is_empty());
    }

    #[test]
    fn boolean_acceptance() {
        let p = compile("a+b");
        let e = EVsa::from_functional(&p.functionalize());
        assert!(accepts_evsa(&e, b"aab"));
        assert!(!accepts_evsa(&e, b"ab c"));
        assert!(!accepts_evsa(&e, b""));
    }

    #[test]
    fn empty_spans_at_every_position() {
        // Σ* x{} Σ* yields an empty span at every boundary.
        let p = compile(".*x{}.*");
        let rel = eval(&p, b"ab");
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn highly_ambiguous_automaton_dedups() {
        // Union of the same pattern with itself 3 times: every tuple has
        // multiple accepting runs; the relation must stay a set.
        let p1 = compile(".*x{a+}.*");
        let u = p1.union(&p1).unwrap().union(&p1).unwrap();
        assert_eq!(eval(&u, b"aa b aa"), eval(&p1, b"aa b aa"));
    }

    #[test]
    fn non_ascii_bytes_are_first_class() {
        // Byte classes must cover the full 0..=255 range.
        let mut v = Vsa::new(crate::vars::VarTable::new(["x"]).unwrap());
        let q1 = v.add_state();
        let q2 = v.add_state();
        let hi = crate::byteset::ByteSet::range(0x80, 0xFF);
        v.add_transition(
            0,
            crate::vsa::Label::Op(crate::vars::VarOp::Open(VarId(0))),
            q1,
        );
        v.add_transition(q1, crate::vsa::Label::Bytes(hi), q1);
        v.add_transition(
            q1,
            crate::vsa::Label::Op(crate::vars::VarOp::Close(VarId(0))),
            q2,
        );
        v.set_final(q2, true);
        let rel = eval(&v, &[0x80, 0xC3, 0xFF]);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 3));
        assert!(eval(&v, &[0x80, 0x20]).is_empty(), "0x20 not in the class");
        assert!(eval(&v, &[0x00]).is_empty());
    }

    #[test]
    fn long_document_runs_fast_and_iteratively() {
        // The evaluator must be iterative (no recursion on document
        // length) and output-sensitive (post-state cutoff): 1 MiB of 'a'
        // with an all-boundaries extractor.
        let doc = vec![b'a'; 1 << 20];
        let p = compile("a*x{b*}a*");
        let rel = eval(&p, &doc);
        assert_eq!(rel.len(), doc.len() + 1);
    }
}
