//! Reasoning about splitters for query planning (paper §6).
//!
//! * [`commute`] — do two splitters commute, possibly relative to a
//!   regular document context `R` (Theorem 6.2, PSPACE-complete)?
//! * [`subsumes`] — does `S` subsume `S′` w.r.t. `R`, i.e. can `S′` be
//!   evaluated inside the chunks of `S` without changing `S`'s output
//!   (Theorem 6.3, PSPACE-complete)?
//! * Transitivity facts (Observation 6.4, Lemma 6.5) are theorems, not
//!   procedures; the test suite reproduces the paper's counterexample
//!   and validates the positive transfer on concrete instances.
//!
//! All checks reduce to (filtered) spanner equivalence through the
//! composition construction of Lemma 6.1 ([`splitc_spanner::splitter::compose_splitter`]).

use crate::error::CertError;
use crate::split_correctness::{CounterExample, Verdict};
use crate::util;
use splitc_automata::nfa::StateId;
use splitc_automata::ops::{self, Containment};
use splitc_spanner::ext::ExtAlphabet;
use splitc_spanner::splitter::{compose_splitter, Splitter};
use splitc_spanner::vars::{VarOp, VarTable};
use splitc_spanner::vsa::Vsa;

/// Decides whether two splitters commute w.r.t. an optional regular
/// context: `(S₁ ∘ S₂)(d) = (S₂ ∘ S₁)(d)` for all `d ∈ L(R)` (all
/// documents when `context` is `None`). Theorem 6.2.
/// ```
/// use splitc_core::reasoning::commute;
/// use splitc_spanner::splitter;
///
/// // Splitting by sentences inside lines equals lines inside sentences.
/// let v = commute(&splitter::sentences(), &splitter::lines(), None).unwrap();
/// assert!(v.holds());
/// ```
pub fn commute(s1: &Splitter, s2: &Splitter, context: Option<&Vsa>) -> Result<Verdict, CertError> {
    let c12 = compose_splitter(s1, s2);
    let c21 = compose_splitter(s2, s1);
    filtered_splitter_equiv(&c12, &c21, context, "splitters do not commute")
}

/// Decides whether `S` subsumes `S′` w.r.t. an optional regular context:
/// `S(d) = (S′ ∘ S)(d)` for all `d ∈ L(R)`. Theorem 6.3. When it holds,
/// a plan may split by `S` first and run `S′` per chunk for free.
pub fn subsumes(
    s: &Splitter,
    s_prime: &Splitter,
    context: Option<&Vsa>,
) -> Result<Verdict, CertError> {
    let composed = compose_splitter(s_prime, s);
    filtered_splitter_equiv(s, &composed, context, "no subsumption")
}

/// Splitter-level equivalence restricted to documents in a regular
/// language (the splitters' variables are aligned by renaming).
fn filtered_splitter_equiv(
    a: &Splitter,
    b: &Splitter,
    context: Option<&Vsa>,
    reason: &str,
) -> Result<Verdict, CertError> {
    if let Some(ctx) = context {
        if !ctx.vars().is_empty() {
            return Err(CertError::Invalid(
                "context must be a variable-free regular language".into(),
            ));
        }
    }
    // Align variable names.
    let table = VarTable::new(["x"]).expect("single name");
    let av = a.vsa().replace_var_table(table.clone())?;
    let bv = b.vsa().replace_var_table(table.clone())?;

    let mut masks = av.byte_masks();
    masks.extend(bv.byte_masks());
    if let Some(ctx) = context {
        masks.extend(ctx.byte_masks());
    }
    let ext = ExtAlphabet::from_masks(table.clone(), &masks);

    let ea = util::normal_evsa(&av);
    let eb = util::normal_evsa(&bv);
    let na = util::lifted_nfa(&ea, &ext, &[]).remove_eps();
    let nb = util::lifted_nfa(&eb, &ext, &[]).remove_eps();

    let (na, nb) = match context {
        None => (na, nb),
        Some(ctx) => {
            // Filter automaton: ctx's byte language with self-loops on
            // the splitter variable's operations.
            let mut f = util::raw_ext_nfa(ctx, &ext);
            let x = table.lookup("x").expect("x");
            for q in 0..f.num_states() as StateId {
                f.add_transition(q, ext.op_sym(VarOp::Open(x)), q);
                f.add_transition(q, ext.op_sym(VarOp::Close(x)), q);
            }
            let f = f.remove_eps();
            (na.intersect(&f), nb.intersect(&f))
        }
    };

    let decode = |word: &[splitc_automata::nfa::Sym], left: bool| -> Verdict {
        let (doc, rw) = ext.decode_word(word);
        let tuple = rw.tuple(&table).expect("valid by construction");
        Verdict::Fails(CounterExample {
            doc,
            tuple,
            split: None,
            left_has_it: left,
            reason: reason.to_string(),
        })
    };
    if let Containment::Counterexample(w) = ops::contains(&na, &nb) {
        return Ok(decode(&w, true));
    }
    if let Containment::Counterexample(w) = ops::contains(&nb, &na) {
        return Ok(decode(&w, false));
    }
    Ok(Verdict::Holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn lang(pattern: &str) -> Vsa {
        Rgx::parse(pattern).unwrap().to_lang_vsa().unwrap()
    }

    #[test]
    fn pages_and_paragraphs_commute() {
        // Sentences (by '.') and lines (by '\n') commute: splitting by
        // one inside the other yields maximal runs free of both bytes.
        let s1 = splitter::sentences();
        let s2 = splitter::lines();
        assert!(commute(&s1, &s2, None).unwrap().holds());
    }

    #[test]
    fn commutativity_counterexample_from_theorem_6_2() {
        // S1 = #x{Σ0*} + x{#E}, S2 = x{#Σ0*} + #x{E} with E ⊊ Σ0* — the
        // paper's hardness gadget — do not commute. Take E = a.
        let s1 = Splitter::parse("#(x{[ab]*})|x{#a}").unwrap();
        let s2 = Splitter::parse("x{#[ab]*}|#(x{a})").unwrap();
        match commute(&s1, &s2, None).unwrap() {
            Verdict::Fails(cex) => {
                assert!(cex.doc.starts_with(b"#"));
            }
            Verdict::Holds => panic!("gadget splitters must not commute"),
        }
    }

    #[test]
    fn commute_with_context() {
        // The Theorem 6.2 gadget splitters disagree only on documents
        // containing '#': they commute w.r.t. the context (a|b)*.
        let s1 = Splitter::parse("#(x{[ab]*})|x{#a}").unwrap();
        let s2 = Splitter::parse("x{#[ab]*}|#(x{a})").unwrap();
        assert!(!commute(&s1, &s2, None).unwrap().holds());
        let ctx = lang("[ab]*");
        assert!(commute(&s1, &s2, Some(&ctx)).unwrap().holds());
    }

    #[test]
    fn whole_document_subsumes_everything_universal() {
        // Paper Thm 6.3 gadget: S = x{Σ*} subsumes S' = x{E} iff
        // L(E) = Σ*. With E = Σ*: subsumption holds.
        let s = splitter::whole_document();
        let s_prime = Splitter::parse("x{.*}").unwrap();
        assert!(subsumes(&s, &s_prime, None).unwrap().holds());
        // With E = a*: fails (documents containing non-'a').
        let s_a = Splitter::parse("x{a*}").unwrap();
        match subsumes(&s, &s_a, None).unwrap() {
            Verdict::Fails(cex) => assert!(!cex.doc.iter().all(|&b| b == b'a')),
            Verdict::Holds => panic!("a* is not universal"),
        }
    }

    #[test]
    fn sentences_subsume_themselves() {
        let s = splitter::sentences();
        // Splitting a sentence chunk by sentences returns the chunk:
        // chunks contain no '.', so the sentence splitter returns the
        // whole chunk.
        assert!(subsumes(&s, &s, None).unwrap().holds());
    }

    #[test]
    fn lines_within_paragraphs() {
        // Splitting a paragraph by lines equals splitting the document
        // by lines *restricted to docs that are single paragraphs*? In
        // general: paragraphs subsume lines — applying the line splitter
        // inside paragraph chunks produces exactly the paragraphs again?
        // No: it produces lines, not paragraphs. Subsumption asks
        // S = S' ∘ S, so lines ∘ paragraphs = lines iff every line of
        // the doc appears as a line of some paragraph — true except for
        // empty-ish boundary cases; verify the verdict is consistent
        // with a brute-force sample either way.
        let par = splitter::paragraphs();
        let lin = splitter::lines();
        let verdict = subsumes(&lin, &par, None).unwrap();
        let composed = compose_splitter(&par, &lin);
        for doc in [b"a\nb\n\nc".as_slice(), b"a", b"\n\n", b"a\n\nb"] {
            let lhs = lin.split(doc);
            let rhs = composed.split(doc);
            if verdict.holds() {
                assert_eq!(lhs, rhs, "doc {:?}", String::from_utf8_lossy(doc));
            }
        }
    }

    #[test]
    fn observation_6_4_counterexample() {
        // P = Σ*·y{a}·Σ*, PS = y{a}, S1 = Σ*·x{Σ}·Σ*,
        // S2 = Σ*·x{ΣΣ}·Σ* + x{Σ}: P = PS ∘ S1 and S1 = S1 ∘ S2 but
        // P ≠ PS ∘ S2.
        let p = Rgx::parse(".*y{a}.*").unwrap().to_vsa().unwrap();
        let ps = Rgx::parse("y{a}").unwrap().to_vsa().unwrap();
        let s1 = Splitter::parse(".*x{.}.*").unwrap();
        let s2 = Splitter::parse(".*x{..}.*|x{.}").unwrap();
        assert!(crate::split_correct(&p, &ps, &s1).unwrap().holds());
        // S1 = S1 ∘ S2 (every single char is inside some window of S2).
        let c = compose_splitter(&s1, &s2);
        assert!(filtered_splitter_equiv(&s1, &c, None, "S1 != S1∘S2")
            .unwrap()
            .holds());
        // But P != PS ∘ S2.
        assert!(!crate::split_correct(&p, &ps, &s2).unwrap().holds());
    }

    #[test]
    fn lemma_6_5_transfer_on_instances() {
        // P = P ∘ S1 and S1 = S1 ∘ S2 imply P = P ∘ S2. Instance:
        // P = all a-runs, S1 = sentences, S2 = whole document.
        let p = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
        let s1 = splitter::sentences();
        let s2 = splitter::whole_document();
        assert!(crate::self_splittable(&p, &s1).unwrap().holds());
        let c = compose_splitter(&s1, &s2);
        assert!(filtered_splitter_equiv(&s1, &c, None, "premise")
            .unwrap()
            .holds());
        assert!(crate::self_splittable(&p, &s2).unwrap().holds());
    }
}
