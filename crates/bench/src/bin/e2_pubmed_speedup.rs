//! E2 — paper §1: the same split-then-distribute pipeline on 279 MB of
//! PubMed sentences gave a 1.9x speedup (5 cores).
//!
//! Reproduction: number-heavy PubMed-like corpus, 2-gram extraction,
//! simulated 5-worker pool (see E1 / `exec::simulate`).

use splitc_bench::{bench_json, engine_arg, ms, scaled, time, time_best, x, Table};
use splitc_exec::{simulate_split, ExecSpanner, SplitFn};
use splitc_spanner::splitter::native;
use splitc_textgen::{pubmed_corpus, spanners};
use std::sync::Arc;

fn main() {
    let engine = engine_arg();
    let bytes = scaled(8 << 20);
    println!(
        "E2: N-gram extraction over a {:.1} MiB PubMed-like corpus (engine: {})",
        bytes as f64 / (1 << 20) as f64,
        engine.name()
    );
    let (doc, gen_t) = time(|| pubmed_corpus(bytes, 0xBEEF));
    println!(
        "corpus generated in {} ms ({} sentences)",
        ms(gen_t),
        native::sentences(&doc).len()
    );

    let p = spanners::ngram_extractor(2);
    let spanner = ExecSpanner::compile_with(&p, engine);
    let split: SplitFn = Arc::new(native::sentences);
    let report = simulate_split(&spanner, &split, &doc, &[1, 2, 5]);
    let (rel, seq_wall) = time_best(2, || spanner.eval(&doc));
    bench_json(
        "e2_pubmed_speedup/N=2",
        engine.name(),
        doc.len(),
        2.0,
        seq_wall,
        rel.len(),
    );

    let mut table = Table::new(
        "E2 — PubMed-like corpus, 2-gram extraction",
        &["workers", "makespan ms", "speedup", "paper"],
    );
    for (w, m) in &report.makespans {
        table.row(&[
            w.to_string(),
            ms(*m),
            x(report.speedup(*w)),
            if *w == 5 {
                "1.90x".into()
            } else {
                String::new()
            },
        ]);
    }
    table.print();
    println!(
        "sequential baseline: {} ms over {} tasks",
        ms(report.sequential),
        report.tasks
    );
}
