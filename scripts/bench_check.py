#!/usr/bin/env python3
"""Sanity-checks a BENCH JSON-lines file produced by bench_smoke.sh.

Verifies the stable row schema (including the `scale` problem-size
field), that the dense engine beats the NFA engine by the required
factor on at least one e-series benchmark, that — when e5 rows are
present — streaming corpus execution (`e5_corpus_stream/stream`) is not
slower than the materialize-then-split baseline
(`e5_corpus_stream/batch`) beyond the allowed ratio, that — when
t3_certification_scaling rows are present — the antichain certification
engine beats the determinize-first reference by the required factor at
the largest needle `scale` point (the family whose determinization
grows as 2^k; small points are overhead-dominated by design, the gate
is the asymptotic one), that — when e6 rows are present — the
prefiltered engine beats the dense engine by the required factor on the
sparse collection workload, that — when e7 rows are present — the
fused fleet engine beats sequential per-spanner evaluation by the
required factor at the 50-member sparse point (`e7_fleet/sparse`,
`scale` 50 — the catalog size where one shared scan pass amortizes
across enough members to matter, judged on the match-sparse flavor
where pruning is the point), and that — when e8 rows are present — the
server's warm (cached) registration+certification pass beats the cold
pass by the required factor at the largest fleet size
(`e8_server/registration`, engines `cold`/`warm`) and the concurrent
`/extract` burst sustains the required requests/second floor
(`e8_server/throughput`, `scale` = request count).

Scaling gates key on each row's `scale` field, not on bench-name
suffixes or row positions.

Importable: `run(argv)` takes a full argv (program name included) and
returns the process exit code; `scripts/test_bench_check.py` drives it
directly.

Usage: scripts/bench_check.py BENCH_pr.json [min-speedup] \
           [min-stream-ratio] [min-cert-speedup] [min-prefilter-speedup] \
           [min-fleet-speedup] [min-server-cert-speedup] [min-req-per-s]
"""
import json
import sys

REQUIRED = {
    "bench": str,
    "engine": str,
    "bytes": int,
    "scale": (int, float),
    "wall_ms": (int, float),
    "tuples": int,
}


def load_rows(path):
    """Parses and schema-checks the JSON-lines file. Returns (rows,
    error-message-or-None)."""
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            for key, ty in REQUIRED.items():
                if key not in row or not isinstance(row[key], ty):
                    return [], f"schema violation in row {row!r}: field {key}"
            rows.append(row)
    if not rows:
        return [], f"{path} is empty"
    return rows, None


def run(argv) -> int:
    path = argv[1] if len(argv) > 1 else "BENCH_pr.json"
    min_speedup = float(argv[2]) if len(argv) > 2 else 1.5
    min_stream_ratio = float(argv[3]) if len(argv) > 3 else 0.0
    min_cert_speedup = float(argv[4]) if len(argv) > 4 else 0.0
    min_prefilter_speedup = float(argv[5]) if len(argv) > 5 else 0.0
    min_fleet_speedup = float(argv[6]) if len(argv) > 6 else 0.0
    min_server_cert_speedup = float(argv[7]) if len(argv) > 7 else 0.0
    min_req_per_s = float(argv[8]) if len(argv) > 8 else 0.0

    rows, err = load_rows(path)
    if err:
        print(err)
        return 1

    by_bench = {}
    for row in rows:
        by_bench.setdefault(row["bench"], {})[row["engine"]] = row["wall_ms"]
    best = 0.0
    best_bench = None
    for bench, engines in sorted(by_bench.items()):
        if not bench.startswith("e") or "nfa" not in engines or "dense" not in engines:
            continue
        speedup = engines["nfa"] / max(engines["dense"], 1e-9)
        print(f"{bench}: nfa {engines['nfa']:.2f} ms, dense {engines['dense']:.2f} ms "
              f"-> {speedup:.2f}x")
        if speedup > best:
            best, best_bench = speedup, bench
    if best_bench is None:
        print("no e-series benchmark has both engines")
        return 1
    if best < min_speedup:
        print(f"best dense speedup {best:.2f}x on {best_bench} "
              f"is below the required {min_speedup:.2f}x")
        return 1

    # Streaming-vs-batch corpus execution (per engine, when present).
    stream = {r["engine"]: r["wall_ms"] for r in rows
              if r["bench"] == "e5_corpus_stream/stream"}
    batch = {r["engine"]: r["wall_ms"] for r in rows
             if r["bench"] == "e5_corpus_stream/batch"}
    for engine in sorted(set(stream) & set(batch)):
        ratio = batch[engine] / max(stream[engine], 1e-9)
        print(f"e5_corpus_stream ({engine}): batch {batch[engine]:.2f} ms, "
              f"stream {stream[engine]:.2f} ms -> {ratio:.2f}x")
        if ratio < min_stream_ratio:
            print(f"streaming ratio {ratio:.2f}x ({engine}) is below the "
                  f"required {min_stream_ratio:.2f}x")
            return 1

    # Certification engine: antichain vs determinize-first on the gated
    # needle family, judged at the largest `scale` point present.
    cert = {}
    for row in rows:
        if row["bench"].startswith("t3_certification_scaling/needle"):
            cert.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = [k for k, engines in cert.items()
             if "antichain" in engines and "determinize" in engines]
    if gated:
        k = max(gated)
        anti = cert[k]["antichain"]
        det = cert[k]["determinize"]
        speedup = det / max(anti, 1e-9)
        print(f"t3_certification_scaling (needle scale={k:g}): determinize "
              f"{det:.2f} ms, antichain {anti:.2f} ms -> {speedup:.2f}x")
        if speedup < min_cert_speedup:
            print(f"antichain certification speedup {speedup:.2f}x at needle "
                  f"scale={k:g} is below the required {min_cert_speedup:.2f}x")
            return 1
    elif min_cert_speedup > 0.0:
        print("certification gate requested but no needle rows with both engines")
        return 1

    # Prefiltered engine vs dense on the sparse collection workload
    # (the `e6_sparse_prefilter` rows without a /variant suffix; the
    # /stream rows are pipeline-dominated and reported, not gated).
    sparse = by_bench.get("e6_sparse_prefilter", {})
    if "dense" in sparse and "prefilter" in sparse:
        speedup = sparse["dense"] / max(sparse["prefilter"], 1e-9)
        print(f"e6_sparse_prefilter: dense {sparse['dense']:.2f} ms, "
              f"prefilter {sparse['prefilter']:.2f} ms -> {speedup:.2f}x")
        if speedup < min_prefilter_speedup:
            print(f"prefilter speedup {speedup:.2f}x is below the required "
                  f"{min_prefilter_speedup:.2f}x")
            return 1
    elif min_prefilter_speedup > 0.0:
        print("prefilter gate requested but no e6 rows with both engines")
        return 1

    # Fused fleet vs sequential per-spanner passes, judged at the
    # 50-member sparse point (the gated catalog size; other sizes and
    # the dense flavor are reported, not gated).
    fleet = {}
    for row in rows:
        if row["bench"] == "e7_fleet/sparse":
            fleet.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = {k: e for k, e in fleet.items()
             if "fused" in e and "sequential" in e}
    if 50 in gated:
        seq = gated[50]["sequential"]
        fused = gated[50]["fused"]
        speedup = seq / max(fused, 1e-9)
        print(f"e7_fleet/sparse (scale=50): sequential {seq:.2f} ms, "
              f"fused {fused:.2f} ms -> {speedup:.2f}x")
        if speedup < min_fleet_speedup:
            print(f"fused fleet speedup {speedup:.2f}x at 50 members is "
                  f"below the required {min_fleet_speedup:.2f}x")
            return 1
    elif min_fleet_speedup > 0.0:
        print("fleet gate requested but no e7_fleet/sparse rows at scale 50")
        return 1

    # Server certification cache: warm (cached) registration+certify
    # pass vs the cold first pass, judged at the largest fleet size.
    server = {}
    for row in rows:
        if row["bench"] == "e8_server/registration":
            server.setdefault(row["scale"], {})[row["engine"]] = row["wall_ms"]
    gated = [k for k, e in server.items() if "cold" in e and "warm" in e]
    if gated:
        k = max(gated)
        cold = server[k]["cold"]
        warm = server[k]["warm"]
        speedup = cold / max(warm, 1e-9)
        print(f"e8_server/registration (fleet={k:g}): cold {cold:.2f} ms, "
              f"warm {warm:.2f} ms -> {speedup:.2f}x")
        if speedup < min_server_cert_speedup:
            print(f"server cert-cache speedup {speedup:.2f}x at fleet "
                  f"size {k:g} is below the required "
                  f"{min_server_cert_speedup:.2f}x")
            return 1
    elif min_server_cert_speedup > 0.0:
        print("server cert-cache gate requested but no e8_server/registration "
              "rows with both cold and warm passes")
        return 1

    # Server /extract throughput floor: `scale` carries the request
    # count of the burst, so req/s = scale / wall_s.
    throughput = [r for r in rows if r["bench"] == "e8_server/throughput"]
    if throughput:
        for row in throughput:
            rps = row["scale"] / max(row["wall_ms"] / 1e3, 1e-9)
            print(f"e8_server/throughput ({row['engine']}): {row['scale']:g} "
                  f"requests in {row['wall_ms']:.2f} ms -> {rps:.1f} req/s")
            if rps < min_req_per_s:
                print(f"server throughput {rps:.1f} req/s is below the "
                      f"required {min_req_per_s:.1f} req/s")
                return 1
    elif min_req_per_s > 0.0:
        print("server throughput gate requested but no e8_server/throughput rows")
        return 1

    print(f"OK: {len(rows)} rows; best dense speedup {best:.2f}x on {best_bench}")
    return 0


def main() -> int:
    return run(sys.argv)


if __name__ == "__main__":
    sys.exit(main())
