//! Content-addressed per-segment result cache.
//!
//! The paper's incremental-maintenance payoff (§1) rests on one fact:
//! once `P = P_S ∘ S` is certified, the relation of a segment is a pure
//! function of the segment **bytes** — so results can be cached by
//! content and reused across edits, re-queries, and even across
//! documents that share segments. [`SegmentCache`] is the shared,
//! bounded form of that cache:
//!
//! * **Keyed by `(hash(segment bytes), spanner id)`** with the stored
//!   content verified on every hit, so hash collisions cost a re-check,
//!   never a wrong answer.
//! * **Sharded**: the key hash picks one of 16 independently
//!   locked shards, so the worker pools of [`crate::CorpusRunner`] and
//!   [`crate::FleetRunner`] probe it concurrently without serializing on
//!   one mutex.
//! * **Bounded** with FIFO eviction per shard: the cache holds at most
//!   its configured capacity of entries; inserting into a full shard
//!   evicts the oldest entry. Eviction affects *speed only* — an evicted
//!   segment is simply recomputed on the next miss (the regression and
//!   property suites drive a capacity-2 cache through edit scripts and
//!   assert byte-identical results).
//!
//! Because a hit returns exactly the relation the engine would have
//! computed, plugging the cache under a runner's worker loop preserves
//! the deterministic merge: `SpanRelation::from_tuples` sees the same
//! tuples whether they came from an engine dispatch or from cache.

use parking_lot::Mutex;
use splitc_spanner::tuple::SpanRelation;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards. A power of two so the shard
/// index is a mask of the key hash; 16 is comfortably above the worker
/// counts the runners are configured with.
const NUM_SHARDS: usize = 16;

/// Hit/miss/eviction counters of a [`SegmentCache`]. Counters are
/// cumulative over the cache's lifetime (shared caches aggregate over
/// every runner and request probing them) and are read with
/// [`SegmentCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegCacheStats {
    /// Lookups answered by a stored relation (content-verified).
    pub hits: u64,
    /// Lookups that evaluated the spanner and populated the cache.
    pub misses: u64,
    /// Entries evicted to keep the cache within its capacity.
    pub evictions: u64,
}

impl SegCacheStats {
    /// Fraction of lookups answered from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached segment result. The content is kept for collision
/// verification: identical content implies identical relation (spanners
/// are functions of the segment bytes), differing content with an equal
/// hash falls through to a recompute.
#[derive(Debug)]
struct Entry {
    spanner: u64,
    content: Vec<u8>,
    /// Shared so a hit hands the relation back without cloning its
    /// tuples — the hot re-query path shifts straight out of the
    /// cached relation.
    relation: Arc<SpanRelation>,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, Entry>,
    /// Keys in insertion order; the front is the eviction victim.
    /// Every insert pushes exactly one key and every evicted key is
    /// removed from the map, so `fifo.len() == map.len()` always.
    fifo: VecDeque<u64>,
}

/// A bounded, sharded, content-addressed cache of per-segment
/// [`SpanRelation`]s, shared across workers, runners, and requests.
/// See the [module docs](self) for the key and eviction contract;
/// construct with [`SegmentCache::new`] and share via `Arc`.
#[derive(Debug)]
pub struct SegmentCache {
    shards: Vec<Mutex<Shard>>,
    /// Maximum entries per shard (total capacity / NUM_SHARDS, ≥ 1).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SegmentCache {
    /// Creates a cache bounded at `capacity` entries (normalized up so
    /// every shard holds at least one entry).
    pub fn new(capacity: usize) -> SegmentCache {
        SegmentCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard: (capacity.max(NUM_SHARDS)).div_ceil(NUM_SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard * NUM_SHARDS
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (statistics are kept; see
    /// [`SegmentCache::reset_stats`]).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut s = s.lock();
            s.map.clear();
            s.fifo.clear();
        }
    }

    /// Resets the hit/miss/eviction counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SegCacheStats {
        SegCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Looks the segment up by content, evaluating (and caching) on a
    /// miss. Returns the (shared) relation plus whether it was a hit —
    /// a hit is an `Arc` clone, never a tuple copy. The evaluation runs
    /// outside the shard lock, so concurrent workers never serialize on
    /// an engine dispatch; two racing misses on the same key both
    /// evaluate (identical results) and the second insert replaces the
    /// first.
    pub fn get_or_eval(
        &self,
        spanner_id: u64,
        bytes: &[u8],
        eval: impl FnOnce() -> SpanRelation,
    ) -> (Arc<SpanRelation>, bool) {
        let key = key_of(spanner_id, bytes);
        let shard = &self.shards[(key as usize) & (NUM_SHARDS - 1)];
        {
            let guard = shard.lock();
            if let Some(e) = guard.map.get(&key) {
                if e.spanner == spanner_id && e.content == bytes {
                    let rel = e.relation.clone();
                    drop(guard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (rel, true);
                }
            }
        }
        let rel = Arc::new(eval());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut guard = shard.lock();
        if guard
            .map
            .insert(
                key,
                Entry {
                    spanner: spanner_id,
                    content: bytes.to_vec(),
                    relation: rel.clone(),
                },
            )
            .is_none()
        {
            guard.fifo.push_back(key);
        }
        while guard.map.len() > self.per_shard {
            let victim = guard.fifo.pop_front().expect("fifo tracks the map");
            guard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        (rel, false)
    }
}

/// The cache key: a multiplicative FNV-1a variant over 8-byte lanes
/// (byte-at-a-time hashing is the single hottest instruction stream of
/// the all-hits re-query path), with the spanner id folded in so the
/// same segment under two spanners occupies two entries, the length
/// folded in so lane-padding cannot alias, and a final avalanche. A
/// colliding key costs a content re-check, never a wrong answer.
fn key_of(spanner_id: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100000001b3;
    let mut h = 0xcbf29ce484222325u64 ^ spanner_id.wrapping_mul(PRIME);
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        let w = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let mut tail = bytes.len() as u64;
    for &b in lanes.remainder() {
        tail = (tail << 8) | b as u64;
    }
    h = (h ^ tail).wrapping_mul(PRIME);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::tuple::SpanTuple;
    use splitc_spanner::Span;

    fn rel(n: usize) -> SpanRelation {
        SpanRelation::from_tuples(
            (0..n)
                .map(|i| SpanTuple::new(vec![Span::new(i, i + 1)]))
                .collect(),
        )
    }

    #[test]
    fn hit_returns_cached_relation() {
        let c = SegmentCache::new(64);
        let (r1, hit1) = c.get_or_eval(7, b"abc", || rel(2));
        assert!(!hit1);
        let (r2, hit2) = c.get_or_eval(7, b"abc", || unreachable!("must hit"));
        assert!(hit2);
        assert_eq!(r1, r2);
        assert_eq!(
            c.stats(),
            SegCacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn spanner_id_separates_entries() {
        let c = SegmentCache::new(64);
        let (_, h1) = c.get_or_eval(1, b"abc", || rel(1));
        let (_, h2) = c.get_or_eval(2, b"abc", || rel(2));
        assert!(!h1 && !h2, "different spanners never share entries");
        let (r, hit) = c.get_or_eval(2, b"abc", || unreachable!());
        assert!(hit);
        assert_eq!(*r, rel(2));
    }

    #[test]
    fn eviction_recomputes_but_stays_correct() {
        // Capacity smaller than the working set: every entry cycles
        // through eviction, and lookups always return the evaluated
        // relation for the content.
        let c = SegmentCache::new(1); // normalized to NUM_SHARDS entries
        let keys: Vec<Vec<u8>> = (0..200u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for round in 0..3 {
            for (i, k) in keys.iter().enumerate() {
                let (r, _) = c.get_or_eval(9, k, || rel(i % 5));
                assert_eq!(*r, rel(i % 5), "round {round} key {i}");
            }
        }
        assert!(c.len() <= c.capacity());
        let s = c.stats();
        assert!(s.evictions > 0, "working set exceeds capacity: {s:?}");
        assert_eq!(s.hits + s.misses, 600);
    }

    #[test]
    fn clear_and_reset() {
        let c = SegmentCache::new(64);
        let _ = c.get_or_eval(1, b"x", || rel(1));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1, "clear keeps counters");
        c.reset_stats();
        assert_eq!(c.stats(), SegCacheStats::default());
    }
}
