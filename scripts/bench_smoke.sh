#!/usr/bin/env sh
# Benchmark smoke run: a small fixed-seed subset of the experiment
# binaries with both evaluation engines, collecting the machine-readable
# `BENCH {json}` rows into a JSON-lines file (schema:
# {"bench","engine","bytes","wall_ms","tuples"} — see README.md,
# "Performance & benchmarks"). CI uploads the output as the
# `BENCH_pr.json` artifact, so the perf trajectory accumulates per PR.
#
# Usage: scripts/bench_smoke.sh [out-file]   (default: BENCH_pr.json)
# Honors SC_SCALE (default 0.125 here: ~1 MiB corpora, seconds not
# minutes). Corpus seeds are fixed inside the binaries, so rows are
# comparable across runs up to machine noise.
set -eu

out="${1:-BENCH_pr.json}"
scale="${SC_SCALE:-0.125}"
: >"$out"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() {
  bin="$1"
  engine="$2"
  echo "== $bin --engine $engine (SC_SCALE=$scale)" >&2
  # Capture to a file first so a crashing binary fails the job (a pipe
  # would report only sed's exit status).
  SC_SCALE="$scale" "./target/release/$bin" --engine "$engine" >"$tmp"
  sed -n 's/^BENCH //p' "$tmp" >>"$out"
}

run e1_ngram_speedup nfa
run e1_ngram_speedup dense
run e1_ngram_speedup prefilter
run e2_pubmed_speedup nfa
run e2_pubmed_speedup dense
run e2_pubmed_speedup prefilter
run e4_reviews_speedup nfa
run e4_reviews_speedup dense
run e4_reviews_speedup prefilter
run e5_corpus_stream nfa
run e5_corpus_stream dense
run e5_corpus_stream prefilter
# Emits both dense and prefilter rows itself (collection + streaming
# variants); the --engine flag is accepted-and-ignored for uniformity.
run e6_sparse_prefilter dense
# Emits fused + sequential rows for every (flavor x fleet size) point
# itself; the --engine flag is accepted-and-ignored for uniformity.
run e7_fleet prefilter
# Boots an in-process splitc-server; emits cold/warm registration rows
# plus /extract burst + throughput rows for the selected engine.
run e8_server dense
# Replays the e1-e4 workloads under both the AOT tier and lazy dense,
# emitting paired rows itself; the --engine flag is
# accepted-and-ignored for uniformity.
run e9_aot dense
# Boots an in-process splitc-server; drives a corpus-delta edit loop
# and emits delta + per-request-rescan rows for the selected engine.
run e10_server_delta dense
run t8_incremental nfa
run t8_incremental dense
run t8_incremental prefilter
run t8_incremental aot
run t2_splitcorrect_scaling dense
# Emits both certification engines (antichain + determinize) itself;
# the --engine flag is accepted-and-ignored for uniformity.
run t3_certification_scaling dense

echo "wrote $(wc -l <"$out") rows to $out" >&2
cat "$out"
