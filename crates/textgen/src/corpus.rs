//! Seeded synthetic corpus generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the document generators.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Approximate size of the generated document in bytes.
    pub target_bytes: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Average number of tokens per sentence.
    pub avg_sentence_tokens: usize,
    /// Sentences per paragraph.
    pub paragraph_sentences: usize,
    /// Probability that a token is a capitalized entity.
    pub entity_rate: f64,
    /// Probability that a token is a number.
    pub number_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            target_bytes: 1 << 20,
            seed: 0xC0FFEE,
            avg_sentence_tokens: 20,
            paragraph_sentences: 5,
            entity_rate: 0.08,
            number_rate: 0.05,
        }
    }
}

const SYLLABLES: &[&str] = &[
    "ta", "ri", "mo", "ne", "lu", "ka", "vi", "so", "de", "pa", "zu", "qi", "bo", "wex", "han",
    "gil",
];

fn word(rng: &mut StdRng, capitalize: bool) -> String {
    // Zipf-ish length: mostly 2 syllables, occasionally more.
    let syls = 1 + (rng.gen::<f64>().powi(2) * 3.0) as usize;
    let mut w = String::new();
    for _ in 0..=syls {
        w.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    if capitalize {
        let mut c = w.chars();
        let first = c.next().unwrap().to_ascii_uppercase();
        format!("{first}{}", c.as_str())
    } else {
        w
    }
}

fn token(rng: &mut StdRng, cfg: &CorpusConfig) -> String {
    let r = rng.gen::<f64>();
    if r < cfg.number_rate {
        format!("{}", rng.gen_range(1..100000))
    } else if r < cfg.number_rate + cfg.entity_rate {
        word(rng, true)
    } else {
        word(rng, false)
    }
}

fn sentence(rng: &mut StdRng, cfg: &CorpusConfig) -> String {
    let n = (cfg.avg_sentence_tokens / 2).max(1) + rng.gen_range(0..cfg.avg_sentence_tokens.max(1));
    let toks: Vec<String> = (0..n).map(|_| token(rng, cfg)).collect();
    toks.join(" ")
}

/// A Wikipedia-like document: paragraphs of sentences. Sentences are
/// terminated by `.`, paragraphs separated by blank lines — the shapes
/// the built-in formal splitters understand.
pub fn wiki_corpus(cfg: &CorpusConfig) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(cfg.target_bytes + 1024);
    while out.len() < cfg.target_bytes {
        let mut para = String::new();
        for i in 0..cfg.paragraph_sentences {
            if i > 0 {
                para.push(' ');
            }
            para.push_str(&sentence(&mut rng, cfg));
            para.push('.');
        }
        if !out.is_empty() {
            out.push_str("\n\n");
        }
        out.push_str(&para);
    }
    out.into_bytes()
}

/// Streaming counterpart of [`wiki_corpus`]: yields the same document
/// **paragraph by paragraph** (one chunk per paragraph, separators
/// included), so corpora far larger than memory can be generated and
/// fed straight into the streaming execution layer. The concatenation
/// of all chunks is byte-identical to `wiki_corpus(cfg)`.
pub fn wiki_corpus_chunks(cfg: &CorpusConfig) -> WikiChunks {
    WikiChunks {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        emitted: 0,
    }
}

/// A corpus of `n` independent Wikipedia-like documents, each delivered
/// as a paragraph-chunk stream (document `i` uses seed `cfg.seed + i`).
/// This is the generator behind the `e5_corpus_stream` benchmark's
/// sharded streaming input.
pub fn wiki_corpus_shards(n: usize, cfg: &CorpusConfig) -> Vec<WikiChunks> {
    (0..n)
        .map(|i| {
            wiki_corpus_chunks(&CorpusConfig {
                seed: cfg.seed.wrapping_add(i as u64),
                ..cfg.clone()
            })
        })
        .collect()
}

/// Iterator state of [`wiki_corpus_chunks`].
#[derive(Debug)]
pub struct WikiChunks {
    rng: StdRng,
    cfg: CorpusConfig,
    emitted: usize,
}

impl Iterator for WikiChunks {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        if self.emitted >= self.cfg.target_bytes {
            return None;
        }
        // Mirrors one iteration of the `wiki_corpus` loop exactly (same
        // RNG consumption order), so the streamed bytes are identical.
        let mut para = String::new();
        for i in 0..self.cfg.paragraph_sentences {
            if i > 0 {
                para.push(' ');
            }
            para.push_str(&sentence(&mut self.rng, &self.cfg));
            para.push('.');
        }
        let mut chunk = String::new();
        if self.emitted > 0 {
            chunk.push_str("\n\n");
        }
        chunk.push_str(&para);
        self.emitted += chunk.len();
        Some(chunk.into_bytes())
    }
}

/// A *match-sparse* Wikipedia-like document: the same paragraph /
/// sentence shape as [`wiki_corpus`], but tokens are letters-only except
/// that each sentence independently carries one numeric token with
/// probability `1/needle_every` (seeded, so generation is
/// deterministic). With `needle_every == 0` no sentence ever matches.
/// This is the workload of the `e6_sparse_prefilter` benchmark: a
/// number extractor finds something in roughly `1/needle_every` of the
/// sentences and the literal prefilter gate rejects the rest without
/// touching a DFA.
pub fn sparse_number_corpus(cfg: &CorpusConfig, needle_every: usize) -> Vec<u8> {
    let barren = CorpusConfig {
        number_rate: 0.0,
        ..cfg.clone()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(cfg.target_bytes + 1024);
    while out.len() < cfg.target_bytes {
        let mut para = String::new();
        for i in 0..cfg.paragraph_sentences {
            if i > 0 {
                para.push(' ');
            }
            para.push_str(&sentence(&mut rng, &barren));
            if needle_every > 0 && rng.gen_range(0..needle_every) == 0 {
                para.push_str(&format!(" {}", rng.gen_range(1..100000)));
            }
            para.push('.');
        }
        if !out.is_empty() {
            out.push_str("\n\n");
        }
        out.push_str(&para);
    }
    out.into_bytes()
}

/// A corpus of `n` independent sparse documents (document `i` uses seed
/// `cfg.seed + i`), mirroring [`wiki_corpus_shards`] for the sparse
/// workload.
pub fn sparse_number_shards(n: usize, cfg: &CorpusConfig, needle_every: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            sparse_number_corpus(
                &CorpusConfig {
                    seed: cfg.seed.wrapping_add(i as u64),
                    ..cfg.clone()
                },
                needle_every,
            )
        })
        .collect()
}

/// A PubMed-like document: longer, number-heavy sentences, flat
/// structure (one big "abstract stream").
pub fn pubmed_corpus(target_bytes: usize, seed: u64) -> Vec<u8> {
    let cfg = CorpusConfig {
        target_bytes,
        seed,
        avg_sentence_tokens: 30,
        paragraph_sentences: 4,
        entity_rate: 0.04,
        number_rate: 0.15,
    };
    wiki_corpus(&cfg)
}

/// A Reuters-like collection: `n` short articles, each a few sentences,
/// where roughly one sentence in three contains a financial transaction
/// `Org (paid|acquired) Org <amount>` recognizable by
/// [`crate::spanners::transaction_extractor`].
pub fn articles_corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let cfg = CorpusConfig {
        avg_sentence_tokens: 12,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sentences = rng.gen_range(4..10);
            let mut doc = String::new();
            for i in 0..sentences {
                if i > 0 {
                    doc.push(' ');
                }
                if rng.gen::<f64>() < 0.33 {
                    // A transaction sentence.
                    let verb = if rng.gen::<bool>() {
                        "paid"
                    } else {
                        "acquired"
                    };
                    doc.push_str(&format!(
                        "{} {} {} {} {}",
                        word(&mut rng, true),
                        verb,
                        word(&mut rng, true),
                        rng.gen_range(100..1_000_000),
                        sentence(&mut rng, &cfg),
                    ));
                } else {
                    doc.push_str(&sentence(&mut rng, &cfg));
                }
                doc.push('.');
            }
            doc.into_bytes()
        })
        .collect()
}

/// A *skewed* Reuters-like collection: like [`articles_corpus`], but a
/// small fraction (~2%) of articles are one to two orders of magnitude
/// longer. Long-document skew is where per-sentence task granularity
/// visibly beats per-article granularity even under an idealized
/// scheduler (see experiment E3).
pub fn skewed_articles_corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let cfg = CorpusConfig {
        avg_sentence_tokens: 12,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sentences = if rng.gen::<f64>() < 0.02 {
                rng.gen_range(300..800)
            } else {
                rng.gen_range(4..10)
            };
            let mut doc = String::new();
            for i in 0..sentences {
                if i > 0 {
                    doc.push(' ');
                }
                if rng.gen::<f64>() < 0.33 {
                    let verb = if rng.gen::<bool>() {
                        "paid"
                    } else {
                        "acquired"
                    };
                    doc.push_str(&format!(
                        "{} {} {} {} {}",
                        word(&mut rng, true),
                        verb,
                        word(&mut rng, true),
                        rng.gen_range(100..1_000_000),
                        sentence(&mut rng, &cfg),
                    ));
                } else {
                    doc.push_str(&sentence(&mut rng, &cfg));
                }
                doc.push('.');
            }
            doc.into_bytes()
        })
        .collect()
}

/// An Amazon-reviews-like collection: `n` short reviews; roughly half
/// contain a negative-sentiment pattern `<target> (is|was)
/// (bad|poor|awful)` recognizable by
/// [`crate::spanners::negative_sentiment_targets`].
pub fn reviews_corpus(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let cfg = CorpusConfig {
        avg_sentence_tokens: 8,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sentences = rng.gen_range(2..6);
            let mut doc = String::new();
            for i in 0..sentences {
                if i > 0 {
                    doc.push(' ');
                }
                if rng.gen::<f64>() < 0.5 {
                    let adj = ["bad", "poor", "awful"][rng.gen_range(0..3)];
                    let cop = if rng.gen::<bool>() { "is" } else { "was" };
                    doc.push_str(&format!(
                        "{} {} {} {}",
                        sentence(&mut rng, &cfg),
                        word(&mut rng, false),
                        cop,
                        adj
                    ));
                } else {
                    doc.push_str(&sentence(&mut rng, &cfg));
                }
                doc.push('.');
            }
            doc.into_bytes()
        })
        .collect()
}

/// An HTTP-like log: `n` messages separated by blank lines; each message
/// is a lowercase request line (`get <path>` or `post <path>`) followed
/// by a few `header value` lines.
pub fn http_log(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push_str("\n\n");
        }
        let method = if rng.gen::<bool>() { "get" } else { "post" };
        out.push_str(&format!("{method} {}", word(&mut rng, false)));
        for _ in 0..rng.gen_range(1..4) {
            out.push_str(&format!(
                "\n{} {}",
                word(&mut rng, false),
                word(&mut rng, false)
            ));
        }
    }
    out.into_bytes()
}

/// The 24-letter base alphabet of the fleet keywords: lowercase letters
/// minus `q` (every keyword *starts* with `q`, so a base `q` would let
/// keywords prefix each other) and minus `i` (the only syllable of the
/// barren text containing `q` is `qi`, so excluding `i` guarantees no
/// generated word ever contains a keyword).
const KEYWORD_BASE: &[u8] = b"abcdefghjklmnoprstuvwxyz";

/// The `i`-th fleet keyword: `q` plus two base letters (`qaa`, `qab`,
/// …) — up to 576 distinct keywords, none a substring of another or of
/// any barren token.
pub fn fleet_keyword(i: usize) -> String {
    assert!(
        i < KEYWORD_BASE.len() * KEYWORD_BASE.len(),
        "keyword index {i} out of range"
    );
    let hi = KEYWORD_BASE[i / KEYWORD_BASE.len()] as char;
    let lo = KEYWORD_BASE[i % KEYWORD_BASE.len()] as char;
    format!("q{hi}{lo}")
}

/// A keyword-mention document for the fleet benchmark: the barren
/// Wikipedia-like shape of [`sparse_number_corpus`], except each
/// sentence independently carries one `<keyword><number>` token (a
/// uniformly chosen keyword of the `n_keywords`-member fleet) with
/// probability `1/needle_every`. `needle_every == 1` yields the dense
/// flavor (every sentence mentions a keyword); larger values yield
/// match-sparse corpora where most sentences concern no member at all.
pub fn keyword_corpus(cfg: &CorpusConfig, n_keywords: usize, needle_every: usize) -> Vec<u8> {
    assert!(n_keywords > 0 && needle_every > 0);
    let barren = CorpusConfig {
        number_rate: 0.0,
        ..cfg.clone()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::with_capacity(cfg.target_bytes + 1024);
    while out.len() < cfg.target_bytes {
        let mut para = String::new();
        for i in 0..cfg.paragraph_sentences {
            if i > 0 {
                para.push(' ');
            }
            para.push_str(&sentence(&mut rng, &barren));
            if rng.gen_range(0..needle_every) == 0 {
                let kw = fleet_keyword(rng.gen_range(0..n_keywords));
                para.push_str(&format!(" {kw}{}", rng.gen_range(1..100000)));
            }
            para.push('.');
        }
        if !out.is_empty() {
            out.push_str("\n\n");
        }
        out.push_str(&para);
    }
    out.into_bytes()
}

/// A corpus of `n` independent keyword-mention documents (document `i`
/// uses seed `cfg.seed + i`), mirroring [`sparse_number_shards`] for
/// the fleet workload.
pub fn keyword_corpus_shards(
    n: usize,
    cfg: &CorpusConfig,
    n_keywords: usize,
    needle_every: usize,
) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            keyword_corpus(
                &CorpusConfig {
                    seed: cfg.seed.wrapping_add(i as u64),
                    ..cfg.clone()
                },
                n_keywords,
                needle_every,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::splitter::native;

    #[test]
    fn wiki_corpus_is_deterministic_and_sized() {
        let cfg = CorpusConfig {
            target_bytes: 10_000,
            ..Default::default()
        };
        let a = wiki_corpus(&cfg);
        let b = wiki_corpus(&cfg);
        assert_eq!(a, b);
        assert!(a.len() >= 10_000);
        assert!(a.len() < 14_000, "should not overshoot much: {}", a.len());
    }

    #[test]
    fn wiki_corpus_splits_cleanly() {
        let cfg = CorpusConfig {
            target_bytes: 5_000,
            ..Default::default()
        };
        let doc = wiki_corpus(&cfg);
        let sentences = native::sentences(&doc);
        assert!(sentences.len() > 10);
        // No sentence contains a period.
        for s in &sentences {
            assert!(!s.slice(&doc).contains(&b'.'));
        }
        let paragraphs = native::paragraphs(&doc);
        assert!(paragraphs.len() >= 2);
        // ASCII only — bytes are chars.
        assert!(doc.iter().all(|b| b.is_ascii()));
    }

    #[test]
    fn chunk_stream_reproduces_wiki_corpus() {
        let cfg = CorpusConfig {
            target_bytes: 20_000,
            ..Default::default()
        };
        let chunks: Vec<Vec<u8>> = wiki_corpus_chunks(&cfg).collect();
        assert!(chunks.len() > 2, "multiple paragraph chunks");
        let streamed: Vec<u8> = chunks.concat();
        assert_eq!(streamed, wiki_corpus(&cfg));
        // Shards are independent documents with distinct seeds.
        let shards = wiki_corpus_shards(3, &cfg);
        let docs: Vec<Vec<u8>> = shards.into_iter().map(|s| s.flatten().collect()).collect();
        assert_eq!(docs[0], wiki_corpus(&cfg));
        assert_ne!(docs[0], docs[1]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = wiki_corpus(&CorpusConfig {
            target_bytes: 1000,
            seed: 1,
            ..Default::default()
        });
        let b = wiki_corpus(&CorpusConfig {
            target_bytes: 1000,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn articles_contain_transactions() {
        let docs = articles_corpus(50, 7);
        assert_eq!(docs.len(), 50);
        let with_verb = docs
            .iter()
            .filter(|d| {
                d.windows(6).any(|w| w == b" paid ") || d.windows(10).any(|w| w == b" acquired ")
            })
            .count();
        assert!(with_verb > 10, "transactions present in {with_verb} docs");
    }

    #[test]
    fn reviews_contain_negative_sentiment() {
        let docs = reviews_corpus(50, 9);
        let negative = docs
            .iter()
            .filter(|d| {
                [&b" bad"[..], &b" poor"[..], &b" awful"[..]]
                    .iter()
                    .any(|pat| d.windows(pat.len()).any(|w| &w == pat))
            })
            .count();
        assert!(negative > 10);
    }

    #[test]
    fn http_log_paragraph_structure() {
        let log = http_log(10, 3);
        let messages = native::paragraphs(&log);
        assert_eq!(messages.len(), 10);
        for m in &messages {
            let text = m.slice(&log);
            assert!(text.starts_with(b"get ") || text.starts_with(b"post "));
        }
    }

    #[test]
    fn sparse_corpus_is_sparse_deterministic_and_splittable() {
        let cfg = CorpusConfig {
            target_bytes: 20_000,
            ..Default::default()
        };
        let doc = sparse_number_corpus(&cfg, 32);
        assert_eq!(doc, sparse_number_corpus(&cfg, 32), "seeded determinism");
        let sentences = native::sentences(&doc);
        let with_digit = sentences
            .iter()
            .filter(|s| s.slice(&doc).iter().any(|b| b.is_ascii_digit()))
            .count();
        assert!(with_digit >= 1);
        assert!(
            with_digit * 16 <= sentences.len(),
            "at most ~1/16 of {} sentences may match, got {with_digit}",
            sentences.len()
        );
        // The barren variant never matches.
        let barren = sparse_number_corpus(&cfg, 0);
        assert!(barren.iter().all(|b| !b.is_ascii_digit()));
        // Shards differ and mirror the single-document generator.
        let shards = sparse_number_shards(3, &cfg, 32);
        assert_eq!(shards[0], doc);
        assert_ne!(shards[0], shards[1]);
    }

    #[test]
    fn pubmed_is_number_heavy() {
        let doc = pubmed_corpus(20_000, 5);
        let digits = doc.iter().filter(|b| b.is_ascii_digit()).count();
        assert!(digits * 20 > doc.len(), "expect >5% digits");
    }
}
