//! Parameterized input families for the scaling experiments: the
//! hardness gadgets from the paper's reductions and benign polynomial
//! families for the tractable fragments.

use splitc_automata::nfa::{Nfa, Sym};
use splitc_spanner::rgx::Rgx;
use splitc_spanner::splitter::Splitter;
use splitc_spanner::vsa::Vsa;

/// The first `n` primes (enough for every family here).
pub const PRIMES: [usize; 8] = [2, 3, 5, 7, 11, 13, 17, 19];

/// DFA-union universality gadget (used by Theorems 4.2, 5.1, and 5.4's
/// hardness proofs): `A_i` accepts the unary words whose length is *not*
/// divisible by the `i`-th prime. The union of the first `n` automata is
/// universal iff no length is divisible by all primes — false, with the
/// shortest counterexample of length `lcm(p_1..p_n)`, so deciding
/// universality forces the subset construction to explore exponentially
/// many (in the input size `Σ p_i`) configurations.
pub fn mod_prime_union_nfa(n: usize) -> Nfa {
    assert!(n >= 1 && n <= PRIMES.len());
    let mut nfa = Nfa::new(1);
    for &p in &PRIMES[..n] {
        let first = nfa.add_states(p);
        for i in 0..p {
            nfa.add_transition(first + i as u32, Sym(0), first + ((i + 1) % p) as u32);
        }
        nfa.add_start(first);
        for i in 1..p {
            nfa.set_final(first + i as u32, true);
        }
    }
    // Accept ε separately so the shortest missing word is a^lcm, not ε.
    let eps = nfa.add_state();
    nfa.add_start(eps);
    nfa.set_final(eps, true);
    nfa
}

/// Σ* over the unary alphabet.
pub fn unary_sigma_star() -> Nfa {
    let mut nfa = Nfa::new(1);
    let q = nfa.add_state();
    nfa.add_start(q);
    nfa.set_final(q, true);
    nfa.add_transition(q, Sym(0), q);
    nfa
}

/// A sentence-local chain extractor of size `k`: captures the literal
/// run `q a^k q` anywhere in the document. Deterministic after
/// [`Vsa::determinize`]; containment and split-correctness on this
/// family scale polynomially (Theorems 4.3 / 5.7).
pub fn chain_extractor(k: usize) -> Vsa {
    let body = "a".repeat(k);
    Rgx::parse(&format!(".*q(x{{{body}}})q.*"))
        .expect("family pattern")
        .to_vsa()
        .expect("functional")
}

/// The "needle" extractor `.* a [ab]^k x{b+} .*`: captures a `b`-run
/// that sits exactly `k` letters after an `a`. The `Σ*aΣ^k` guard lives
/// in the *byte* segment before the variable, so (unlike window-length
/// gadgets, which ref-word operation symbols make deterministic again)
/// every determinization of the guard — in the extractor or in its
/// splitter composition — must remember the `a`-pattern of a sliding
/// `k`-window: `2^k` subsets. The antichain frontier of the lazy
/// containment search stays polynomial in `k` instead, because sparse
/// frontier subsets prune their rich same-depth siblings — the classic
/// antichain showcase family. Self-splittable by sentence-style
/// splitters: `a[ab]^k b+` never contains a delimiter.
pub fn needle_extractor(k: usize) -> Vsa {
    let guard = "[ab]".repeat(k);
    Rgx::parse(&format!(".*a{guard}(x{{b+}}).*"))
        .expect("family pattern")
        .to_vsa()
        .expect("functional")
}

/// A union extractor with `n` branches (one per marker letter),
/// increasing nondeterminism for the general-procedure scaling runs.
pub fn branching_extractor(n: usize) -> Vsa {
    assert!((1..=26).contains(&n));
    let branches: Vec<String> = (0..n)
        .map(|i| {
            let c = (b'b' + i as u8) as char;
            format!(".*{c}(x{{a+}}){c}.*")
        })
        .collect();
    Rgx::parse(&branches.join("|"))
        .expect("family pattern")
        .to_vsa()
        .expect("functional")
}

/// The Theorem 5.1 hardness shape: `P = a^n · y{Σ*}`,
/// `S = Σ_i a^i · x{a^{n-i} · A_i}`, `P_S = a* · z{Σ*}` — with the
/// mod-prime languages as `A_i`. Split-correctness of the triple is
/// equivalent to the union universality above.
pub fn theorem_5_1_gadget(n: usize) -> (Vsa, Vsa, Splitter) {
    assert!(n >= 1 && n <= PRIMES.len());
    let p = Rgx::parse(&format!("{}(y{{.*}})", "a".repeat(n)))
        .expect("gadget P")
        .to_vsa()
        .expect("functional");
    // A_i = unary (over 'a') length not divisible by prime_i... we use a
    // two-letter alphabet {a, b}: A_i = b-runs of length ≢ 0 (mod p_i)
    // to keep the marker prefix distinguishable.
    let mut branches = Vec::new();
    for (i, &prime) in PRIMES[..n].iter().enumerate() {
        // b^j with j % prime != 0 : (b^prime)* (b | bb | ... | b^{prime-1})
        let nonzero: Vec<String> = (1..prime).map(|j| "b".repeat(j)).collect();
        let a_i = format!("(({})*({}))", "b".repeat(prime), nonzero.join("|"));
        branches.push(format!(
            "{}(x{{{}{}}})",
            "a".repeat(i),
            "a".repeat(n - i),
            a_i
        ));
    }
    let s = Splitter::parse(&branches.join("|")).expect("gadget S");
    let ps = Rgx::parse("a*(z{.*})")
        .expect("gadget P_S")
        .to_vsa()
        .expect("functional");
    (p, ps, s)
}

/// Disjoint splitter family: sentences over a `k`-letter delimiter
/// class (size grows with `k`).
pub fn delimiter_splitter(k: usize) -> Splitter {
    assert!((1..=20).contains(&k));
    let delims: String = (0..k).map(|i| (b'0' + i as u8) as char).collect();
    Splitter::parse(&format!("(.*[{delims}])?x{{[^{delims}]+}}([{delims}].*)?"))
        .expect("family splitter")
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_automata::ops;

    #[test]
    fn mod_prime_union_counterexample_length() {
        // n = 2: primes 2,3; shortest non-covered length = lcm = 6.
        let u = mod_prime_union_nfa(2);
        match ops::universal(&u) {
            ops::Containment::Counterexample(w) => assert_eq!(w.len(), 6),
            ops::Containment::Contained => panic!("not universal"),
        }
    }

    #[test]
    fn chain_extractor_grows_linearly() {
        let a = chain_extractor(2);
        let b = chain_extractor(8);
        assert!(b.num_states() > a.num_states());
        assert!(b.num_states() < a.num_states() + 40);
    }

    #[test]
    fn gadget_families_build() {
        let (p, ps, s) = theorem_5_1_gadget(2);
        assert_eq!(p.vars().names(), &["y"]);
        assert_eq!(ps.vars().names(), &["z"]);
        assert_eq!(s.vsa().vars().names(), &["x"]);
        let _ = branching_extractor(3);
        let sp = delimiter_splitter(3);
        assert!(sp.is_disjoint());
    }
}
