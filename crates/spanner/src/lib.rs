#![warn(missing_docs)]
//! Document spanners, regex formulas, VSet-automata and splitters.
//!
//! This crate implements the document-spanner formalism of Fagin et al.
//! (*Document Spanners: A Formal Approach to Information Extraction*,
//! J. ACM 2015) as used by *Split-Correctness in Information Extraction*
//! (PODS 2019):
//!
//! * [`span`] — spans `[i, j⟩`, the shift operator `≫`, containment and
//!   overlap predicates (paper §2, Figure 1).
//! * [`vars`] — span variables, variable operations `x⊢` / `⊣x`, and the
//!   fixed total order `≺` on operations used by deterministic
//!   VSet-automata (paper §4.2).
//! * [`byteset`] — 256-bit byte sets; transitions of our automata carry
//!   byte sets rather than single bytes so realistic splitters stay small.
//! * [`mod@tuple`] — `(V, d)`-tuples and span relations.
//! * [`refword`] — ref-words, validity, the `clr` morphism and tuple
//!   extraction (paper §4, following Freydenberger's semantics).
//! * [`rgx`] — regex formulas: AST, parser, functionality check, and
//!   compilation to VSet-automata (paper §4.1).
//! * [`vsa`] — classic VSet-automata with ε- and variable-operation
//!   transitions; functionality, determinism (weak and strong),
//!   functionalization and determinization (paper §4.2, Prop. 4.4).
//! * [`evsa`] — the internal *block normal form* used for evaluation and
//!   spanner algebra (union, projection, natural join).
//! * [`ext`] — interned extended alphabets `Σ ∪ Γ_V` with byte-class
//!   compression, bridging spanners to the [`splitc_automata`] substrate.
//! * [`equiv`] — spanner containment and equivalence on order-normalized
//!   valid ref-word languages (Theorems 4.1 and 4.3).
//! * [`splitter`] — document splitters, the disjointness check
//!   (Prop. 5.5), the composition `P ∘ S` (Lemma C.1/C.2), and a library
//!   of realistic splitters (sentences, paragraphs, lines, N-grams, HTTP
//!   requests).
//! * [`eval`] — evaluation of spanners on documents (output-sensitive
//!   enumeration) plus a brute-force reference evaluator for testing.
//! * [`dense`] — the dense engine: byte-class-compressed transition
//!   tables and a memory-bounded lazy-DFA cache accelerating acceptance,
//!   the viability pass, and compiled splitters, with exact fallback to
//!   the NFA engine.
//! * [`prefilter`] — literal prefilters over the dense engine: a
//!   per-spanner analysis (minimum match length, required prefix
//!   literal, required byte class) gates documents before any DFA step,
//!   and the lazy DFA's skip-loop crosses `Σ*` contexts with a SWAR
//!   scanner; trivial analyses fall back to plain dense evaluation.
//! * [`aot`] — the ahead-of-time engine tier: budget-bounded full
//!   determinization of both scan directions, Hopcroft minimization of
//!   the forward DFA, and flat premultiplied `u16` transition tables
//!   (accept/empty flags packed into bit 15) stepped 4 bytes per
//!   iteration; falls back to [`dense`] when the budget is exceeded.
//! * [`stream`] — incremental splitter simulation: a forward-only step
//!   API ([`stream::SplitterState`]) emitting split spans chunk by chunk
//!   without materializing the document, behind the streaming corpus
//!   execution of `splitc-exec`.
//!
//! A map of how these modules compose into the full pipeline (regex →
//! VSA → eVSA → dense/stream engines → execution layer) lives in the
//! repository's top-level `ARCHITECTURE.md`.

pub mod aot;
pub mod byteset;
pub mod dense;
pub mod equiv;
pub mod eval;
pub mod evsa;
pub mod ext;
pub mod prefilter;
pub mod refword;
pub mod rgx;
pub mod span;
pub mod splitter;
pub mod stream;
pub mod tuple;
pub mod vars;
pub mod vsa;

pub use aot::{AotConfig, AotEvsa};
pub use dense::{DenseCache, DenseCacheStats, DenseConfig, DenseEvsa};
pub use equiv::{
    spanner_contains, spanner_contains_with, spanner_equivalent, spanner_equivalent_with,
    CheckStrategy, SpannerCheck,
};
pub use evsa::EVsa;
pub use prefilter::{PrefilterAnalysis, PrefilterGate, PrefilterStats, PrefilteredEvsa};
pub use rgx::Rgx;
pub use span::Span;
pub use splitter::Splitter;
pub use stream::{SplitterState, StreamTables};
pub use tuple::{SpanRelation, SpanTuple};
pub use vars::{VarId, VarOp, VarTable};
pub use vsa::Vsa;

#[cfg(test)]
mod proptests;
