//! E1 — paper §1 ("Further motivation"): N-gram extraction over
//! Wikipedia sentences; "first split to sentences and then distribute"
//! gave 2.1x (N=2) and 3.11x (N=3) over 5 cores.
//!
//! Reproduction: synthetic Wikipedia-like corpus (`splitc_textgen`),
//! certified split plan, 5-worker pool simulated from measured per-task
//! times (the benchmark host is single-core; see `exec::simulate`).

use splitc_bench::{bench_json, engine_arg, ms, scaled, time, time_best, x, Table};
use splitc_exec::{simulate_split, ExecSpanner, SplitFn};
use splitc_spanner::splitter::{self, native};
use splitc_textgen::{spanners, wiki_corpus, CorpusConfig};
use std::sync::Arc;

fn main() {
    let engine = engine_arg();
    let bytes = scaled(8 << 20);
    println!(
        "E1: N-gram extraction over a {:.1} MiB Wikipedia-like corpus (engine: {})",
        bytes as f64 / (1 << 20) as f64,
        engine.name()
    );
    let cfg = CorpusConfig {
        target_bytes: bytes,
        ..Default::default()
    };
    let (doc, gen_t) = time(|| wiki_corpus(&cfg));
    println!(
        "corpus generated in {} ms ({} sentences)",
        ms(gen_t),
        native::sentences(&doc).len()
    );

    let mut table = Table::new(
        "E1 — split-to-sentences speedup for N-gram extraction (5 workers)",
        &[
            "N",
            "tuples",
            "seq ms",
            "1w ms",
            "2w ms",
            "5w ms",
            "speedup@5",
            "pool scaling 1w→5w",
            "paper@5",
        ],
    );
    for (n, paper) in [(2usize, "2.10x"), (3, "3.11x")] {
        let p = spanners::ngram_extractor(n);
        // Certify on the formal level once (small automata).
        let s = splitter::sentences();
        let verdict = splitc_core::self_splittable(&p, &s).unwrap();
        assert!(verdict.holds(), "N-gram extractor must be self-splittable");
        let spanner = ExecSpanner::compile_with(&p, engine);
        let split: SplitFn = Arc::new(native::sentences);
        let report = simulate_split(&spanner, &split, &doc, &[1, 2, 5]);
        let (rel, seq_wall) = time_best(2, || spanner.eval(&doc));
        let tuples = rel.len();
        bench_json(
            &format!("e1_ngram_speedup/N={n}"),
            engine.name(),
            doc.len(),
            n as f64,
            seq_wall,
            tuples,
        );
        let w1 = report.makespans[0].1;
        let w5 = report.makespans[2].1;
        table.row(&[
            n.to_string(),
            tuples.to_string(),
            ms(report.sequential),
            ms(w1),
            ms(report.makespans[1].1),
            ms(w5),
            x(report.speedup(5)),
            x(w1.as_secs_f64() / w5.as_secs_f64().max(1e-12)),
            paper.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nShape check: split-then-distribute wins at 5 workers by at least the\n\
         paper's factors. The total speedup decomposes into (a) a locality\n\
         bonus of chunked evaluation even on one worker (small viability\n\
         tables instead of one document-sized table) and (b) pool scaling\n\
         (1w→5w column), which is bounded by the worker count like the\n\
         paper's 2.1x/3.11x on 5 cores."
    );
}
