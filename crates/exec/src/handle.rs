//! Maintained corpora: edits resplit only the dirty window.
//!
//! [`CorpusHandle`] owns a sharded corpus **together with its
//! segmentation** and keeps both up to date under point edits, appends,
//! and shard replacement — the paper's §1 Wikipedia-edit scenario made
//! operational. The key primitive is the *quiescent position*
//! ([`SplitterState::is_quiescent`]): a stream position where the
//! splitter sits in exactly its fresh-start configuration with nothing
//! pending, so the segmentation after that point is a pure (shifted)
//! function of the remaining bytes. The handle records quiescent
//! positions as **sync points** while splitting, and an edit then:
//!
//! 1. rewinds to the greatest sync point at or before the edit start
//!    (the *left frontier* — no segment crosses it, and the old
//!    segmentation up to it is untouched);
//! 2. resplits forward with a fresh splitter stream, probing each old
//!    sync point past the edit (shifted by the edit's byte delta): the
//!    first one where the new stream is also quiescent is the *right
//!    frontier* — from there the old suffix segmentation is provably
//!    identical modulo the shift, so it is spliced back instead of
//!    resplit;
//! 3. falls back to resplitting the rest of the shard when no sync
//!    point converges (rare; e.g. an edit that opens an unbounded
//!    segment). Either way the resulting segmentation equals a full
//!    split of the edited bytes — the differential proptests assert
//!    exactly that, byte for byte.
//!
//! Re-extraction is two-tier:
//!
//! * **Shard tier**: the handle stamps every shard with a generation
//!   (bumped by each mutation) and memoizes, per spanner, the relation
//!   each shard produced at its current generation. An extract runs the
//!   runner over **dirty shards only** — clean shards hand their
//!   relation back verbatim (`stats.docs_reused` counts them). After a
//!   point edit to one shard of an N-shard corpus, N−1 shards never
//!   touch the runner at all.
//! * **Segment tier**: within a dirty shard, a shared
//!   [`crate::SegmentCache`] attached to the runner answers the
//!   unchanged segments — all but the edit's dirty window — by content,
//!   so only the edited segments reach an engine.
//!
//! Both tiers go through [`CorpusRunner::run_presplit`] /
//! [`FleetRunner::run_presplit`] (no resplitting on the query path) and
//! both are speed-only: extraction results are byte-identical to a full
//! from-scratch rescan, which the differential proptests assert over
//! random edit scripts and the `t8_incremental` benchmark measures as
//! the incremental ≥-speedup asserted in CI.

use crate::corpus::{CorpusResult, CorpusRunner};
use crate::fleet::{FleetResult, FleetRunner};
use parking_lot::Mutex;
use splitc_spanner::span::Span;
use splitc_spanner::splitter::CompiledSplitter;
use splitc_spanner::stream::SplitterState;
use splitc_spanner::tuple::SpanRelation;
use std::ops::Range;
use std::sync::Arc;

/// Streaming step used when (re)splitting shard bytes; sync points are
/// probed at these boundaries, so it bounds sync density and resplit
/// granularity.
const SYNC_STEP: usize = 1024;

/// One shard of a maintained corpus: bytes, their segmentation, and the
/// recorded sync points (ascending absolute positions, all quiescent).
#[derive(Debug, Clone)]
struct Shard {
    bytes: Vec<u8>,
    /// The splitter's segmentation of `bytes`, ascending.
    segments: Vec<Span>,
    /// Quiescent stream positions recorded during splitting (strictly
    /// between 0 and `bytes.len()`), ascending. Resplit frontiers are
    /// chosen from these.
    syncs: Vec<usize>,
    /// Monotone mutation stamp (handle-wide counter): a memoized
    /// relation is valid exactly while its recorded generation equals
    /// this one.
    generation: u64,
}

/// What one delta did: the dirty window actually resplit and how much
/// of the old segmentation survived. Returned by every mutation of a
/// [`CorpusHandle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Left resplit frontier (absolute offset in the edited shard).
    pub window_start: usize,
    /// Right frontier in post-edit coordinates: the position where old
    /// suffix segments were spliced back, or the new shard length when
    /// no sync point converged.
    pub window_end: usize,
    /// Bytes actually re-streamed through the splitter
    /// (`window_end - window_start`).
    pub resplit_bytes: usize,
    /// Whether a right frontier was found (suffix reuse happened).
    pub converged: bool,
    /// Old segments kept untouched before the window.
    pub segments_reused_prefix: usize,
    /// Old segments spliced back (shifted) after the window.
    pub segments_reused_suffix: usize,
    /// Segments produced by resplitting the window.
    pub segments_resplit: usize,
}

/// A corpus held with its segmentation, maintained incrementally under
/// edits. See the [module docs](self) for the frontier algorithm;
/// construct with [`CorpusHandle::new`] and re-extract through
/// [`CorpusHandle::extract`] / [`CorpusHandle::extract_fleet`].
///
/// Shards are the unit of replacement (and map to documents of the
/// runner results); edits address byte ranges within one shard.
#[derive(Debug)]
pub struct CorpusHandle {
    splitter: CompiledSplitter,
    shards: Vec<Shard>,
    /// Source of shard generation stamps; bumped by every mutation.
    next_gen: u64,
    /// Per-spanner extraction memos (shard tier of incremental
    /// re-extraction; see the [module docs](self)). Interior-mutable so
    /// `extract` stays `&self`.
    memo: Mutex<MemoTable>,
}

/// Upper bound of spanner/fleet keys the extraction memo retains
/// (FIFO): a handle is typically extracted by a handful of long-lived
/// runners, and an evicted key only costs one full re-run.
const MEMO_KEYS: usize = 4;

/// Per-shard memoized results for one spanner (or fleet) key.
#[derive(Debug)]
struct SpannerMemo<R> {
    key: u64,
    /// Index-aligned with the handle's shards: the generation the
    /// result was computed at, and the result itself. `None` until the
    /// shard is first extracted under this key.
    per_shard: Vec<Option<(u64, Arc<R>)>>,
}

#[derive(Debug, Default)]
struct MemoTable {
    corpus: Vec<SpannerMemo<SpanRelation>>,
    fleet: Vec<SpannerMemo<Vec<SpanRelation>>>,
}

/// Finds (or inserts, evicting FIFO past [`MEMO_KEYS`]) the memo for
/// `key`, sized to `n_shards`.
fn memo_slot<R>(memos: &mut Vec<SpannerMemo<R>>, key: u64, n_shards: usize) -> &mut SpannerMemo<R> {
    let idx = match memos.iter().position(|m| m.key == key) {
        Some(i) => i,
        None => {
            if memos.len() >= MEMO_KEYS {
                memos.remove(0);
            }
            memos.push(SpannerMemo {
                key,
                per_shard: Vec::new(),
            });
            memos.len() - 1
        }
    };
    let m = &mut memos[idx];
    m.per_shard.resize_with(n_shards, || None);
    m
}

impl CorpusHandle {
    /// An empty corpus maintained under `splitter`.
    pub fn new(splitter: CompiledSplitter) -> CorpusHandle {
        CorpusHandle {
            splitter,
            shards: Vec::new(),
            next_gen: 0,
            memo: Mutex::new(MemoTable::default()),
        }
    }

    /// The next generation stamp (each mutation consumes one).
    fn bump_gen(&mut self) -> u64 {
        self.next_gen += 1;
        self.next_gen
    }

    /// Builds a corpus from shard byte buffers, splitting each fully
    /// once (the only full-corpus split the handle ever does).
    pub fn from_shards<I>(splitter: CompiledSplitter, shards: I) -> CorpusHandle
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let mut handle = CorpusHandle::new(splitter);
        for bytes in shards {
            handle.push_shard(bytes);
        }
        handle
    }

    /// Appends a new shard, returning its index.
    pub fn push_shard(&mut self, bytes: Vec<u8>) -> usize {
        let (segments, syncs) = split_recording_syncs(&self.splitter, &bytes);
        let generation = self.bump_gen();
        self.shards.push(Shard {
            bytes,
            segments,
            syncs,
            generation,
        });
        self.shards.len() - 1
    }

    /// Replaces shard `shard` wholesale (a full resplit of that shard —
    /// other shards are untouched, and unchanged segment *content*
    /// still hits the segment cache on re-extraction).
    pub fn replace_shard(&mut self, shard: usize, bytes: Vec<u8>) -> DeltaStats {
        let old_segments = self.shards[shard].segments.len();
        let (segments, syncs) = split_recording_syncs(&self.splitter, &bytes);
        let stats = DeltaStats {
            window_start: 0,
            window_end: bytes.len(),
            resplit_bytes: bytes.len(),
            converged: false,
            segments_reused_prefix: 0,
            segments_reused_suffix: 0,
            segments_resplit: segments.len(),
        };
        let _ = old_segments;
        let generation = self.bump_gen();
        self.shards[shard] = Shard {
            bytes,
            segments,
            syncs,
            generation,
        };
        stats
    }

    /// Appends bytes to shard `shard` — the log-tailing delta. Resplits
    /// only from the last sync point (for sync-dense splitters like
    /// sentences or lines, a constant-size tail).
    pub fn append(&mut self, shard: usize, bytes: &[u8]) -> DeltaStats {
        let len = self.shards[shard].bytes.len();
        self.edit(shard, len..len, bytes)
    }

    /// Replaces `range` of shard `shard` with `replacement` (the point
    /// edit; inserts and deletes are the empty-range / empty-replacement
    /// cases). Only the dirty window between the two frontiers is
    /// re-streamed; the resulting segmentation equals a full split of
    /// the edited bytes.
    ///
    /// # Panics
    /// If `shard` is out of bounds or `range` exceeds the shard.
    pub fn edit(&mut self, shard: usize, range: Range<usize>, replacement: &[u8]) -> DeltaStats {
        let generation = self.bump_gen();
        let sh = &mut self.shards[shard];
        assert!(
            range.start <= range.end && range.end <= sh.bytes.len(),
            "edit range {range:?} out of bounds (shard len {})",
            sh.bytes.len()
        );
        let delta = replacement.len() as isize - range.len() as isize;

        // Left frontier: greatest sync ≤ edit start (0 when none).
        // Quiescence guarantees no old segment crosses it.
        let left = match sh.syncs.partition_point(|&s| s <= range.start) {
            0 => 0,
            i => sh.syncs[i - 1],
        };

        // Splice the bytes.
        let mut new_bytes = Vec::with_capacity((sh.bytes.len() as isize + delta) as usize);
        new_bytes.extend_from_slice(&sh.bytes[..range.start]);
        new_bytes.extend_from_slice(replacement);
        new_bytes.extend_from_slice(&sh.bytes[range.end..]);

        // Candidate right frontiers: old sync points at or past the
        // edit end, mapped into post-edit coordinates. At such a
        // position the bytes from there on are the untouched old
        // suffix, so new-stream quiescence there proves the old suffix
        // segmentation correct (modulo the shift).
        let candidates: Vec<(usize, usize)> = sh
            .syncs
            .iter()
            .filter(|&&q| q >= range.end)
            .map(|&q| (q, (q as isize + delta) as usize))
            .filter(|&(_, q_new)| q_new > left)
            .collect();

        // Resplit the window [left ..], probing each candidate.
        let mut st = self.splitter.stream();
        let window = &new_bytes[left..];
        let mut new_segments: Vec<Span> = Vec::new(); // window-local
        let mut new_syncs: Vec<usize> = Vec::new(); // window-local
        let mut fed = 0usize;
        let mut frontier: Option<(usize, usize)> = None; // (q_old, q_new)
        for &(q_old, q_new) in &candidates {
            let target = q_new - left;
            feed_to(
                &mut st,
                window,
                &mut fed,
                target,
                &mut new_segments,
                &mut new_syncs,
            );
            if st.is_quiescent() {
                frontier = Some((q_old, q_new));
                break;
            }
        }
        if frontier.is_none() {
            // No convergence: resplit through the end of the shard.
            feed_to(
                &mut st,
                window,
                &mut fed,
                window.len(),
                &mut new_segments,
                &mut new_syncs,
            );
            new_segments.extend(st.finish());
        }

        // Reassemble: untouched prefix + resplit window + (shifted)
        // reused suffix.
        let prefix_end = sh.segments.partition_point(|s| s.end <= left);
        let mut segments: Vec<Span> = sh.segments[..prefix_end].to_vec();
        let reused_prefix = segments.len();
        let resplit = new_segments.len();
        segments.extend(
            new_segments
                .into_iter()
                .map(|s| Span::new(s.start + left, s.end + left)),
        );
        let mut syncs: Vec<usize> = sh.syncs.iter().copied().filter(|&s| s <= left).collect();
        syncs.extend(new_syncs.into_iter().map(|s| s + left));
        let mut reused_suffix = 0;
        let (window_end, converged) = match frontier {
            Some((q_old, q_new)) => {
                let suffix_start = sh.segments.partition_point(|s| s.start < q_old);
                for s in &sh.segments[suffix_start..] {
                    segments.push(Span::new(
                        (s.start as isize + delta) as usize,
                        (s.end as isize + delta) as usize,
                    ));
                    reused_suffix += 1;
                }
                if q_new < new_bytes.len() {
                    syncs.push(q_new);
                }
                syncs.extend(
                    sh.syncs
                        .iter()
                        .filter(|&&s| s > q_old)
                        .map(|&s| (s as isize + delta) as usize)
                        .filter(|&s| s < new_bytes.len()),
                );
                (q_new, true)
            }
            None => (new_bytes.len(), false),
        };

        syncs.dedup();
        sh.bytes = new_bytes;
        sh.segments = segments;
        sh.syncs = syncs;
        sh.generation = generation;
        DeltaStats {
            window_start: left,
            window_end,
            resplit_bytes: window_end - left,
            converged,
            segments_reused_prefix: reused_prefix,
            segments_reused_suffix: reused_suffix,
            segments_resplit: resplit,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The bytes of shard `shard`.
    pub fn shard_bytes(&self, shard: usize) -> &[u8] {
        &self.shards[shard].bytes
    }

    /// The maintained segmentation of shard `shard`.
    pub fn segments(&self, shard: usize) -> &[Span] {
        &self.shards[shard].segments
    }

    /// Total segments across all shards.
    pub fn total_segments(&self) -> usize {
        self.shards.iter().map(|s| s.segments.len()).sum()
    }

    /// Total bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// The corpus as `(bytes, segmentation)` documents, one per shard —
    /// the shape [`CorpusRunner::run_presplit`] consumes.
    pub fn presplit_docs(&self) -> impl Iterator<Item = (&[u8], &[Span])> {
        self.shards
            .iter()
            .map(|s| (s.bytes.as_slice(), s.segments.as_slice()))
    }

    /// Re-extracts the whole corpus through `runner` **without
    /// resplitting** (one relation per shard). Incremental on both
    /// tiers (see the [module docs](self)): shards unchanged since the
    /// last extraction under this spanner reuse their memoized relation
    /// without touching the runner (`stats.docs_reused` counts them),
    /// and within the dirty shards a shared [`crate::SegmentCache`]
    /// attached to the runner answers the segments whose content is
    /// unchanged. `stats.docs` covers every shard; the remaining run
    /// statistics (segments, bytes, batches, engine counters) account
    /// the dirty shards actually streamed.
    pub fn extract(&self, runner: &CorpusRunner) -> CorpusResult {
        let mut table = self.memo.lock();
        let memo = memo_slot(
            &mut table.corpus,
            runner.spanner_cache_id(),
            self.shards.len(),
        );
        let dirty = dirty_shards(&self.shards, memo);
        let mut result = runner.run_presplit(dirty.iter().map(|&i| {
            (
                self.shards[i].bytes.as_slice(),
                self.shards[i].segments.as_slice(),
            )
        }));
        result.relations = assemble(
            &self.shards,
            memo,
            &dirty,
            std::mem::take(&mut result.relations),
        );
        result.stats.docs = self.shards.len();
        result.stats.docs_reused = self.shards.len() - dirty.len();
        result
    }

    /// [`CorpusHandle::extract`] for a fused fleet: the memo key is the
    /// fleet's member identity, the memoized unit is the per-shard
    /// `Vec<SpanRelation>` (one relation per member).
    pub fn extract_fleet(&self, runner: &FleetRunner) -> FleetResult {
        let fleet = runner.fleet();
        // Fold the members' stable ids into one memo key (FNV-1a).
        let mut key = 0xcbf29ce484222325u64;
        for i in 0..fleet.num_members() {
            key = (key ^ fleet.member(i).cache_id()).wrapping_mul(0x100000001b3);
        }
        let mut table = self.memo.lock();
        let memo = memo_slot(&mut table.fleet, key, self.shards.len());
        let dirty = dirty_shards(&self.shards, memo);
        let mut result = runner.run_presplit(dirty.iter().map(|&i| {
            (
                self.shards[i].bytes.as_slice(),
                self.shards[i].segments.as_slice(),
            )
        }));
        result.relations = assemble(
            &self.shards,
            memo,
            &dirty,
            std::mem::take(&mut result.relations),
        );
        result.stats.docs = self.shards.len();
        result.stats.docs_reused = self.shards.len() - dirty.len();
        result
    }
}

/// Shard indices whose memoized result is missing or stale (ascending).
fn dirty_shards<R>(shards: &[Shard], memo: &SpannerMemo<R>) -> Vec<usize> {
    (0..shards.len())
        .filter(|&i| {
            memo.per_shard[i]
                .as_ref()
                .is_none_or(|(g, _)| *g != shards[i].generation)
        })
        .collect()
}

/// Rebuilds the full per-shard result vector: freshly-run relations for
/// the dirty shards (memoizing each at the shard's current generation),
/// memoized relations cloned out for the clean ones. `fresh` is
/// index-aligned with `dirty` (the runner preserves input order).
fn assemble<R: Clone>(
    shards: &[Shard],
    memo: &mut SpannerMemo<R>,
    dirty: &[usize],
    fresh: Vec<R>,
) -> Vec<R> {
    debug_assert_eq!(dirty.len(), fresh.len());
    let mut fresh = fresh.into_iter();
    let mut next_dirty = dirty.iter().copied().peekable();
    shards
        .iter()
        .enumerate()
        .map(|(i, shard)| {
            if next_dirty.peek() == Some(&i) {
                next_dirty.next();
                let rel = fresh.next().expect("one result per dirty shard");
                memo.per_shard[i] = Some((shard.generation, Arc::new(rel.clone())));
                rel
            } else {
                let (_, rel) = memo.per_shard[i].as_ref().expect("clean shard is memoized");
                R::clone(rel)
            }
        })
        .collect()
}

/// Streams `bytes[*fed..target]` into `st` in [`SYNC_STEP`] chunks,
/// collecting emitted segments and recording sync points from the
/// splitter's per-byte quiescence tracker
/// ([`SplitterState::last_quiescent`]): after each chunk, the latest
/// quiescent position inside it (window-local, interior, strictly
/// positive) is recorded — at most one sync per [`SYNC_STEP`], which
/// bounds sync density without requiring quiescence to coincide with a
/// chunk boundary (for delimiter splitters it almost never does).
fn feed_to(
    st: &mut SplitterState,
    bytes: &[u8],
    fed: &mut usize,
    target: usize,
    segments: &mut Vec<Span>,
    syncs: &mut Vec<usize>,
) {
    while *fed < target {
        let end = (*fed + SYNC_STEP).min(target);
        segments.extend(st.push(&bytes[*fed..end]));
        *fed = end;
        let q = st.last_quiescent();
        if q > 0 && q < bytes.len() && syncs.last().is_none_or(|&s| s < q) {
            syncs.push(q);
        }
    }
}

/// Fully splits `bytes`, recording sync points (the initial-split and
/// shard-replacement path).
fn split_recording_syncs(splitter: &CompiledSplitter, bytes: &[u8]) -> (Vec<Span>, Vec<usize>) {
    let mut st = splitter.stream();
    let mut segments = Vec::new();
    let mut syncs = Vec::new();
    let mut fed = 0usize;
    feed_to(
        &mut st,
        bytes,
        &mut fed,
        bytes.len(),
        &mut segments,
        &mut syncs,
    );
    segments.extend(st.finish());
    (segments, syncs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusRunnerConfig;
    use crate::engine::ExecSpanner;
    use crate::segcache::SegmentCache;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;
    use std::sync::Arc;

    fn handle_of(shards: &[&[u8]]) -> CorpusHandle {
        CorpusHandle::from_shards(
            splitter::sentences().compile(),
            shards.iter().map(|s| s.to_vec()),
        )
    }

    /// The maintained segmentation must equal a from-scratch split of
    /// the current bytes — the handle's core invariant.
    fn assert_consistent(h: &CorpusHandle) {
        let compiled = splitter::sentences().compile();
        for i in 0..h.num_shards() {
            assert_eq!(
                h.segments(i),
                compiled.split(h.shard_bytes(i)).as_slice(),
                "shard {i}: {:?}",
                String::from_utf8_lossy(h.shard_bytes(i))
            );
        }
    }

    fn big_shard() -> Vec<u8> {
        (0..500)
            .map(|i| format!("sentence number {i} with words. "))
            .collect::<String>()
            .into_bytes()
    }

    #[test]
    fn initial_split_matches_batch() {
        let h = handle_of(&[b"aa bb. cc dd. tail", b"", b"no delimiter"]);
        assert_consistent(&h);
        assert_eq!(h.num_shards(), 3);
        assert!(h.total_segments() >= 3);
    }

    #[test]
    fn point_edit_resplits_small_window_and_reuses_suffix() {
        let mut h = handle_of(&[&big_shard()]);
        let before = h.segments(0).len();
        // Edit a few bytes in the middle of the shard.
        let mid = h.shard_bytes(0).len() / 2;
        let stats = h.edit(0, mid..mid + 5, b"EDIT");
        assert_consistent(&h);
        assert!(
            stats.converged,
            "a sync-dense splitter must converge: {stats:?}"
        );
        assert!(
            stats.resplit_bytes <= 4 * SYNC_STEP,
            "window should be local to the edit: {stats:?}"
        );
        assert!(stats.segments_reused_prefix > 0);
        assert!(stats.segments_reused_suffix > 0);
        assert!(h.segments(0).len() >= before - 3);
    }

    #[test]
    fn append_resplits_only_the_tail() {
        let mut h = handle_of(&[&big_shard()]);
        let stats = h.append(0, b"appended tail. and more");
        assert_consistent(&h);
        assert!(
            stats.window_start > h.shard_bytes(0).len() / 2,
            "append must not rewind to the front: {stats:?}"
        );
        assert!(stats.segments_reused_prefix > 0);
    }

    #[test]
    fn replace_shard_and_push_shard() {
        let mut h = handle_of(&[b"aa bb. cc", b"dd ee. ff"]);
        let stats = h.replace_shard(1, b"entirely new. content here".to_vec());
        assert!(!stats.converged);
        assert_eq!(stats.segments_reused_prefix, 0);
        let i = h.push_shard(b"third shard. appended".to_vec());
        assert_eq!(i, 2);
        assert_consistent(&h);
    }

    #[test]
    fn edits_at_boundaries_and_degenerate_ranges() {
        let mut h = handle_of(&[b"aa bb. cc dd. ee ff"]);
        h.edit(0, 0..0, b"front insert. "); // insert at start
        assert_consistent(&h);
        let len = h.shard_bytes(0).len();
        h.edit(0, len..len, b" back"); // insert at end
        assert_consistent(&h);
        h.edit(0, 3..10, b""); // pure delete
        assert_consistent(&h);
        h.edit(0, 0..h.shard_bytes(0).len(), b"gone. all new"); // full rewrite
        assert_consistent(&h);
    }

    #[test]
    fn extract_matches_full_rescan_and_hits_cache() {
        let pat = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
        let spanner = ExecSpanner::compile(&pat);
        let cache = Arc::new(SegmentCache::new(1 << 14));
        let runner = CorpusRunner::new(
            spanner.clone(),
            splitter::sentences().compile(),
            CorpusRunnerConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .with_segment_cache(cache.clone());
        let full_runner = CorpusRunner::new(
            spanner,
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        );

        let shard: Vec<u8> = (0..200)
            .map(|i| format!("words aa{i} here. "))
            .collect::<String>()
            .into_bytes();
        let mut h = CorpusHandle::from_shards(splitter::sentences().compile(), [shard]);
        let first = h.extract(&runner);
        cache.reset_stats(); // count only the post-edit re-extraction
        let mid = h.shard_bytes(0).len() / 2;
        h.edit(0, mid..mid + 3, b"aaa");
        let second = h.extract(&runner);
        // Differential: presplit extraction equals streaming the edited
        // bytes from scratch.
        let full = full_runner.run_slices(&[h.shard_bytes(0)]);
        assert_eq!(second.relations, full.relations);
        assert_ne!(
            second.relations, first.relations,
            "the edit changed matches"
        );
        let s = cache.stats();
        assert!(
            s.hits > s.misses,
            "re-extraction after a point edit must be mostly cache hits: {s:?}"
        );
    }

    #[test]
    fn extract_memo_reuses_clean_shards() {
        let pat = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
        let spanner = ExecSpanner::compile(&pat);
        let cache = Arc::new(SegmentCache::new(1 << 14));
        let runner = CorpusRunner::new(
            spanner,
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        )
        .with_segment_cache(cache.clone());
        let shards: Vec<Vec<u8>> = (0..4)
            .map(|s| {
                (0..50)
                    .map(|i| format!("shard {s} sentence aa{i}. "))
                    .collect::<String>()
                    .into_bytes()
            })
            .collect();
        let mut h = CorpusHandle::from_shards(splitter::sentences().compile(), shards);

        let cold = h.extract(&runner);
        assert_eq!(cold.stats.docs_reused, 0);
        assert_eq!(cold.stats.docs, 4);

        // Unchanged corpus: every shard comes from the memo — the
        // runner (and thus the segment cache) is never consulted.
        cache.reset_stats();
        let warm = h.extract(&runner);
        assert_eq!(warm.relations, cold.relations);
        assert_eq!(warm.stats.docs_reused, 4);
        assert_eq!(warm.stats.segments, 0);
        assert_eq!(cache.stats(), crate::SegCacheStats::default());

        // Edit one shard: exactly that shard is re-run; within it the
        // segment cache answers everything outside the dirty window.
        h.edit(0, 0..0, b"front aaa insert. ");
        let third = h.extract(&runner);
        assert_eq!(third.stats.docs_reused, 3);
        assert_eq!(third.relations[1..], cold.relations[1..]);
        assert_ne!(third.relations[0], cold.relations[0]);

        // The full rescan still matches — the memo is speed-only.
        let full = CorpusRunner::new(
            ExecSpanner::compile(&pat),
            splitter::sentences().compile(),
            CorpusRunnerConfig::default(),
        )
        .run_presplit(h.presplit_docs());
        assert_eq!(third.relations, full.relations);
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use splitc_spanner::Splitter;

    #[test]
    fn empty_segment_at_left_frontier() {
        // A splitter that emits an empty span [i,i> before each 'a'.
        let s = Splitter::parse(".*x{}a.*").unwrap();
        let compiled = s.compile();
        let mut h = CorpusHandle::from_shards(compiled.clone(), [b"bbabb".to_vec()]);
        // Sanity: maintained segmentation matches batch split.
        assert_eq!(h.segments(0), compiled.split(h.shard_bytes(0)).as_slice(), "initial");
        // Insert at position 2 (just before the 'a'), displacing it.
        h.edit(0, 2..2, b"c");
        let full = compiled.split(h.shard_bytes(0));
        assert_eq!(
            h.segments(0),
            full.as_slice(),
            "after edit: bytes {:?}",
            String::from_utf8_lossy(h.shard_bytes(0))
        );
    }

    #[test]
    fn empty_segment_at_recorded_sync() {
        let s = Splitter::parse(".*x{}a.*").unwrap();
        let compiled = s.compile();
        // 'a' exactly at position 2048 (a chunk boundary, where a sync
        // is recorded); everything else inert 'b'.
        let mut doc = vec![b'b'; 3000];
        doc[2048] = b'a';
        let mut h = CorpusHandle::from_shards(compiled.clone(), [doc]);
        assert_eq!(h.segments(0), compiled.split(h.shard_bytes(0)).as_slice(), "initial");
        // Edit well past the empty segment; left frontier = 2048.
        h.edit(0, 2500..2501, b"X");
        let full = compiled.split(h.shard_bytes(0));
        assert_eq!(h.segments(0), full.as_slice(), "after edit");
    }
}
