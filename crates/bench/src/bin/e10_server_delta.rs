//! E10 — serving incremental maintenance: corpus resources vs
//! re-streaming the corpus per request.
//!
//! The server's corpus resources (`PUT /corpus/{id}` + `POST
//! /corpus/{id}/delta`) exist so that millions of re-queries over a
//! slightly-changing corpus hit the process-wide segment cache instead
//! of shipping and re-extracting every byte per request. This
//! benchmark boots an in-process [`splitc_server::Server`] and drives
//! a Wikipedia-model edit loop (`splitc_textgen::edits`) both ways
//! over real HTTP:
//!
//! * `e10_server_delta/delta` — `POST .../delta` followed by `POST
//!   /extract {"corpus": id}`: the server resplits only the dirty
//!   window and re-evaluates only fresh segments (everything else is a
//!   segment-cache hit). `scale` = segments maintained; the row's wall
//!   time is the average per edit across the script.
//! * `e10_server_delta/rescan` — the certificate-less protocol: the
//!   client ships the whole edited corpus as inline `"docs"` and the
//!   server re-extracts it from scratch. Same edits, same final
//!   relations (asserted byte-identical per edit).
//!
//! The `--engine` flag selects the registered spanner's engine.

use splitc_bench::{bench_json, engine_arg, ms, scaled, time, x, Table};
use splitc_server::{Client, Json, Server, ServerConfig};
use splitc_textgen::edits::{edit_script, Edit};
use splitc_textgen::{wiki_corpus, CorpusConfig};
use std::time::Duration;

/// Independently-editable shards, matching the t8 corpus shape.
const SHARDS: usize = 8;
/// Edits per measured script.
const EDITS: usize = 10;

/// A sentence-local entity-run extractor the certification cache
/// accepts against the sentences splitter.
const PATTERN: &str = ".*x{ab+}.*";

fn post(client: &mut Client, path: &str, body: Json) -> Json {
    let (status, resp) = client.post(path, &body).expect("request");
    assert_eq!(status, 200, "POST {path}: {resp}");
    resp
}

fn id_of(resp: &Json) -> String {
    resp.get("id")
        .and_then(Json::as_str)
        .expect("id field")
        .to_string()
}

fn relations_of(resp: &Json) -> String {
    resp.get("relations").expect("relations field").to_string()
}

fn segments_of(resp: &Json) -> f64 {
    resp.get("stats")
        .and_then(|s| s.get("segments"))
        .and_then(Json::as_u64)
        .expect("stats.segments") as f64
}

fn docs_json(shards: &[Vec<u8>]) -> Json {
    Json::Arr(
        shards
            .iter()
            .map(|s| Json::str(std::str::from_utf8(s).expect("ascii corpus")))
            .collect(),
    )
}

fn main() {
    let engine = engine_arg();
    let bytes = scaled(2 << 20);
    let per_shard = (bytes / SHARDS).max(1024);
    let mut shards: Vec<Vec<u8>> = (0..SHARDS)
        .map(|i| {
            wiki_corpus(&CorpusConfig {
                target_bytes: per_shard,
                seed: 0xE10 + i as u64,
                ..CorpusConfig::default()
            })
        })
        .collect();
    let lens: Vec<usize> = shards.iter().map(Vec::len).collect();

    let server = Server::spawn(ServerConfig {
        port: 0,
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let mut client = Client::new(server.addr());

    let splitter = id_of(&post(
        &mut client,
        "/splitters",
        Json::obj(vec![("builtin", Json::str("sentences"))]),
    ));
    let spanner = id_of(&post(
        &mut client,
        "/spanners",
        Json::obj(vec![
            ("pattern", Json::str(PATTERN)),
            ("engine", Json::str(engine.name())),
        ]),
    ));

    let (status, resp) = client
        .put(
            "/corpus/bench",
            &Json::obj(vec![
                ("splitter", Json::str(&splitter)),
                ("shards", docs_json(&shards)),
            ]),
        )
        .expect("put corpus");
    assert_eq!(status, 200, "PUT /corpus/bench: {resp}");

    let by_corpus = Json::obj(vec![
        ("spanner", Json::str(&spanner)),
        ("corpus", Json::str("bench")),
    ]);
    // Cold pass: certifies the pair and populates the segment cache.
    let (cold_resp, cold) = time(|| post(&mut client, "/extract", by_corpus.clone()));
    let segments = segments_of(&cold_resp);

    let script = edit_script(0x5E10, &lens, EDITS);
    let mut delta_total = Duration::ZERO;
    let mut rescan_total = Duration::ZERO;
    for e in &script {
        e.apply(&mut shards);
        let delta_body = match e {
            Edit::Point {
                shard,
                start,
                end,
                text,
            } => Json::obj(vec![
                ("op", Json::str("edit")),
                ("shard", Json::num(*shard as u32)),
                ("start", Json::num(*start as u32)),
                ("end", Json::num(*end as u32)),
                ("text", Json::str(std::str::from_utf8(text).expect("ascii"))),
            ]),
            Edit::Append { shard, text } => Json::obj(vec![
                ("op", Json::str("append")),
                ("shard", Json::num(*shard as u32)),
                ("text", Json::str(std::str::from_utf8(text).expect("ascii"))),
            ]),
            Edit::ReplaceShard { shard, text } => Json::obj(vec![
                ("op", Json::str("replace_shard")),
                ("shard", Json::num(*shard as u32)),
                ("text", Json::str(std::str::from_utf8(text).expect("ascii"))),
            ]),
        };
        let (via_delta, t_delta) = time(|| {
            post(&mut client, "/corpus/bench/delta", delta_body);
            post(&mut client, "/extract", by_corpus.clone())
        });
        delta_total += t_delta;

        let rescan_body = Json::obj(vec![
            ("spanner", Json::str(&spanner)),
            ("splitter", Json::str(&splitter)),
            ("docs", docs_json(&shards)),
        ]);
        let (via_docs, t_rescan) = time(|| post(&mut client, "/extract", rescan_body));
        rescan_total += t_rescan;
        assert_eq!(
            relations_of(&via_delta),
            relations_of(&via_docs),
            "delta-maintained extraction equals shipping the edited corpus"
        );
    }
    let delta_avg = delta_total / EDITS as u32;
    let rescan_avg = rescan_total / EDITS as u32;

    let total: usize = shards.iter().map(Vec::len).sum();
    let mut t = Table::new(
        &format!(
            "E10 — corpus deltas vs per-request rescan, {:.1} MiB / {segments:.0} segments ({})",
            total as f64 / (1 << 20) as f64,
            engine.name()
        ),
        &["metric", "value"],
    );
    t.row(&["cold extract (cache fill)".into(), ms(cold)]);
    t.row(&["avg delta + extract/edit".into(), ms(delta_avg)]);
    t.row(&["avg inline-docs rescan/edit".into(), ms(rescan_avg)]);
    t.row(&[
        "delta speedup".into(),
        x(rescan_avg.as_secs_f64() / delta_avg.as_secs_f64().max(1e-12)),
    ]);
    t.print();

    bench_json(
        "e10_server_delta/delta",
        engine.name(),
        total,
        segments,
        delta_avg,
        0,
    );
    bench_json(
        "e10_server_delta/rescan",
        engine.name(),
        total,
        segments,
        rescan_avg,
        0,
    );
}
