//! A content-addressed certification cache: certify once, reuse the
//! verdict on every later request.
//!
//! The operational story of the paper is that certification is a
//! *service-side, one-time* cost: once `P = P_S ∘ S` is certified for a
//! `(splitter, spanner)` pair, every subsequent extraction request can
//! be parallelized safely without re-running the (PSPACE-complete in
//! general) decision procedure. [`CertCache`] is that memo table —
//! keyed by **content hashes** of the participating artifacts, so two
//! registrations of byte-identical patterns share one verdict no matter
//! when, or from which connection, they arrive.
//!
//! The cache stores full outcomes ([`Verdict`] including
//! counterexamples, or the per-pair [`CertError`]), never just a
//! boolean: a cached *failure* replays its witness for free, and a
//! cached interface error keeps re-registrations cheap too.
//!
//! Keys are caller-computed (see [`content_hash`]) rather than derived
//! from the automata, so the cache composes with any registry notion of
//! identity — a server hashes the source pattern text, a build system
//! might hash a serialized automaton. Collisions at 64 bits are
//! vanishingly unlikely for registry-sized populations; a paranoid
//! caller can fold both artifacts' lengths into the hashed material.

use crate::error::CertError;
use crate::split_correctness::Verdict;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The cache key: `(spanner content hash, splitter content hash)`.
pub type CertKey = (u64, u64);

/// A cached certification outcome.
pub type CachedVerdict = Result<Verdict, CertError>;

/// Hit/miss counters of a [`CertCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run certification.
    pub misses: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

impl CertCacheStats {
    /// Fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe, content-hash-keyed store of certification verdicts.
///
/// ```
/// use splitc_core::cache::{content_hash, CertCache};
/// use splitc_core::split_correct;
/// use splitc_spanner::{splitter, Rgx};
///
/// let cache = CertCache::new();
/// let p = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
/// let s = splitter::sentences();
/// let key = (content_hash(b".*x{a+}.*"), content_hash(b"sentences"));
///
/// // First lookup certifies; the second is a pure map probe.
/// let (v1, cached1) = cache.get_or_certify(key, || split_correct(&p, &p, &s));
/// let (v2, cached2) = cache.get_or_certify(key, || unreachable!("cached"));
/// assert!(!cached1 && cached2);
/// assert_eq!(v1.unwrap().holds(), v2.unwrap().holds());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default)]
pub struct CertCache {
    map: Mutex<HashMap<CertKey, CachedVerdict>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CertCache {
    /// An empty cache.
    pub fn new() -> CertCache {
        CertCache::default()
    }

    /// Pure lookup: the cached outcome for `key`, if any. Counts a hit
    /// or miss.
    pub fn get(&self, key: CertKey) -> Option<CachedVerdict> {
        let found = self.lock().get(&key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// The memoizing entry point: returns the cached outcome for `key`,
    /// or runs `certify`, stores its outcome, and returns it. The
    /// second component is `true` iff the outcome came from the cache.
    ///
    /// `certify` runs **outside** the lock (certification dominates any
    /// conceivable contention); two threads racing the same cold key at
    /// worst certify twice, and the first stored outcome wins — so
    /// repeated lookups always observe one stable verdict.
    pub fn get_or_certify(
        &self,
        key: CertKey,
        certify: impl FnOnce() -> CachedVerdict,
    ) -> (CachedVerdict, bool) {
        if let Some(v) = self.get(key) {
            return (v, true);
        }
        let outcome = certify();
        let stored = self
            .lock()
            .entry(key)
            .or_insert_with(|| outcome.clone())
            .clone();
        (stored, false)
    }

    /// Seeds the cache with an already-computed outcome without touching
    /// the hit/miss counters — the batch path: probe many keys with
    /// [`CertCache::get`], certify the misses together (e.g. through
    /// `certify_many`), then insert each outcome. An existing entry for
    /// `key` wins (same first-store-wins policy as
    /// [`CertCache::get_or_certify`]); the stored outcome is returned.
    pub fn insert(&self, key: CertKey, outcome: CachedVerdict) -> CachedVerdict {
        self.lock().entry(key).or_insert(outcome).clone()
    }

    /// Hit/miss/size counters.
    pub fn stats(&self) -> CertCacheStats {
        CertCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    /// Drops every stored verdict (counters are kept — they describe
    /// lifetime traffic, not current contents).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<CertKey, CachedVerdict>> {
        // Certification closures run outside the lock and map ops don't
        // panic, so poisoning is unreachable; recover instead of
        // propagating a second panic out of a stats call.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The canonical content hash used by registries and cache keys:
/// FNV-1a over the raw bytes, 64-bit. Stable across processes and
/// platforms (no randomized state), so hashes can appear in wire
/// formats and logs.
pub fn content_hash(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_correct;
    use splitc_spanner::{splitter, Rgx};

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b"ab"), content_hash(b"abc"));
    }

    #[test]
    fn caches_holds_fails_and_errors() {
        let cache = CertCache::new();
        let s = splitter::sentences();
        let local = Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap();
        let crossing = Rgx::parse(".*x{a\\.a}.*").unwrap().to_vsa().unwrap();
        let othervar = Rgx::parse(".*y{a+}.*").unwrap().to_vsa().unwrap();

        let cases: [(&str, &splitc_spanner::Vsa); 3] = [
            ("local", &local),
            ("crossing", &crossing),
            ("othervar", &othervar),
        ];
        for (name, p) in cases {
            let key = (content_hash(name.as_bytes()), content_hash(b"sentences"));
            // `othervar` vs `local` is a variable-mismatch CertError.
            let target = if name == "othervar" { &local } else { p };
            let (v_cold, cached_cold) = cache.get_or_certify(key, || split_correct(p, target, &s));
            assert!(!cached_cold);
            let (v_warm, cached_warm) =
                cache.get_or_certify(key, || unreachable!("must be cached"));
            assert!(cached_warm);
            assert_eq!(v_cold, v_warm, "{name}");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 3);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);

        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().hits, 3, "counters describe lifetime traffic");
    }

    #[test]
    fn insert_seeds_without_counting_and_first_store_wins() {
        let cache = CertCache::new();
        let stored = cache.insert((7, 7), Ok(Verdict::Holds));
        assert!(stored.unwrap().holds());
        assert_eq!(cache.stats().misses, 0, "insert is not a lookup");
        // Existing entry wins over a later insert.
        let stored = cache.insert((7, 7), Err(CertError::Invalid("late".into())));
        assert!(stored.unwrap().holds());
        let (v, cached) = cache.get_or_certify((7, 7), || unreachable!("seeded"));
        assert!(cached && v.unwrap().holds());
    }

    #[test]
    fn concurrent_cold_keys_converge() {
        use std::sync::atomic::AtomicUsize;
        let cache = CertCache::new();
        let runs = AtomicUsize::new(0);
        let key = (1, 2);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (v, _) = cache.get_or_certify(key, || {
                        runs.fetch_add(1, Ordering::Relaxed);
                        Ok(Verdict::Holds)
                    });
                    assert!(v.unwrap().holds());
                });
            }
        });
        // At least one certification ran; every thread saw the verdict.
        assert!(runs.load(Ordering::Relaxed) >= 1);
        assert_eq!(cache.stats().entries, 1);
    }
}
