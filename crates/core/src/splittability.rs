//! Splittability (paper §5.2).
//!
//! `P` is *splittable* by `S` when some split-spanner `P_S` satisfies
//! `P = P_S ∘ S`. For **disjoint** splitters the paper characterizes
//! splittability through the *canonical split-spanner* `P_S^can`
//! (Lemma 5.12): `P` is splittable by `S` iff `P = P_S^can ∘ S`, and
//! `P_S^can` is constructible in polynomial time (Prop. 5.9). The
//! decision procedure is therefore: build `P_S^can`, then run
//! split-correctness (Theorem 5.15; PSPACE-complete overall).
//!
//! The canonical split-spanner on a chunk document `d` outputs every
//! tuple `t` such that *some* context document `d′` has a split
//! producing `d` on which `P` outputs the shifted `t` — see the paper's
//! Example 5.10 for why disjointness is needed for canonicity.

use crate::error::CertError;
use crate::split_correctness::{split_correct, CounterExample, Verdict};
use crate::util;
use splitc_automata::nfa::{Nfa, StateId};
use splitc_spanner::ext::{ExtAlphabet, ExtSym};
use splitc_spanner::splitter::Splitter;
use splitc_spanner::vars::{VarOp, VarTable};
use splitc_spanner::vsa::Vsa;

/// Result of a splittability check.
#[derive(Debug, Clone)]
pub enum SplittabilityVerdict {
    /// `P` is splittable by `S`; the canonical split-spanner witnesses
    /// it (`P = witness ∘ S`).
    Splittable {
        /// The canonical split-spanner `P_S^can`.
        witness: Vsa,
    },
    /// Not splittable; the counterexample shows where `P` and
    /// `P_S^can ∘ S` disagree.
    NotSplittable(CounterExample),
}

impl SplittabilityVerdict {
    /// Whether `P` is splittable.
    pub fn is_splittable(&self) -> bool {
        matches!(self, SplittabilityVerdict::Splittable { .. })
    }
}

/// Constructs the canonical split-spanner `P_S^can` (Prop. 5.9):
/// on every chunk `d` it outputs `{t | ∃d′, s ∈ S(d′): d′_s = d and
/// t ≫ s ∈ P(d′)}`. Polynomial in `|P|·|S|`.
///
/// Construction (paper Appendix C, recast on ref-word NFAs): build
/// `P^x = P_Σ ·x⊢ P ·⊣x P_Σ` (three copies of `P`, the outer ones with
/// variable transitions removed, connected state-to-state by the
/// splitter-variable operations) and `S^{+V}` (`S` with self-loops for
/// all of `P`'s operations); intersect their ref-word languages; the
/// canonical split-spanner is the *middle part* — start states are the
/// targets of reachable `x⊢` edges, accepting states the sources of
/// co-reachable `⊣x` edges, with the `x` edges removed.
pub fn canonical_split_spanner(p: &Vsa, s: &Splitter) -> Vsa {
    // Merged variable table: SVars(P) + fresh splitter variable.
    let xname = util::fresh_var_name(p.vars(), "__split");
    let mut names: Vec<String> = p.vars().names().to_vec();
    names.push(xname.clone());
    let merged = VarTable::new(names).expect("fresh name");
    let x = merged.lookup(&xname).expect("just inserted");

    let mut masks = p.byte_masks();
    masks.extend(s.vsa().byte_masks());
    let ext = ExtAlphabet::from_masks(merged.clone(), &masks);

    let s_renamed = s
        .vsa()
        .replace_var_table(VarTable::new([xname]).expect("single"))
        .expect("splitter is unary");

    // P as raw ref-word NFA over the merged alphabet.
    let np = util::raw_ext_nfa(p, &ext);
    // P_Σ: byte transitions only.
    let p_sigma = bytes_only(&np, &ext);
    // P^x: copy1 (P_Σ) --x⊢--> copy2 (P) --⊣x--> copy3 (P_Σ).
    let n = np.num_states();
    let mut px = Nfa::new(ext.alphabet_size());
    for _ in 0..3 * n {
        px.add_state();
    }
    let c1 = |q: StateId| q;
    let c2 = |q: StateId| q + n as StateId;
    let c3 = |q: StateId| q + 2 * n as StateId;
    for q in 0..n as StateId {
        for &(sym, r) in p_sigma.transitions_from(q) {
            px.add_transition(c1(q), sym, c1(r));
            px.add_transition(c3(q), sym, c3(r));
        }
        for &r in p_sigma.eps_from(q) {
            px.add_eps(c1(q), c1(r));
            px.add_eps(c3(q), c3(r));
        }
        for &(sym, r) in np.transitions_from(q) {
            px.add_transition(c2(q), sym, c2(r));
        }
        for &r in np.eps_from(q) {
            px.add_eps(c2(q), c2(r));
        }
        px.add_transition(c1(q), ext.op_sym(VarOp::Open(x)), c2(q));
        px.add_transition(c2(q), ext.op_sym(VarOp::Close(x)), c3(q));
        px.set_final(c3(q), np.is_final(q));
    }
    for &st in np.starts() {
        px.add_start(c1(st));
    }

    // S^{+V}: S's raw NFA with self-loops for all P operations.
    let mut ns = util::raw_ext_nfa(&s_renamed, &ext);
    for q in 0..ns.num_states() as StateId {
        for v in p.vars().iter() {
            let mv = ext.vars().lookup(p.vars().name(v)).expect("merged table");
            ns.add_transition(q, ext.op_sym(VarOp::Open(mv)), q);
            ns.add_transition(q, ext.op_sym(VarOp::Close(mv)), q);
        }
    }

    // Intersection of the ref-word languages.
    let prod = px.remove_eps().intersect(&ns.remove_eps());

    // Middle part: start after reachable x⊢ edges, accept before
    // co-reachable ⊣x edges; drop the x edges.
    let open_sym = ext.op_sym(VarOp::Open(x));
    let close_sym = ext.op_sym(VarOp::Close(x));
    let reach = prod.reachable();
    let co = prod.co_reachable();
    let mut mid = Nfa::new(ext.alphabet_size());
    for _ in 0..prod.num_states() {
        mid.add_state();
    }
    let fresh_start = mid.add_state();
    mid.add_start(fresh_start);
    for q in 0..prod.num_states() as StateId {
        for &(sym, r) in prod.transitions_from(q) {
            if sym == open_sym {
                if reach[q as usize] {
                    mid.add_eps(fresh_start, r);
                }
            } else if sym == close_sym {
                if co[r as usize] {
                    mid.set_final(q, true);
                }
            } else {
                mid.add_transition(q, sym, r);
            }
        }
    }

    // Back to a classic VSet-automaton over SVars(P).
    let vsa_merged = Vsa::from_ext_nfa(&mid.trim(), &ext);
    let keep: Vec<&str> = p.vars().names().iter().map(String::as_str).collect();
    let (table, map) = project_table(vsa_merged.vars(), &keep);
    vsa_merged.rename_vars(table, &map).functionalize()
}

fn project_table(from: &VarTable, keep: &[&str]) -> (VarTable, splitc_spanner::vars::VarMap) {
    let ids: Vec<_> = keep
        .iter()
        .map(|n| from.lookup(n).expect("present"))
        .collect();
    from.project(&ids)
}

/// Removes non-byte symbol transitions, keeping ε.
fn bytes_only(nfa: &Nfa, ext: &ExtAlphabet) -> Nfa {
    let mut out = Nfa::new(nfa.alphabet_size());
    for _ in 0..nfa.num_states() {
        out.add_state();
    }
    for q in 0..nfa.num_states() as StateId {
        out.set_final(q, nfa.is_final(q));
        for &(sym, r) in nfa.transitions_from(q) {
            if matches!(ext.decode(sym), ExtSym::Class(_)) {
                out.add_transition(q, sym, r);
            }
        }
        for &r in nfa.eps_from(q) {
            out.add_eps(q, r);
        }
    }
    for &s in nfa.starts() {
        out.add_start(s);
    }
    out
}

/// Decides splittability of `P` by a **disjoint** splitter `S`
/// (Theorem 5.15): builds the canonical split-spanner and checks
/// `P = P_S^can ∘ S`. Errors when `S` is not disjoint — decidability for
/// general splitters is open (paper §8).
///
/// ```
/// use splitc_core::{splittable, SplittabilityVerdict};
/// use splitc_spanner::Rgx;
///
/// // Message-start lines: not *self*-splittable via the blank-line
/// // context, but splittable — the returned witness drops the context.
/// let p = Rgx::parse("(.*\\n\\n|)x{[a-z]+}(\\n.*|)").unwrap().to_vsa().unwrap();
/// let s = splitc_spanner::splitter::http_messages();
/// assert!(matches!(
///     splittable(&p, &s).unwrap(),
///     SplittabilityVerdict::Splittable { .. }
/// ));
/// ```
pub fn splittable(p: &Vsa, s: &Splitter) -> Result<SplittabilityVerdict, CertError> {
    if !s.is_disjoint() {
        return Err(CertError::UnsupportedSplitter(
            "splittability via the canonical split-spanner requires a disjoint \
             splitter (Lemma 5.12); decidability for general splitters is open"
                .into(),
        ));
    }
    let canonical = canonical_split_spanner(p, s);
    Ok(match split_correct(p, &canonical, s)? {
        Verdict::Holds => SplittabilityVerdict::Splittable { witness: canonical },
        Verdict::Fails(cex) => SplittabilityVerdict::NotSplittable(cex),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_spanner::eval::eval;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::span::Span;
    use splitc_spanner::splitter;
    use splitc_spanner::vars::VarId;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    #[test]
    fn canonical_matches_definition_pointwise() {
        // P^can_S(d) = {t | ∃d', s ∈ S(d'): d'_s = d, t ≫ s ∈ P(d')}.
        // P = sentence-local a-runs, S = sentences: on a chunk (no '.'),
        // the canonical spanner behaves like P.
        let p = vsa(".*x{a+}.*");
        let s = splitter::sentences();
        let can = canonical_split_spanner(&p, &s);
        // On chunk "baa": same outputs as P itself.
        assert_eq!(eval(&can, b"baa"), eval(&p, b"baa"));
        // A chunk containing '.' is never produced by the sentence
        // splitter, so the canonical spanner outputs nothing there.
        assert!(eval(&can, b"a.a").is_empty());
    }

    #[test]
    fn paper_example_http_first_line() {
        // P = request line after a blank line or at doc start; canonical
        // split spanner w.r.t. messages = first line of the chunk.
        let p = vsa("(.*\\n\\n|)x{[a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        let can = canonical_split_spanner(&p, &s);
        let rel = eval(&can, b"abc\ndef");
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(VarId(0)), Span::new(0, 3));
    }

    #[test]
    fn splittable_positive_and_witness_works() {
        let p = vsa("(.*\\n\\n|)x{[a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        match splittable(&p, &s).unwrap() {
            SplittabilityVerdict::Splittable { witness } => {
                // The witness split-spanner reproduces P through S on a
                // sample document.
                let doc = b"abc\nxy\n\ndef";
                let mut expected = Vec::new();
                for sp in s.split(doc) {
                    for t in eval(&witness, sp.slice(doc)).iter() {
                        expected.push(t.shift(sp));
                    }
                }
                let composed = splitc_spanner::tuple::SpanRelation::from_tuples(expected);
                assert_eq!(composed, eval(&p, doc));
            }
            SplittabilityVerdict::NotSplittable(cex) => {
                panic!("should be splittable, got {cex}")
            }
        }
    }

    #[test]
    fn splittable_negative() {
        // A cross-sentence extractor is not splittable by sentences.
        let p = vsa(".*x{a\\.a}.*");
        let s = splitter::sentences();
        match splittable(&p, &s).unwrap() {
            SplittabilityVerdict::NotSplittable(_) => {}
            SplittabilityVerdict::Splittable { .. } => {
                panic!("crossing extractor must not be splittable")
            }
        }
    }

    #[test]
    fn splittable_but_not_self_splittable() {
        // P needs the blank-line context, so P ≠ P ∘ S; yet P is
        // splittable via the canonical spanner... note P must still
        // satisfy the cover condition. "Line after blank line" tuples on
        // chunks: P on a chunk never matches (no blank line), so
        // P ∘ S = ∅ ≠ P. The canonical spanner drops the context.
        let p = vsa(".*\\n\\nx{[a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        assert!(!crate::self_splittable(&p, &s).unwrap().holds());
        // P is NOT fully splittable either: P misses doc-start lines, but
        // the canonical spanner (first-line-of-chunk) would also fire on
        // the first message. Verify the verdict matches the brute-force
        // comparison on a sample.
        let verdict = splittable(&p, &s).unwrap();
        assert!(!verdict.is_splittable());
    }

    #[test]
    fn nondisjoint_splitter_is_rejected() {
        let p = vsa(".*x{a}.*");
        assert!(splittable(&p, &splitter::ngrams(2)).is_err());
    }

    #[test]
    fn paper_example_5_8_canonical_on_nondisjoint() {
        // Example 5.10: with the non-disjoint splitter of Example 5.8 the
        // canonical construction over-produces. We only verify the
        // *construction* (Prop. 5.9 does not require disjointness for
        // building the automaton): P = a y{b} b, S = x{ab}b + a x{bb}.
        let p = vsa("a(y{b})b");
        let s = Splitter::parse("x{ab}b|a(x{bb})").unwrap();
        let can = canonical_split_spanner(&p, &s);
        // Pcan on "ab" = {y = [2,3⟩ (1-based) → [1,2)}; on "bb" = {[0,1)}.
        let r_ab = eval(&can, b"ab");
        assert_eq!(r_ab.len(), 1);
        assert_eq!(r_ab.tuples()[0].get(VarId(0)), Span::new(1, 2));
        let r_bb = eval(&can, b"bb");
        assert_eq!(r_bb.len(), 1);
        assert_eq!(r_bb.tuples()[0].get(VarId(0)), Span::new(0, 1));
        // Noted erratum: the paper's Example 5.10 computes
        // (Pcan ∘ S)("abb") = {[1,2⟩,[2,3⟩,[3,4⟩} by unioning
        // Pcan(ab) ∪ Pcan(bb) for *both* splits. Under the composition
        // as defined in §3 (evaluate on the chunk content d_s), the split
        // [1,3⟩ has content "ab" and [2,4⟩ has content "bb", so
        // (Pcan ∘ S)("abb") = {[2,3⟩} = P("abb") — for this instance the
        // composition happens to coincide with P.
        let composed = splitc_spanner::splitter::compose(&can, &s);
        let rel = eval(&composed, b"abb");
        assert_eq!(rel, eval(&p, b"abb"));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn nondisjoint_canonical_overproduces_with_same_content_splits() {
        // The phenomenon Example 5.10 is after (Pcan ∘ S ⊄ P for
        // non-disjoint S) does occur when two *overlapping splits share
        // the same content*: P = y{a}aa, S = x{aa}a + a x{aa} on "aaa".
        // Both splits have content "aa"; Pcan("aa") = {y=[0,1)} (via the
        // first split), and re-shifting it through the second split
        // fabricates y=[1,2) ∉ P("aaa").
        let p = vsa("y{a}aa");
        let s = Splitter::parse("x{aa}a|a(x{aa})").unwrap();
        assert!(!s.is_disjoint());
        let can = canonical_split_spanner(&p, &s);
        let r = eval(&can, b"aa");
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(VarId(0)), Span::new(0, 1));
        let composed = splitc_spanner::splitter::compose(&can, &s);
        let rel = eval(&composed, b"aaa");
        assert_eq!(rel.len(), 2, "fabricated tuple appears");
        assert_eq!(eval(&p, b"aaa").len(), 1);
        // Hence Pcan ∘ S ⊄ P: the converse inclusion of Lemma 5.12 truly
        // needs disjointness.
        assert!(!splitc_spanner::spanner_contains(&composed, &p)
            .unwrap()
            .holds());
    }

    #[test]
    fn lemma_5_14_canonical_is_smallest() {
        // If P = P_S ∘ S with S disjoint, then P^can_S ⊆ P_S.
        let p = vsa("(.*\\n\\n|)x{[a-z]+}(\\n.*|)");
        let ps = vsa("x{[a-z]+}(\\n.*|)");
        let s = splitter::http_messages();
        assert!(crate::split_correct(&p, &ps, &s).unwrap().holds());
        let can = canonical_split_spanner(&p, &s);
        assert!(splitc_spanner::spanner_contains(&can, &ps).unwrap().holds());
    }
}
