//! Regular preconditions (paper §7.2): when a spanner is *not*
//! splittable outright, a regular filter on the input documents may
//! restore split-correctness — and Lemma 7.5 says the minimal candidate
//! filter is always `L_P = {d | P(d) ≠ ∅}`.
//!
//! ```sh
//! cargo run --release --example regular_preconditions
//! ```

use split_correctness::core::filters::{
    lp_language, self_splittable_with_filter, FilterVerdict, FilteredSplitter,
};
use split_correctness::prelude::*;
use splitc_spanner::eval::eval;

fn main() {
    // P extracts the token of single-token documents (a format check).
    let p = Rgx::parse("x{[a-z]+}").unwrap().to_vsa().unwrap();
    let s = splitters::sentences();

    println!("P = x{{[a-z]+}} (single-token documents only)");
    match self_splittable(&p, &s).unwrap() {
        Verdict::Fails(cex) => println!(
            "plain self-splittability fails — witness doc {:?}",
            String::from_utf8_lossy(&cex.doc)
        ),
        Verdict::Holds => unreachable!(),
    }

    // With a regular filter the property is restored (Theorem 7.6): the
    // library tests the minimal filter L_P and returns it.
    match self_splittable_with_filter(&p, &s).unwrap() {
        FilterVerdict::HoldsWith { filter } => {
            println!("✓ self-splittable with a regular filter (L_P)");
            for doc in [b"abc".as_slice(), b"ab.cd", b"ab cd"] {
                println!(
                    "  {:?} ∈ L_P? {}",
                    String::from_utf8_lossy(doc),
                    !eval(&filter, doc).is_empty()
                );
            }
        }
        FilterVerdict::Fails(cex) => println!("no filter works: {cex}"),
    }

    // The filtered splitter S[L_P] is an ordinary splitter (§7.2) and can
    // be materialized and executed.
    let filtered = FilteredSplitter::new(s, lp_language(&p)).unwrap();
    let mat = filtered.to_splitter();
    println!(
        "materialized S[L_P]: splits \"abc\" into {:?}, \"ab.cd\" into {:?}",
        mat.split(b"abc"),
        mat.split(b"ab.cd"),
    );
}
