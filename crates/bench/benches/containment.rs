//! Criterion microbenchmarks for containment (supports T1): dfVSA
//! containment (polynomial, Thm 4.3) vs the exponential union
//! universality gadget (Thm 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use splitc_automata::ops;
use splitc_bench::families::{chain_extractor, mod_prime_union_nfa, unary_sigma_star};
use splitc_spanner::spanner_contains;

fn bench_dfvsa_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfvsa_containment");
    group.sample_size(10);
    for k in [8usize, 32, 128] {
        let a = chain_extractor(k).determinize();
        let b = chain_extractor(k).determinize();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| spanner_contains(&a, &b).unwrap())
        });
    }
    group.finish();
}

fn bench_union_universality(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_universality");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let union = mod_prime_union_nfa(n);
        let sigma = unary_sigma_star();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::contains(&sigma, &union))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dfvsa_containment, bench_union_universality);
criterion_main!(benches);
