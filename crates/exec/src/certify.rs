//! Batch certification of spanner/splitter fleets.
//!
//! Production deployments do not certify one `(P, P_S, S)` triple at a
//! time: a corpus pipeline ships a *fleet* of extractors that all ride
//! the same splitter, and every pair must be certified split-correct
//! **before** the corpus run starts (the certificate is what makes
//! [`crate::CorpusRunner`]'s output equal whole-document evaluation).
//! [`certify_many`] is the batch entry point, shaped like the corpus
//! runner: a worker pool over indexed tasks, deterministic output
//! order, and a stats block.
//!
//! Two levers make the batch cheaper than `pairs.len()` independent
//! [`splitc_core::split_correct`] calls:
//!
//! * **Memoized composition.** The polynomial-size composed spanner
//!   `P_S ∘ S` (Lemma C.2) depends only on `P_S` and the shared
//!   splitter, so it is built once per distinct split-spanner index and
//!   reused across every pair (and every worker) through a shared
//!   cache; [`CertifyStats`] reports hit/miss counters.
//! * **Fast-path routing.** Splitter-level preconditions of the
//!   Theorem 5.7 polynomial path (functionality, determinism,
//!   disjointness) are checked once per batch, spanner-level ones once
//!   per distinct spanner; eligible pairs take
//!   [`splitc_core::split_correct_df`]. Its `Holds` verdicts are exact
//!   (the pointwise check is stronger than `P = P_S ∘ S`) and accepted
//!   as-is; its `Fails` verdicts can be spurious on the documented
//!   boundary-empty-span corner, so they — like declined pairs — are
//!   confirmed through the general (antichain) engine. Batch verdicts
//!   therefore never depend on routing.
//!
//! The general route runs on the antichain-pruned containment engine by
//! default ([`CheckStrategy::Antichain`]); the determinize-first
//! reference is selectable for differential runs and is the baseline of
//! the `t3_certification_scaling` benchmark.

use parking_lot::Mutex;
use splitc_core::{
    split_correct_composed, split_correct_df_prechecked, CertError, CheckStrategy, Verdict,
};
use splitc_spanner::splitter::{compose, Splitter};
use splitc_spanner::vsa::Vsa;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tuning knobs of a [`certify_many`] run.
#[derive(Debug, Clone, Copy)]
pub struct CertifyConfig {
    /// Certification worker threads. `0` is normalized to 1, matching
    /// the contract of every pool entry point in this crate.
    pub workers: usize,
    /// Try the Theorem 5.7 polynomial fast path first on eligible
    /// deterministic-functional pairs (disjoint splitters only). Only
    /// its `Holds` verdicts are accepted directly; declined pairs and
    /// fast-path failures are (re)checked by the general engine, so
    /// this knob trades cost, never verdicts.
    pub try_fast_path: bool,
    /// Containment engine for the general route. The default is the
    /// antichain-pruned search; [`CheckStrategy::DeterminizeFirst`] is
    /// the benchmark/differential reference.
    pub strategy: CheckStrategy,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            workers: 4,
            try_fast_path: true,
            strategy: CheckStrategy::default(),
        }
    }
}

/// Which route certified a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertPath {
    /// Theorem 5.7 polynomial fast path.
    FastPath,
    /// General equivalence through the configured [`CheckStrategy`].
    General,
}

/// Per-pair outcome of a batch certification.
#[derive(Debug, Clone)]
pub struct Certification {
    /// The `(P, P_S)` indices this outcome belongs to, as passed in.
    pub pair: (usize, usize),
    /// The verdict (or the interface error for this pair).
    pub verdict: Result<Verdict, CertError>,
    /// Which route produced the verdict (`General` for errors).
    pub path: CertPath,
}

impl Certification {
    /// Whether this pair certified successfully (no error, property holds).
    pub fn holds(&self) -> bool {
        matches!(&self.verdict, Ok(v) if v.holds())
    }
}

/// Aggregate statistics of one [`certify_many`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CertifyStats {
    /// Pairs certified.
    pub pairs: usize,
    /// Pairs resolved by the Theorem 5.7 fast path.
    pub fast_path: usize,
    /// Pairs resolved by the general engine.
    pub general: usize,
    /// Eligible pairs the fast path declined — or failed, pending
    /// general-engine confirmation — at run time (they are also counted
    /// under `general`).
    pub fast_path_fallbacks: usize,
    /// Composed-spanner cache hits (a pair reused another pair's
    /// `P_S ∘ S`).
    pub compose_hits: usize,
    /// Composed-spanner cache misses (compositions actually built).
    pub compose_misses: usize,
}

/// The outcome of a batch certification: one [`Certification`] per input
/// pair (index-aligned, regardless of worker scheduling) plus stats.
#[derive(Debug, Clone)]
pub struct CertifyResult {
    /// Per-pair outcomes, in input order.
    pub outcomes: Vec<Certification>,
    /// Run statistics.
    pub stats: CertifyStats,
}

impl CertifyResult {
    /// Whether every pair certified successfully.
    pub fn all_hold(&self) -> bool {
        self.outcomes.iter().all(Certification::holds)
    }

    /// The pairs that failed to certify (error or counterexample).
    pub fn failures(&self) -> impl Iterator<Item = &Certification> {
        self.outcomes.iter().filter(|c| !c.holds())
    }
}

/// Shared per-batch state: the memoized compositions and counters.
struct Shared<'a> {
    spanners: &'a [Vsa],
    splitter: &'a Splitter,
    /// `P_S` index → composed `P_S ∘ S`, built at most once per index.
    composed: Mutex<HashMap<usize, Arc<Vsa>>>,
    /// Spanner index → passes the per-spanner fast-path preconditions.
    df_eligible: Vec<bool>,
    /// The splitter passes its fast-path preconditions.
    splitter_df: bool,
    strategy: CheckStrategy,
    try_fast_path: bool,
    fast_path: AtomicUsize,
    general: AtomicUsize,
    fallbacks: AtomicUsize,
    compose_hits: AtomicUsize,
    compose_misses: AtomicUsize,
}

impl Shared<'_> {
    /// The composed spanner for split-spanner index `si`, memoized
    /// across pairs and workers.
    fn composed(&self, si: usize) -> Arc<Vsa> {
        // Fast path: already built.
        if let Some(c) = self.composed.lock().get(&si) {
            self.compose_hits.fetch_add(1, Ordering::Relaxed);
            return c.clone();
        }
        // Build outside the lock (compositions are the expensive part;
        // two workers racing the same index at worst build it twice and
        // one result wins). The loser's lookup still counts as a hit so
        // hits + misses equals the number of cache lookups exactly.
        let built = Arc::new(compose(&self.spanners[si], self.splitter));
        match self.composed.lock().entry(si) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.compose_hits.fetch_add(1, Ordering::Relaxed);
                e.get().clone()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.compose_misses.fetch_add(1, Ordering::Relaxed);
                v.insert(built).clone()
            }
        }
    }

    fn certify_pair(&self, pair: (usize, usize)) -> Certification {
        let (pi, si) = pair;
        if pi >= self.spanners.len() || si >= self.spanners.len() {
            return Certification {
                pair,
                verdict: Err(CertError::Invalid(format!(
                    "pair ({pi}, {si}) out of bounds for {} spanners",
                    self.spanners.len()
                ))),
                path: CertPath::General,
            };
        }
        let p = &self.spanners[pi];
        let ps = &self.spanners[si];
        if p.vars().names() != ps.vars().names() {
            return Certification {
                pair,
                verdict: Err(CertError::VariableMismatch {
                    left: p.vars().to_string(),
                    right: ps.vars().to_string(),
                }),
                path: CertPath::General,
            };
        }
        if self.try_fast_path && self.splitter_df && self.df_eligible[pi] && self.df_eligible[si] {
            // Preconditions were established at batch level (splitter)
            // and per spanner index, so the per-pair cost is just the
            // Thm 5.7 check itself — no revalidation.
            let v = split_correct_df_prechecked(p, ps, self.splitter);
            if v.holds() {
                // A fast-path Holds is always exact: the Theorem 5.7
                // pointwise check is *stronger* than `P = P_S ∘ S`, so
                // agreement per covering split implies equality.
                self.fast_path.fetch_add(1, Ordering::Relaxed);
                return Certification {
                    pair,
                    verdict: Ok(v),
                    path: CertPath::FastPath,
                };
            }
            // A fast-path Fails can be spurious on the documented
            // boundary-empty-span corner (see the split_correctness
            // module docs), so failures are confirmed through the
            // general engine below — batch verdicts never depend on
            // routing. Failing pairs are rare; paying both paths for
            // them keeps the common all-certified fleet cheap.
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        self.general.fetch_add(1, Ordering::Relaxed);
        let composed = self.composed(si);
        Certification {
            pair,
            verdict: split_correct_composed(p, &composed, self.strategy),
            path: CertPath::General,
        }
    }
}

/// Certifies a batch of `(P, P_S)` pairs — indices into `spanners` —
/// against one shared `splitter`, on a worker pool.
///
/// Returns one outcome per pair in input order. Self-splittability is
/// the diagonal case `(i, i)`. See the [module docs](self) for the
/// memoization and routing behavior.
///
/// ```
/// use splitc_exec::certify::{certify_many, CertifyConfig};
/// use splitc_spanner::{splitter, Rgx};
///
/// let fleet = vec![
///     Rgx::parse(".*x{a+}.*").unwrap().to_vsa().unwrap(), // sentence-local
///     Rgx::parse(".*x{a\\.a}.*").unwrap().to_vsa().unwrap(), // crossing
/// ];
/// let pairs = vec![(0, 0), (1, 1)];
/// let result = certify_many(
///     &fleet,
///     &splitter::sentences(),
///     &pairs,
///     &CertifyConfig::default(),
/// );
/// assert!(result.outcomes[0].holds());
/// assert!(!result.outcomes[1].holds()); // crossing extractor: witness doc
/// ```
pub fn certify_many(
    spanners: &[Vsa],
    splitter: &Splitter,
    pairs: &[(usize, usize)],
    config: &CertifyConfig,
) -> CertifyResult {
    let workers = config.workers.max(1).min(pairs.len().max(1));
    // Batch-level precomputation: splitter preconditions once, spanner
    // preconditions once per distinct index (not once per pair).
    let splitter_df = config.try_fast_path
        && splitter.vsa().is_functional()
        && splitter.vsa().is_deterministic()
        && splitter.is_disjoint();
    let df_eligible: Vec<bool> = if config.try_fast_path && splitter_df {
        spanners
            .iter()
            .map(|v| v.is_functional() && v.is_deterministic())
            .collect()
    } else {
        vec![false; spanners.len()]
    };

    let shared = Shared {
        spanners,
        splitter,
        composed: Mutex::new(HashMap::new()),
        df_eligible,
        splitter_df,
        strategy: config.strategy,
        try_fast_path: config.try_fast_path,
        fast_path: AtomicUsize::new(0),
        general: AtomicUsize::new(0),
        fallbacks: AtomicUsize::new(0),
        compose_hits: AtomicUsize::new(0),
        compose_misses: AtomicUsize::new(0),
    };

    // Indexed work stealing over the pair list; slots keep the output
    // order deterministic regardless of scheduling (same shape as the
    // corpus runner's aggregation).
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Certification>>> = Mutex::new(vec![None; pairs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= pairs.len() {
                    break;
                }
                let outcome = shared.certify_pair(pairs[i]);
                slots.lock()[i] = Some(outcome);
            });
        }
    });

    // The shimmed parking_lot Mutex has no into_inner; the pool is done,
    // so taking the buffer through the lock is equivalent.
    let outcomes: Vec<Certification> = std::mem::take(&mut *slots.lock())
        .into_iter()
        .map(|s| s.expect("every pair certified"))
        .collect();
    let stats = CertifyStats {
        pairs: pairs.len(),
        fast_path: shared.fast_path.load(Ordering::Relaxed),
        general: shared.general.load(Ordering::Relaxed),
        fast_path_fallbacks: shared.fallbacks.load(Ordering::Relaxed),
        compose_hits: shared.compose_hits.load(Ordering::Relaxed),
        compose_misses: shared.compose_misses.load(Ordering::Relaxed),
    };
    CertifyResult { outcomes, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc_core::split_correct;
    use splitc_spanner::rgx::Rgx;
    use splitc_spanner::splitter;

    fn vsa(p: &str) -> Vsa {
        Rgx::parse(p).unwrap().to_vsa().unwrap()
    }

    fn fleet() -> Vec<Vsa> {
        vec![
            vsa(".*x{a+}.*"),    // 0: sentence-local, self-splittable
            vsa(".*x{a\\.a}.*"), // 1: crossing, not self-splittable
            vsa(".*x{ab}.*"),    // 2: self-splittable
            vsa("x{ab}.*"),      // 3: prefix extractor
        ]
    }

    #[test]
    fn matches_single_pair_certification() {
        let spanners = fleet();
        let s = splitter::sentences();
        let pairs = vec![(0, 0), (1, 1), (2, 2), (0, 2), (2, 3)];
        for workers in [1, 3] {
            let result = certify_many(
                &spanners,
                &s,
                &pairs,
                &CertifyConfig {
                    workers,
                    ..CertifyConfig::default()
                },
            );
            assert_eq!(result.outcomes.len(), pairs.len());
            assert_eq!(result.stats.pairs, pairs.len());
            for (outcome, &(pi, si)) in result.outcomes.iter().zip(&pairs) {
                assert_eq!(outcome.pair, (pi, si));
                let single = split_correct(&spanners[pi], &spanners[si], &s).unwrap();
                assert_eq!(
                    outcome.verdict.as_ref().unwrap().holds(),
                    single.holds(),
                    "pair ({pi}, {si}), workers {workers}"
                );
            }
        }
    }

    #[test]
    fn strategies_agree_in_batch() {
        let spanners = fleet();
        let s = splitter::sentences();
        let pairs = vec![(0, 0), (1, 1), (0, 2)];
        let anti = certify_many(
            &spanners,
            &s,
            &pairs,
            &CertifyConfig {
                strategy: CheckStrategy::Antichain,
                ..CertifyConfig::default()
            },
        );
        let detf = certify_many(
            &spanners,
            &s,
            &pairs,
            &CertifyConfig {
                strategy: CheckStrategy::DeterminizeFirst,
                ..CertifyConfig::default()
            },
        );
        for (a, d) in anti.outcomes.iter().zip(&detf.outcomes) {
            assert_eq!(a.holds(), d.holds(), "pair {:?}", a.pair);
        }
    }

    #[test]
    fn composition_is_shared_across_pairs() {
        let spanners = fleet();
        let s = splitter::sentences();
        // Five pairs, all against split-spanner 0 (nondeterministic
        // fleet → general path → the composition cache is exercised).
        let pairs = vec![(0, 0), (1, 0), (2, 0), (3, 0), (0, 0)];
        let result = certify_many(
            &spanners,
            &s,
            &pairs,
            &CertifyConfig {
                workers: 1, // deterministic counters
                ..CertifyConfig::default()
            },
        );
        assert_eq!(result.stats.compose_misses, 1, "{:?}", result.stats);
        assert_eq!(result.stats.compose_hits, 4, "{:?}", result.stats);
        assert_eq!(result.stats.general, 5);
    }

    #[test]
    fn fast_path_routes_deterministic_fleets() {
        let spanners: Vec<Vsa> = fleet()[..1]
            .iter()
            .map(Vsa::determinize)
            .chain([vsa(".*x{ab}.*").determinize()])
            .collect();
        let s = splitter::sentences().determinize();
        let pairs = vec![(0, 0), (1, 1)];
        let result = certify_many(&spanners, &s, &pairs, &CertifyConfig::default());
        assert!(result.all_hold());
        assert_eq!(result.stats.fast_path, 2, "{:?}", result.stats);
        assert_eq!(result.stats.general, 0);
        // Opting out routes everything through the general engine.
        let general_only = certify_many(
            &spanners,
            &s,
            &pairs,
            &CertifyConfig {
                try_fast_path: false,
                ..CertifyConfig::default()
            },
        );
        assert!(general_only.all_hold());
        assert_eq!(general_only.stats.fast_path, 0);
        assert_eq!(general_only.stats.general, 2);
    }

    #[test]
    fn errors_are_per_pair_not_batch() {
        let spanners = vec![vsa(".*x{a+}.*"), vsa(".*y{a+}.*")];
        let s = splitter::sentences();
        let pairs = vec![(0, 1), (0, 0), (7, 0)];
        let result = certify_many(&spanners, &s, &pairs, &CertifyConfig::default());
        assert!(matches!(
            result.outcomes[0].verdict,
            Err(CertError::VariableMismatch { .. })
        ));
        assert!(result.outcomes[1].holds());
        assert!(matches!(
            result.outcomes[2].verdict,
            Err(CertError::Invalid(_))
        ));
        assert!(!result.all_hold());
        assert_eq!(result.failures().count(), 2);
    }

    #[test]
    fn zero_workers_and_empty_batches() {
        let spanners = fleet();
        let s = splitter::sentences();
        let result = certify_many(
            &spanners,
            &s,
            &[],
            &CertifyConfig {
                workers: 0,
                ..CertifyConfig::default()
            },
        );
        assert!(result.outcomes.is_empty());
        assert!(result.all_hold());
        let one = certify_many(
            &spanners,
            &s,
            &[(0, 0)],
            &CertifyConfig {
                workers: 0,
                ..CertifyConfig::default()
            },
        );
        assert!(one.all_hold());
    }

    #[test]
    fn boundary_corner_verdict_is_routing_independent() {
        // The repo's documented corner (split_correctness module docs,
        // `boundary_empty_span_corner` test): the Theorem 5.7 pointwise
        // procedure reports Fails while the exact semantics Holds. The
        // batch certifier must report the exact verdict regardless of
        // fast-path eligibility.
        let spanners = vec![vsa("a(y{})b").determinize(), vsa("y{}b").determinize()];
        let s = splitc_spanner::Splitter::parse("x{a}b|a(x{b})")
            .unwrap()
            .determinize();
        assert!(
            !splitc_core::split_correct_df(&spanners[0], &spanners[1], &s)
                .unwrap()
                .holds()
        );
        let exact = split_correct(&spanners[0], &spanners[1], &s).unwrap();
        assert!(exact.holds());
        for try_fast_path in [true, false] {
            let result = certify_many(
                &spanners,
                &s,
                &[(0, 1)],
                &CertifyConfig {
                    try_fast_path,
                    workers: 1,
                    ..CertifyConfig::default()
                },
            );
            assert!(
                result.outcomes[0].holds(),
                "routing must not change the verdict (try_fast_path={try_fast_path}): {:?}",
                result.stats
            );
        }
    }

    #[test]
    fn counterexamples_survive_the_batch() {
        let spanners = fleet();
        let s = splitter::sentences();
        let result = certify_many(&spanners, &s, &[(1, 1)], &CertifyConfig::default());
        match result.outcomes[0].verdict.as_ref().unwrap() {
            Verdict::Fails(cex) => {
                let rel = splitc_spanner::eval::eval(&spanners[1], &cex.doc);
                assert!(rel.contains(&cex.tuple), "witness must replay");
            }
            Verdict::Holds => panic!("crossing extractor must fail"),
        }
    }
}
