//! The repository-wide **engine matrix**: every [`Engine`] variant —
//! nfa, dense, prefilter, aot — run over the *same* randomly generated
//! spanner/corpus pairs and asserted byte-identical, across every
//! execution path:
//!
//! * **batch** — [`ExecSpanner::eval`] on match-dense and match-sparse
//!   documents, with production-sized *and* starved 2-state lazy-DFA
//!   caches (the starved bound forces the overflow fallback mid-scan);
//! * **streaming** — [`CorpusRunner`] cutting documents into adversarial
//!   1-byte chunks;
//! * **fleet** — [`Fleet`] fused evaluation compared member-by-member.
//!
//! All random structure comes from the shared seeded generator in
//! [`spangen`] (`splitc_textgen::spangen`), so every engine — current
//! and future — is exercised against exactly the same distribution: a
//! new engine registers by extending [`ENGINES`] (the exhaustiveness
//! test below fails compilation until the `match` is updated too).

use proptest::prelude::*;
use split_correctness::exec::{CorpusRunner, CorpusRunnerConfig, Engine, ExecSpanner, Fleet};
use split_correctness::spanner::dense::DenseConfig;
use split_correctness::spanner::rgx::Rgx;
use split_correctness::spanner::splitter;
use split_correctness::spanner::tuple::SpanRelation;
use split_correctness::spanner::vsa::Vsa;
use split_correctness::textgen::spangen;

/// Every engine the matrix runs. The first entry is the reference
/// engine (plain NFA simulation) the others are compared against.
const ENGINES: [Engine; 4] = [Engine::Nfa, Engine::Dense, Engine::Prefilter, Engine::Aot];

/// Cache configurations: production-sized, and a starved 2-state bound
/// that forces the lazy-DFA overflow fallback on every non-trivial scan.
fn cache_configs() -> [DenseConfig; 2] {
    [
        DenseConfig::default(),
        DenseConfig {
            max_cache_states: 2,
            skip_loop: false,
        },
    ]
}

fn compile_matrix(vsa: &Vsa, config: DenseConfig) -> Vec<(Engine, ExecSpanner)> {
    ENGINES
        .iter()
        .map(|&e| (e, ExecSpanner::compile_with_config(vsa, e, config)))
        .collect()
}

/// Asserts all engines produce `reference`'s relation on `doc`.
fn assert_agree(
    matrix: &[(Engine, ExecSpanner)],
    doc: &[u8],
    reference: &SpanRelation,
    context: &str,
) -> Result<(), TestCaseError> {
    for (engine, spanner) in matrix {
        prop_assert_eq!(
            &spanner.eval(doc),
            reference,
            "engine {:?} diverges ({})",
            engine,
            context
        );
    }
    Ok(())
}

#[test]
fn matrix_covers_every_engine_variant() {
    // Exhaustive match with no wildcard: adding an `Engine` variant
    // breaks this test at compile time until the variant is added to
    // `ENGINES` (and thereby to every suite in this file).
    for e in ENGINES {
        match e {
            Engine::Nfa | Engine::Dense | Engine::Prefilter | Engine::Aot => {}
        }
    }
    let mut names: Vec<&str> = ENGINES.iter().map(|e| e.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), ENGINES.len(), "duplicate engine in matrix");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batch path: random spanners × {dense, sparse} documents ×
    /// {production, starved} caches — all engines byte-identical.
    #[test]
    fn batch_engines_agree_on_random_spanners(
        seed in 0u64..u64::MAX,
        doc_seed in 0u64..u64::MAX,
    ) {
        let vsa = spangen::rand_spanner_vsa(seed);
        let docs = [
            spangen::dense_doc(doc_seed, 24),
            spangen::sparse_doc(doc_seed, 64),
        ];
        for config in cache_configs() {
            let matrix = compile_matrix(&vsa, config);
            for doc in &docs {
                let reference = matrix[0].1.eval(doc);
                assert_agree(&matrix, doc, &reference, "random spanner, batch")?;
            }
        }
    }

    /// Batch path over the fixed pattern table (empty spans, unions,
    /// two-variable spanners, `Σ*` contexts, literal anchors).
    #[test]
    fn batch_engines_agree_on_fixed_patterns(
        pi in 0..spangen::PATTERNS.len(),
        doc_seed in 0u64..u64::MAX,
    ) {
        let vsa = Rgx::parse(spangen::PATTERNS[pi]).unwrap().to_vsa().unwrap();
        let docs = [
            spangen::dense_doc(doc_seed, 24),
            spangen::sparse_doc(doc_seed, 64),
        ];
        for config in cache_configs() {
            let matrix = compile_matrix(&vsa, config);
            for doc in &docs {
                let reference = matrix[0].1.eval(doc);
                assert_agree(&matrix, doc, &reference, spangen::PATTERNS[pi])?;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Streaming path: the corpus runner cuts every document into
    /// adversarial 1-byte chunks; relations must match the reference
    /// engine document-for-document under every engine.
    #[test]
    fn streaming_engines_agree_with_one_byte_chunks(
        seed in 0u64..u64::MAX,
        corpus_seed in 0u64..u64::MAX,
        workers in 0usize..4,
    ) {
        let vsa = spangen::rand_spanner_vsa(seed);
        let owned: Vec<Vec<u8>> = (0..4)
            .map(|i| spangen::dense_doc(corpus_seed.wrapping_add(i), 32))
            .collect();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        let config = CorpusRunnerConfig {
            workers,
            batch_bytes: 8,
            queue_depth: 2,
            chunk_bytes: 1, // adversarial: every push is a single byte
        };
        let mut reference: Option<Vec<SpanRelation>> = None;
        for engine in ENGINES {
            let runner = CorpusRunner::new(
                ExecSpanner::compile_with(&vsa, engine),
                splitter::sentences().compile(),
                config,
            );
            let got = runner.run_slices(&refs);
            prop_assert_eq!(got.stats.docs, refs.len());
            match &reference {
                None => reference = Some(got.relations),
                Some(expected) => prop_assert_eq!(
                    &got.relations,
                    expected,
                    "engine {:?} diverges on 1-byte-chunk streaming",
                    engine
                ),
            }
        }
    }

    /// Fleet path: fused evaluation under every engine equals the
    /// reference engine's per-member relations, with production and
    /// starved caches.
    #[test]
    fn fleet_engines_agree_per_member(
        seed in 0u64..u64::MAX,
        doc_seed in 0u64..u64::MAX,
        n in 1usize..6,
    ) {
        let vsas = spangen::rand_fleet(seed, n);
        let docs = [
            spangen::dense_doc(doc_seed, 32),
            spangen::sparse_doc(doc_seed, 48),
        ];
        // Reference relations: plain NFA simulation, member by member.
        let reference: Vec<Vec<SpanRelation>> = docs
            .iter()
            .map(|doc| {
                vsas.iter()
                    .map(|v| ExecSpanner::compile_with(v, Engine::Nfa).eval(doc))
                    .collect()
            })
            .collect();
        for config in cache_configs() {
            for engine in ENGINES {
                let fleet = Fleet::compile_with(&vsas, engine, config);
                for (di, doc) in docs.iter().enumerate() {
                    let fused = fleet.eval(doc);
                    for (mi, rel) in fused.iter().enumerate() {
                        prop_assert_eq!(
                            rel,
                            &reference[di][mi],
                            "member {} under {:?} (starved: {})",
                            mi,
                            engine,
                            config.max_cache_states == 2
                        );
                    }
                }
            }
        }
    }
}
