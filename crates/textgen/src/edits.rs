//! Seeded random edit scripts over sharded corpora.
//!
//! The paper's §1 motivation is a Wikipedia-style workload: a large
//! corpus absorbs a stream of minor edits, and certified
//! split-correctness makes each edit cheap because only the touched
//! segments are reprocessed. This module generates that workload
//! deterministically — a mix of small in-place rewrites (typo fixes,
//! vandalism reverts), appends (new sentences at the end of an
//! article), and occasional whole-shard rewrites — for the
//! `t8_incremental` benchmark and the incremental-maintenance test
//! harnesses.
//!
//! Scripts are generated against *tracked* shard lengths: each
//! [`Edit`] carries concrete offsets valid at its application time, so
//! a script can be replayed in order against both a
//! `splitc_exec::CorpusHandle` and a plain `Vec<Vec<u8>>` shadow
//! without re-validation.

use crate::corpus::{wiki_corpus, CorpusConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One edit applied to a sharded corpus. Offsets are valid at
/// application time when the script is replayed in generation order.
#[derive(Debug, Clone)]
pub enum Edit {
    /// Replace `start..end` of shard `shard` with `text` (a point
    /// edit; the replacement need not preserve length).
    Point {
        /// Shard index.
        shard: usize,
        /// Start of the replaced window (inclusive).
        start: usize,
        /// End of the replaced window (exclusive).
        end: usize,
        /// Replacement bytes.
        text: Vec<u8>,
    },
    /// Extend shard `shard` at its end.
    Append {
        /// Shard index.
        shard: usize,
        /// Appended bytes.
        text: Vec<u8>,
    },
    /// Swap shard `shard`'s bytes wholesale.
    ReplaceShard {
        /// Shard index.
        shard: usize,
        /// The shard's new content.
        text: Vec<u8>,
    },
}

impl Edit {
    /// Applies this edit to plain byte shards — the shadow state a
    /// differential oracle re-splits and re-extracts from scratch.
    pub fn apply(&self, shards: &mut [Vec<u8>]) {
        match self {
            Edit::Point {
                shard,
                start,
                end,
                text,
            } => {
                shards[*shard].splice(*start..*end, text.iter().copied());
            }
            Edit::Append { shard, text } => shards[*shard].extend_from_slice(text),
            Edit::ReplaceShard { shard, text } => shards[*shard] = text.clone(),
        }
    }

    /// The edit kind, for reporting.
    pub fn name(&self) -> &'static str {
        match self {
            Edit::Point { .. } => "point",
            Edit::Append { .. } => "append",
            Edit::ReplaceShard { .. } => "replace_shard",
        }
    }
}

/// A short sentence-like fragment in the corpus token language
/// (space-separated alphabetic words, optionally `.`-terminated), so
/// point edits and appends splice text the formal splitters parse the
/// same way the surrounding corpus is parsed.
fn snippet(rng: &mut StdRng) -> Vec<u8> {
    const WORDS: &[&str] = &[
        "revision", "edit", "cite", "ref", "talk", "page", "link", "minor", "undo", "merge",
    ];
    let n = rng.gen_range(1..6);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    if rng.gen::<f64>() < 0.4 {
        s.push('.');
        s.push(' ');
    }
    s.into_bytes()
}

/// Generates a deterministic `n`-step Wikipedia-model edit script over
/// shards with the given initial lengths: ~70% small point edits
/// (windows up to 32 bytes replaced by a fresh fragment), ~20%
/// appends, ~10% whole-shard rewrites (fresh [`wiki_corpus`] text of
/// roughly the same size, seeded from the script's RNG). Lengths are
/// tracked across steps, so every op's offsets are in bounds when the
/// script is applied in order.
pub fn edit_script(seed: u64, shard_lens: &[usize], n: usize) -> Vec<Edit> {
    assert!(
        !shard_lens.is_empty(),
        "edit scripts need at least one shard"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lens = shard_lens.to_vec();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let shard = rng.gen_range(0..lens.len());
        let len = lens[shard];
        let r = rng.gen::<f64>();
        let edit = if r < 0.70 {
            let start = if len == 0 { 0 } else { rng.gen_range(0..len) };
            let end = (start + rng.gen_range(0..32)).min(len);
            let text = snippet(&mut rng);
            lens[shard] = len - (end - start) + text.len();
            Edit::Point {
                shard,
                start,
                end,
                text,
            }
        } else if r < 0.90 {
            let text = snippet(&mut rng);
            lens[shard] += text.len();
            Edit::Append { shard, text }
        } else {
            let text = wiki_corpus(&CorpusConfig {
                target_bytes: len.max(512),
                seed: rng.gen(),
                ..CorpusConfig::default()
            });
            lens[shard] = text.len();
            Edit::ReplaceShard { shard, text }
        };
        out.push(edit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let lens = [1000, 0, 250];
        let a = edit_script(7, &lens, 20);
        let b = edit_script(7, &lens, 20);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = edit_script(8, &lens, 20);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn scripts_apply_in_bounds_and_mix_kinds() {
        let mut shards = vec![vec![b'a'; 2000], Vec::new(), vec![b'b'; 100]];
        let lens: Vec<usize> = shards.iter().map(Vec::len).collect();
        let script = edit_script(0xED17, &lens, 200);
        let mut kinds = std::collections::BTreeSet::new();
        for e in &script {
            // In-bounds by construction: apply panics otherwise.
            e.apply(&mut shards);
            kinds.insert(e.name());
        }
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            ["append", "point", "replace_shard"],
            "200 steps exercise every edit kind"
        );
        // The tracked lengths agree with the applied state: a fresh
        // script generated from the *final* lengths stays in bounds.
        let final_lens: Vec<usize> = shards.iter().map(Vec::len).collect();
        for e in edit_script(1, &final_lens, 50) {
            e.apply(&mut shards);
        }
    }

    #[test]
    fn snippets_stay_in_the_token_language() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = snippet(&mut rng);
            assert!(!s.is_empty());
            assert!(s
                .iter()
                .all(|b| b.is_ascii_lowercase() || *b == b' ' || *b == b'.'));
        }
    }
}
