//! T1 — Theorems 4.1–4.3: containment is PSPACE-complete in general
//! (already for *weakly* deterministic automata, Thm 4.2) but NL — in
//! practice, near-linear — for deterministic functional VSet-automata
//! (Thm 4.3).
//!
//! Two measured curves:
//! * dfVSA containment over growing chain extractors (polynomial);
//! * union universality over the mod-prime gadget, whose lazy subset
//!   construction must explore `lcm(p₁..pₙ)` configurations —
//!   exponential in the input size `Σ pᵢ`.

use splitc_automata::ops;
use splitc_bench::families::{chain_extractor, mod_prime_union_nfa, unary_sigma_star, PRIMES};
use splitc_bench::{ms, time_best, Table};
use splitc_spanner::spanner_contains;

fn main() {
    let mut t = Table::new(
        "T1a — dfVSA containment (Thm 4.3: polynomial)",
        &["chain k", "|Q(P)|", "time ms"],
    );
    for k in [4usize, 8, 16, 32, 64, 128] {
        let a = chain_extractor(k).determinize();
        let b = chain_extractor(k).determinize();
        let (res, d) = time_best(3, || spanner_contains(&a, &b).unwrap());
        assert!(res.holds());
        t.row(&[k.to_string(), a.num_states().to_string(), ms(d)]);
    }
    t.print();

    let mut t = Table::new(
        "T1b — union universality gadget (Thm 4.2: exponential blowup)",
        &[
            "n automata",
            "input size Σp",
            "explored length lcm(p)",
            "time ms",
        ],
    );
    for n in 1..=5usize {
        let union = mod_prime_union_nfa(n);
        let sigma = unary_sigma_star();
        let (res, d) = time_best(3, || ops::contains(&sigma, &union));
        let lcm: usize = PRIMES[..n].iter().product();
        match res {
            ops::Containment::Counterexample(w) => assert_eq!(w.len(), lcm),
            ops::Containment::Contained => panic!("gadget must be non-universal"),
        }
        let size: usize = PRIMES[..n].iter().sum();
        t.row(&[n.to_string(), size.to_string(), lcm.to_string(), ms(d)]);
    }
    t.print();
    println!(
        "\nShape check: T1a grows polynomially with k; T1b explodes with the\n\
         lcm although the input grows only by Σp — the paper's tractability\n\
         frontier between dfVSA and (weakly deterministic) VSA."
    );
}
