//! End-to-end integration: regex formula → formal certification →
//! execution engine, over generated corpora. The decision procedures'
//! verdicts must predict exactly whether distributed evaluation changes
//! the semantics.

use split_correctness::prelude::*;
use split_correctness::textgen::{self, CorpusConfig};
use splitc_textgen::spanners;
use std::sync::Arc;

fn corpus(bytes: usize, seed: u64) -> Vec<u8> {
    textgen::wiki_corpus(&CorpusConfig {
        target_bytes: bytes,
        seed,
        ..Default::default()
    })
}

/// For certified-splittable workloads, split evaluation over the native
/// splitter equals whole-document evaluation on real corpora.
#[test]
fn certified_workloads_evaluate_identically() {
    let s_formal = splitters::sentences();
    let split: SplitFn = Arc::new(native_splitters::sentences);
    let doc = corpus(64 << 10, 11);

    let workloads: Vec<(&str, Vsa)> = vec![
        ("2-gram", spanners::ngram_extractor(2)),
        ("3-gram", spanners::ngram_extractor(3)),
        ("entities", spanners::entity_extractor()),
        ("transactions", spanners::transaction_extractor()),
        ("sentiment", spanners::negative_sentiment_targets()),
    ];
    for (name, p) in workloads {
        let verdict = self_splittable(&p, &s_formal).unwrap();
        assert!(verdict.holds(), "{name} must be certified splittable");
        let spanner = ExecSpanner::compile(&p);
        let seq = evaluate_sequential(&spanner, &doc);
        let par = evaluate_split(&spanner, &split, &doc, 3);
        assert_eq!(seq, par, "{name}: distributed evaluation must agree");
    }
}

/// For a non-splittable workload the engine's outputs genuinely differ —
/// the counterexample from the certifier predicts it.
#[test]
fn uncertified_workload_differs_and_witness_is_executable() {
    let p = Rgx::parse(".*x{[a-z]+\\. [A-Z][a-z]+}.*")
        .unwrap()
        .to_vsa()
        .unwrap(); // crosses a sentence boundary by construction
    let s = splitters::sentences();
    let verdict = self_splittable(&p, &s).unwrap();
    let Verdict::Fails(cex) = verdict else {
        panic!("crossing pattern must not be self-splittable");
    };
    // The witness document demonstrates the difference in the engine.
    let spanner = ExecSpanner::compile(&p);
    let split: SplitFn = Arc::new(native_splitters::sentences);
    let seq = evaluate_sequential(&spanner, &cex.doc);
    let par = evaluate_split(&spanner, &split, &cex.doc, 2);
    assert_ne!(seq, par, "witness must separate the two plans");
    assert_eq!(seq.contains(&cex.tuple), cex.left_has_it);
}

/// Formal splitters agree with their fast native implementations on
/// generated corpora.
#[test]
fn formal_and_native_splitters_agree_on_corpora() {
    let doc = corpus(8 << 10, 23);
    assert_eq!(
        splitters::sentences().split(&doc),
        native_splitters::sentences(&doc)
    );
    assert_eq!(
        splitters::paragraphs().split(&doc),
        native_splitters::paragraphs(&doc)
    );
    assert_eq!(
        splitters::lines().split(&doc),
        native_splitters::lines(&doc)
    );
    for n in 1..=3 {
        assert_eq!(
            splitters::ngrams(n).split(&doc[..2048]),
            native_splitters::ngrams(&doc[..2048], n),
            "n = {n}"
        );
    }
    let log = textgen::http_log(25, 3);
    assert_eq!(
        splitters::http_messages().split(&log),
        native_splitters::paragraphs(&log)
    );
}

/// The splittability witness (canonical split-spanner) is directly
/// executable: P = witness ∘ S on corpora.
#[test]
fn splittability_witness_runs_on_the_engine() {
    let p = spanners::request_line_extractor();
    let s = splitters::http_messages();
    let SplittabilityVerdict::Splittable { witness } = splittable(&p, &s).unwrap() else {
        panic!("request lines must be splittable by messages");
    };
    let log = textgen::http_log(40, 5);
    let split: SplitFn = Arc::new(native_splitters::paragraphs);
    let via_witness = evaluate_split(&ExecSpanner::compile(&witness), &split, &log, 2);
    let direct = evaluate_sequential(&ExecSpanner::compile(&p), &log);
    assert_eq!(via_witness, direct);
}

/// Incremental evaluation equals from-scratch evaluation across a series
/// of edits on a real corpus.
#[test]
fn incremental_is_exact_over_edit_series() {
    let p = spanners::entity_extractor();
    assert!(self_splittable(&p, &splitters::sentences())
        .unwrap()
        .holds());
    let spanner = ExecSpanner::compile(&p);
    let runner = IncrementalRunner::new(
        spanner.clone(),
        Arc::new(native_splitters::sentences) as SplitFn,
    );
    let mut doc = corpus(16 << 10, 31);
    for i in 0..10 {
        let pos = (i * 997) % doc.len();
        doc[pos] = b'Q';
        assert_eq!(runner.eval(&doc), evaluate_sequential(&spanner, &doc));
    }
    let stats = runner.stats();
    assert!(stats.hits > stats.misses, "edits must mostly hit the cache");
}
